//! Offline stand-in for `criterion`.
//!
//! Provides the group/bencher API surface the workspace's benches use.
//! Instead of criterion's statistical machinery it times a fixed number
//! of iterations with `std::time::Instant` and prints mean wall-clock
//! per iteration (plus throughput when configured) — enough to compare
//! hot paths locally without any external dependency.

use std::time::{Duration, Instant};

/// How batched inputs are sized (API compatibility only).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n# group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_bench(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iterations == 0 {
        println!("{id}: no iterations recorded");
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / mean)
        }
        None => String::new(),
    };
    println!("{id}: {:.3} ms/iter{rate}", mean * 1e3);
}

pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        let out = routine(&mut input);
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Re-export matching criterion's public `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
