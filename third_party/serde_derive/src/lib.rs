//! Hand-rolled `Serialize`/`Deserialize` derives for the offline serde
//! stand-in. No `syn`/`quote` — the container's registry is empty — so
//! the macro walks the raw token stream itself. It supports exactly the
//! shapes this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip, default = "path")]`),
//! * tuple structs (newtypes serialise transparently, wider ones as a seq),
//! * enums whose variants are all unit-like (serialised as their name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is not supported"));
    }

    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected type body, found {other:?}")),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Named(parse_named_fields(body.stream())?),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::UnitEnum(parse_unit_variants(body.stream())?),
        _ => return Err(format!("unsupported shape for `{name}`")),
    };
    Ok(Input { name, shape })
}

/// Parse `#[serde(...)]` arguments already known to be the inner group.
fn parse_serde_args(args: TokenStream, field: &mut Field) -> Result<(), String> {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                field.skip = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                i += 1;
                match (toks.get(i), toks.get(i + 1)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit)))
                        if p.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        field.default = Some(s.trim_matches('"').to_string());
                        i += 2;
                    }
                    _ => field.default = Some(String::new()),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => return Err(format!("unsupported serde attribute: {other}")),
        }
    }
    Ok(())
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let mut field = Field {
            name: String::new(),
            skip: false,
            default: None,
        };
        // Field attributes (doc comments and #[serde(...)]).
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 1;
            let group = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("malformed attribute: {other:?}")),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" {
                    parse_serde_args(args.stream(), &mut field)?;
                }
            }
            i += 1;
        }
        // Visibility.
        if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(
                toks.get(i),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                i += 1;
            }
        }
        field.name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:`, found {other:?}")),
        }
        // Consume the type: scan to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in body {
        any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => commas += 1,
            _ => {}
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => return Err(format!("expected variant, found {other:?}")),
        }
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{}` carries data; only unit enums are supported",
                    variants.last().expect("just pushed")
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push((String::from({n:?}), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Map(m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(vec![{items}])")
        }
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),"))
                .collect::<String>();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        match f.default.as_deref() {
                            Some(path) if !path.is_empty() => {
                                format!("{n}: {path}(),", n = f.name)
                            }
                            _ => format!("{n}: ::std::default::Default::default(),", n = f.name),
                        }
                    } else {
                        format!("{n}: ::serde::field(v, {n:?})?,", n = f.name)
                    }
                })
                .collect::<String>();
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let fields = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                 \"expected sequence\"))?;\n\
                 if s.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity\")); }}\n\
                 Ok({name}({fields}))"
            )
        }
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v}),"))
                .collect::<String>();
            format!(
                "match v.as_str() {{ {arms} other => Err(::serde::Error::custom(\
                 format!(\"unknown variant {{other:?}} for {name}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}\n}}\n}}"
    )
}
