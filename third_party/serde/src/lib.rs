//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and an empty registry, so
//! the workspace vendors the small slice of serde it actually relies on:
//! `Serialize`/`Deserialize` traits, their derive macros, and impls for
//! the primitive/std types that appear in derived structs. Instead of
//! serde's visitor architecture, everything funnels through an in-memory
//! [`Value`] tree — ample for the JSON round-trips the simulator needs,
//! and fully deterministic (maps preserve field order).

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data model every serialisation passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map: derived structs serialise fields in
    /// declaration order, which keeps emitted JSON byte-stable.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: fetch and decode a struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(f) => T::from_value(f).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return type_err("unsigned integer", v),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => {
                        i64::try_from(n).map_err(|_| Error::custom("integer overflow"))?
                    }
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => type_err("number", v),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => type_err("bool", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => type_err("sequence", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = match v.as_seq() {
                    Some(s) => s,
                    None => return type_err("tuple sequence", v),
                };
                let want = [$($n),+].len();
                if s.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of {want}, got {}",
                        s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// A `Value` is already the data model: identity codec, so callers that
// assemble trees by hand (the checkpoint codecs) can print and parse
// them through `serde_json` like any other type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Map keys must render as strings in the data model.
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_err("map", v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integers_check_range() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let pair = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&pair.to_value()), Ok(pair));
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()), Ok(none));
    }

    #[test]
    fn map_keys_become_strings() {
        let mut m = BTreeMap::new();
        m.insert("reads", 3u64);
        assert_eq!(m.to_value().get("reads"), Some(&Value::U64(3)));
    }
}
