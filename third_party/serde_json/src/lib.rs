//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON over the serde stand-in's [`Value`] tree. The
//! printer is deterministic: struct fields keep declaration order, floats
//! use Rust's shortest round-trip formatting, and indentation is fixed at
//! two spaces — so identical inputs yield byte-identical output, which
//! the figure harness relies on.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Parse a JSON document into the generic [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json also degrades non-finite floats to null.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs are not emitted by our printer;
                            // decode the common BMP case only.
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut cp = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::custom("bad \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for src in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\n\""] {
            let v = parse_value(src).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn pretty_nested_structure() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            ("b".into(), Value::Map(vec![])),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{\"a\":}").is_err());
    }

    #[test]
    fn deep_document_round_trips() {
        let src = r#"{"files":[{"path":"/a/b","size":67108864,"w":1.5}],"n":3}"#;
        let v = parse_value(src).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, src);
    }
}
