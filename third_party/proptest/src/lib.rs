//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, collection/option/string
//! strategies, and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros
//! this workspace uses. Test cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), so runs
//! are reproducible; there is no shrinking — a failing case panics with
//! the generated inputs' debug representation left to the assertion
//! message.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.reason)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// A strategy backed by a plain function (used by `any`).
    pub struct Fun<T> {
        f: fn(&mut TestRng) -> T,
        _marker: PhantomData<fn() -> T>,
    }

    impl<T> Fun<T> {
        pub fn new(f: fn(&mut TestRng) -> T) -> Self {
            Fun {
                f,
                _marker: PhantomData,
            }
        }
    }

    impl<T> Strategy for Fun<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_wide(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below_wide(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! impl_tuples {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuples! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String-literal strategies interpret a small regex subset:
    /// literal characters, `[a-z0-9_/]` classes with ranges, and the
    /// quantifiers `{n}`, `{m,n}`, `?`, `+`, `*`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = if lo == hi {
                    *lo
                } else {
                    *lo + rng.below((hi - lo + 1) as u64) as usize
                };
                for _ in 0..n {
                    let i = rng.below(chars.len() as u64) as usize;
                    out.push(chars[i]);
                }
            }
            out
        }
    }

    type Atom = (Vec<char>, usize, usize);

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms: Vec<Atom> = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (a, b) = (chars[i], chars[i + 2]);
                            assert!(a <= b, "bad class range in pattern {pat:?}");
                            for c in a..=b {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                    i += 1; // ']'
                    set
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().expect("dangling escape");
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("quantifier lower bound"),
                            b.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            };
            assert!(!set.is_empty() && lo <= hi, "bad pattern {pat:?}");
            atoms.push((set, lo, hi));
        }
        atoms
    }
}

pub mod arbitrary {
    use super::strategy::{Fun, Strategy};
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = Fun<$t>;
                fn arbitrary() -> Fun<$t> {
                    Fun::new(|rng: &mut TestRng| rng.next_u64() as $t)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = Fun<bool>;
        fn arbitrary() -> Fun<bool> {
            Fun::new(|rng: &mut TestRng| rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for f64 {
        type Strategy = Fun<f64>;
        fn arbitrary() -> Fun<f64> {
            // Finite, sign-symmetric, spanning several magnitudes.
            Fun::new(|rng: &mut TestRng| {
                let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e9;
                mag * rng.unit_f64()
            })
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicate draws shrink the set; retry within a generous
            // budget, accepting an undersized set only for tiny domains.
            for _ in 0..(20 * (n + 1)) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, as upstream proptest does.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64 stream).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`. `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, n)` for spans wider than `u64`.
        pub fn below_wide(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration (`ProptestConfig` upstream).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drive `body` once per case with a case-specific deterministic RNG.
    pub fn run_cases(cfg: &ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        for case in 0..cfg.cases {
            let mut rng =
                TestRng::new(seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            body(&mut rng);
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to the non-prelude modules, as upstream's
    /// prelude provides.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            $crate::__proptest_body! { (__cfg, __name, $body) [] $($params)* }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Munch the parameter list, normalising both `pat in strategy` and
/// `name: Type` (→ `any::<Type>()`) forms into `[pat, strategy]` pairs,
/// then emit the runner loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    // Terminal: all parameters normalised.
    (($cfg:ident, $name:ident, $body:tt) [$([$p:pat_param, $s:expr],)*]) => {
        $crate::test_runner::run_cases(&$cfg, $name, |__rng| {
            $(let $p = $crate::strategy::Strategy::generate(&($s), __rng);)*
            $body
        });
    };
    (($($fix:tt)*) [$($acc:tt)*] $p:pat_param in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_body! { ($($fix)*) [$($acc)* [$p, $s],] $($rest)* }
    };
    (($($fix:tt)*) [$($acc:tt)*] $p:pat_param in $s:expr) => {
        $crate::__proptest_body! { ($($fix)*) [$($acc)* [$p, $s],] }
    };
    (($($fix:tt)*) [$($acc:tt)*] $p:ident: $t:ty, $($rest:tt)*) => {
        $crate::__proptest_body! {
            ($($fix)*) [$($acc)* [$p, $crate::arbitrary::any::<$t>()],] $($rest)*
        }
    };
    (($($fix:tt)*) [$($acc:tt)*] $p:ident: $t:ty) => {
        $crate::__proptest_body! {
            ($($fix)*) [$($acc)* [$p, $crate::arbitrary::any::<$t>()],]
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0usize..100, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_forms_interoperate(
            (a, b) in (0u32..10, 0u32..10),
            v in prop::collection::vec(0i32..5, 0..4),
            raw: u16,
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 4);
            let _ = raw;
        }

        #[test]
        fn oneof_and_flat_map_compose(x in prop_oneof![Just(1u8), 2u8..5]) {
            prop_assert!(x == 1 || (2..5).contains(&x));
        }
    }
}
