//! File-popularity lifecycle model.
//!
//! "Normally, data changes in popularity over time ... Their popularity
//! spikes when the data is freshest and decays as time goes by" (paper
//! Section I). The model combines:
//!
//! * a **Zipf base weight** per file (rank heavy-tail across the
//!   namespace), and
//! * an **exponential freshness decay** `exp(-age/τ)` plus a small floor
//!   (old data still gets the occasional read, becoming the cold tail).
//!
//! Sampling a file for a job at time `t` draws from the normalised
//! product of the two.

use simcore::{DetRng, SimDuration, SimTime};

/// The popularity model over `n` files.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    /// Zipf base weight per file (index = file index).
    base: Vec<f64>,
    /// Creation time per file.
    created: Vec<SimTime>,
    /// Freshness decay constant τ.
    tau: SimDuration,
    /// Weight floor as a fraction of the base weight (cold-tail reads).
    floor: f64,
}

impl PopularityModel {
    /// `exponent` is the Zipf skew (≈1.1 for HDFS-like workloads).
    pub fn new(created: Vec<SimTime>, exponent: f64, tau: SimDuration, floor: f64) -> Self {
        assert!(!created.is_empty());
        assert!((0.0..=1.0).contains(&floor));
        let n = created.len();
        let base = (0..n)
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
            .collect();
        PopularityModel {
            base,
            created,
            tau,
            floor,
        }
    }

    pub fn num_files(&self) -> usize {
        self.base.len()
    }

    /// Instantaneous sampling weight of file `i` at time `t`. Zero until
    /// the file exists.
    pub fn weight(&self, i: usize, t: SimTime) -> f64 {
        if t < self.created[i] {
            return 0.0;
        }
        let age = (t - self.created[i]).as_secs_f64();
        let tau = self.tau.as_secs_f64().max(f64::EPSILON);
        let freshness = (-age / tau).exp();
        self.base[i] * (self.floor + (1.0 - self.floor) * freshness)
    }

    /// Sample a file index at time `t`. Returns `None` when no file
    /// exists yet.
    pub fn sample(&self, t: SimTime, rng: &mut DetRng) -> Option<usize> {
        let weights: Vec<f64> = (0..self.num_files()).map(|i| self.weight(i, t)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return Some(i);
            }
        }
        Some(self.num_files() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> PopularityModel {
        let created = (0..n).map(|i| SimTime::from_secs(i as u64 * 100)).collect();
        PopularityModel::new(created, 1.1, SimDuration::from_secs(1000), 0.05)
    }

    #[test]
    fn unborn_files_have_zero_weight() {
        let m = model(10);
        assert_eq!(m.weight(5, SimTime::from_secs(499)), 0.0);
        assert!(m.weight(5, SimTime::from_secs(500)) > 0.0);
    }

    #[test]
    fn freshness_decays() {
        let m = model(10);
        let w_fresh = m.weight(0, SimTime::from_secs(0));
        let w_old = m.weight(0, SimTime::from_secs(5000));
        assert!(w_fresh > w_old);
        // but never below the floor
        let w_ancient = m.weight(0, SimTime::from_secs(1_000_000));
        assert!(w_ancient >= m.base_weight(0) * 0.05 * 0.999);
    }

    impl PopularityModel {
        fn base_weight(&self, i: usize) -> f64 {
            self.base[i]
        }
    }

    #[test]
    fn zipf_rank_orders_weights() {
        let m = model(10);
        let t = SimTime::from_secs(2000);
        // files 0..=9, same-age comparison isn't possible (staggered
        // creation), so compare base weights directly
        for i in 1..10 {
            assert!(m.base_weight(i - 1) > m.base_weight(i));
        }
        let _ = t;
    }

    #[test]
    fn sampling_is_head_heavy_and_fresh_biased() {
        let m = model(50);
        let mut rng = DetRng::new(7);
        let t = SimTime::from_secs(200); // files 0,1,2 exist; 2 is freshest
        let mut counts = [0u32; 50];
        for _ in 0..10_000 {
            counts[m.sample(t, &mut rng).unwrap()] += 1;
        }
        assert_eq!(
            counts[3..].iter().sum::<u32>(),
            0,
            "unborn files never drawn"
        );
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0);
        // file 0 has the biggest zipf weight and only mild decay at t=200
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn sample_before_any_creation() {
        let created = vec![SimTime::from_secs(100)];
        let m = PopularityModel::new(created, 1.1, SimDuration::from_secs(10), 0.1);
        let mut rng = DetRng::new(1);
        assert_eq!(m.sample(SimTime::from_secs(0), &mut rng), None);
        assert_eq!(m.sample(SimTime::from_secs(100), &mut rng), Some(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model(20);
        let draw = |seed| {
            let mut rng = DetRng::new(seed);
            (0..100)
                .map(|i| m.sample(SimTime::from_secs(1000 + i), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
