//! File-popularity lifecycle model.
//!
//! "Normally, data changes in popularity over time ... Their popularity
//! spikes when the data is freshest and decays as time goes by" (paper
//! Section I). The model combines:
//!
//! * a **Zipf base weight** per file (rank heavy-tail across the
//!   namespace), and
//! * an **exponential freshness decay** `exp(-age/τ)` plus a small floor
//!   (old data still gets the occasional read, becoming the cold tail).
//!
//! Sampling a file for a job at time `t` draws from the normalised
//! product of the two.
//!
//! ## Sampling cost
//!
//! The instantaneous weight factors into two components that are
//! *static per file* once it is born:
//!
//! ```text
//! w_i(t) = base_i · (floor + (1-floor)·exp(-(t-c_i)/τ))
//!        = floor·base_i  +  (1-floor)·exp(-t/τ) · base_i·exp(c_i/τ)
//! ```
//!
//! so [`PopularityModel::sample`] keeps two Fenwick (binary-indexed)
//! prefix-sum trees — one over `base_i` and one over the
//! freshness-scaled `base_i·exp((c_i-t₀)/τ)` — inserts files as they are
//! born, and draws in O(log N) by descending whichever component the
//! uniform draw lands in. The freshness tree carries a sliding reference
//! time `t₀` and is rebased (O(born)) whenever the exponent would drift
//! out of `f64` range, so multi-day horizons over 100k-file namespaces
//! stay exact. [`PopularityModel::sample_naive`] is the O(N) reference
//! path the equivalence tests pin the tree sampler against.

use simcore::{DetRng, SimDuration, SimTime};

/// Exponent span after which the freshness tree is rebased to a new
/// reference time. Well inside `f64` range (exp(60) ≈ 1.1e26) so sums
/// of many entries never overflow.
const REBASE_SPAN: f64 = 60.0;

/// Fenwick (binary-indexed) tree over per-file weights supporting point
/// updates, total, and "select the index covering prefix mass `x`".
#[derive(Debug, Clone, Default)]
struct Fenwick {
    /// 1-based internal tree; `tree[i]` sums the range `(i-lowbit(i), i]`.
    tree: Vec<f64>,
    values: Vec<f64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0.0; n + 1],
            values: vec![0.0; n],
        }
    }

    /// Set index `i` to `v` (delta-propagated).
    fn set(&mut self, i: usize, v: f64) {
        let delta = v - self.values[i];
        if delta == 0.0 {
            return;
        }
        self.values[i] = v;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    fn total(&self) -> f64 {
        let mut sum = 0.0;
        let mut j = self.values.len();
        while j > 0 {
            sum += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        sum
    }

    /// Smallest index whose inclusive prefix sum exceeds `x`, i.e. the
    /// file a uniform draw of prefix mass `x` lands on. Landing exactly
    /// on a boundary (or past the total, from float rounding) resolves
    /// to the nearest *positive-weight* index, so zero-weight (unborn)
    /// entries are never returned.
    fn select(&self, mut x: f64) -> Option<usize> {
        let n = self.values.len();
        let mut pos = 0usize; // count of fully consumed leading entries
        let mut mask = n.next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] <= x {
                x -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // pos ∈ [0, n]; rounding can leave it on a zero-weight entry or
        // one past the end — snap to a positive-weight neighbour.
        if pos < n && self.values[pos] > 0.0 {
            return Some(pos);
        }
        self.values[..pos.min(n)]
            .iter()
            .rposition(|&v| v > 0.0)
            .or_else(|| {
                self.values[pos.min(n)..]
                    .iter()
                    .position(|&v| v > 0.0)
                    .map(|k| pos + k)
            })
    }
}

/// The popularity model over `n` files.
#[derive(Debug, Clone)]
pub struct PopularityModel {
    /// Zipf base weight per file (index = file index).
    base: Vec<f64>,
    /// Creation time per file.
    created: Vec<SimTime>,
    /// Freshness decay constant τ.
    tau: SimDuration,
    /// Weight floor as a fraction of the base weight (cold-tail reads).
    floor: f64,
    /// File indices sorted by creation time (ties by index) — the order
    /// files enter the trees as sample times advance.
    by_creation: Vec<u32>,
    /// How many of `by_creation` are currently inserted.
    born: usize,
    /// Reference time (seconds) of the freshness tree's scaled values.
    fresh_t0: f64,
    /// Prefix sums of `base_i` over born files.
    floor_tree: Fenwick,
    /// Prefix sums of `base_i·exp((c_i - fresh_t0)/τ)` over born files.
    fresh_tree: Fenwick,
}

impl PopularityModel {
    /// `exponent` is the Zipf skew (≈1.1 for HDFS-like workloads).
    pub fn new(created: Vec<SimTime>, exponent: f64, tau: SimDuration, floor: f64) -> Self {
        assert!(!created.is_empty());
        assert!((0.0..=1.0).contains(&floor));
        let n = created.len();
        let base: Vec<f64> = (0..n)
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
            .collect();
        let mut by_creation: Vec<u32> = (0..n as u32).collect();
        by_creation.sort_by_key(|&i| (created[i as usize], i));
        PopularityModel {
            base,
            created,
            tau,
            floor,
            by_creation,
            born: 0,
            fresh_t0: 0.0,
            floor_tree: Fenwick::new(n),
            fresh_tree: Fenwick::new(n),
        }
    }

    pub fn num_files(&self) -> usize {
        self.base.len()
    }

    fn tau_secs(&self) -> f64 {
        self.tau.as_secs_f64().max(f64::EPSILON)
    }

    /// Instantaneous sampling weight of file `i` at time `t`. Zero until
    /// the file exists.
    pub fn weight(&self, i: usize, t: SimTime) -> f64 {
        if t < self.created[i] {
            return 0.0;
        }
        let age = (t - self.created[i]).as_secs_f64();
        let freshness = (-age / self.tau_secs()).exp();
        self.base[i] * (self.floor + (1.0 - self.floor) * freshness)
    }

    /// Recompute every born file's freshness value against a new
    /// reference time. O(born); runs only when the exponent span since
    /// the last rebase exceeds [`REBASE_SPAN`] · τ.
    fn rebase_fresh(&mut self, t0: f64) {
        self.fresh_t0 = t0;
        let tau = self.tau_secs();
        for k in 0..self.born {
            let i = self.by_creation[k] as usize;
            let v = self.base[i] * ((self.created[i].as_secs_f64() - t0) / tau).exp();
            self.fresh_tree.set(i, v);
        }
    }

    /// Bring the born set (and the trees) in line with time `t`. Handles
    /// time moving either direction; forward-only in the common case.
    fn sync(&mut self, t: SimTime) {
        let n = self.num_files();
        let tau = self.tau_secs();
        while self.born < n {
            let i = self.by_creation[self.born] as usize;
            if self.created[i] > t {
                break;
            }
            let c = self.created[i].as_secs_f64();
            if (c - self.fresh_t0) / tau > REBASE_SPAN {
                self.rebase_fresh(c);
            }
            self.floor_tree.set(i, self.base[i]);
            let v = self.base[i] * ((c - self.fresh_t0) / tau).exp();
            self.fresh_tree.set(i, v);
            self.born += 1;
        }
        while self.born > 0 {
            let i = self.by_creation[self.born - 1] as usize;
            if self.created[i] <= t {
                break;
            }
            self.floor_tree.set(i, 0.0);
            self.fresh_tree.set(i, 0.0);
            self.born -= 1;
        }
        // keep the query-time decay factor representable
        if self.born > 0 && (t.as_secs_f64() - self.fresh_t0) / tau > REBASE_SPAN {
            self.rebase_fresh(t.as_secs_f64());
        }
    }

    /// Sample a file index at time `t` in O(log N). Returns `None` when
    /// no file exists yet. Consumes exactly one uniform draw, like
    /// [`sample_naive`](Self::sample_naive); the two paths draw from the
    /// same distribution (the equivalence test pins them together) but
    /// not the same exact index sequence.
    pub fn sample(&mut self, t: SimTime, rng: &mut DetRng) -> Option<usize> {
        self.sync(t);
        if self.born == 0 {
            return None;
        }
        let decay = (-(t.as_secs_f64() - self.fresh_t0) / self.tau_secs()).exp();
        let floor_total = self.floor * self.floor_tree.total();
        let fresh_coeff = (1.0 - self.floor) * decay;
        let fresh_total = fresh_coeff * self.fresh_tree.total();
        let total = floor_total + fresh_total;
        if !(total > 0.0 && total.is_finite()) {
            // degenerate weights (all-underflowed freshness with a zero
            // floor) — fall back to the reference path
            return self.sample_naive(t, rng);
        }
        let x = rng.gen_f64() * total;
        if x < floor_total {
            self.floor_tree.select(x / self.floor)
        } else {
            self.fresh_tree.select((x - floor_total) / fresh_coeff)
        }
    }

    /// The O(N) reference sampler: recomputes every weight and walks the
    /// running sum. Kept as the semantic spec for [`sample`](Self::sample)
    /// and for the equivalence tests.
    pub fn sample_naive(&self, t: SimTime, rng: &mut DetRng) -> Option<usize> {
        let weights: Vec<f64> = (0..self.num_files()).map(|i| self.weight(i, t)).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let x = rng.gen_f64() * total;
        pick_index(&weights, x)
    }
}

/// Walk `weights`' running sum until it covers `x`. When float
/// accumulation leaves `x` uncovered past the last element, fall back to
/// the last *positive-weight* index — never an unborn (zero-weight)
/// file, which the old `weights.len() - 1` fallback could return when
/// the tail of the namespace did not exist yet.
fn pick_index(weights: &[f64], mut x: f64) -> Option<usize> {
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 && *w > 0.0 {
            return Some(i);
        }
    }
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> PopularityModel {
        let created = (0..n).map(|i| SimTime::from_secs(i as u64 * 100)).collect();
        PopularityModel::new(created, 1.1, SimDuration::from_secs(1000), 0.05)
    }

    #[test]
    fn unborn_files_have_zero_weight() {
        let m = model(10);
        assert_eq!(m.weight(5, SimTime::from_secs(499)), 0.0);
        assert!(m.weight(5, SimTime::from_secs(500)) > 0.0);
    }

    #[test]
    fn freshness_decays() {
        let m = model(10);
        let w_fresh = m.weight(0, SimTime::from_secs(0));
        let w_old = m.weight(0, SimTime::from_secs(5000));
        assert!(w_fresh > w_old);
        // but never below the floor
        let w_ancient = m.weight(0, SimTime::from_secs(1_000_000));
        assert!(w_ancient >= m.base_weight(0) * 0.05 * 0.999);
    }

    impl PopularityModel {
        fn base_weight(&self, i: usize) -> f64 {
            self.base[i]
        }
    }

    #[test]
    fn zipf_rank_orders_weights() {
        let m = model(10);
        let t = SimTime::from_secs(2000);
        // files 0..=9, same-age comparison isn't possible (staggered
        // creation), so compare base weights directly
        for i in 1..10 {
            assert!(m.base_weight(i - 1) > m.base_weight(i));
        }
        let _ = t;
    }

    #[test]
    fn sampling_is_head_heavy_and_fresh_biased() {
        let mut m = model(50);
        let mut rng = DetRng::new(7);
        let t = SimTime::from_secs(200); // files 0,1,2 exist; 2 is freshest
        let mut counts = [0u32; 50];
        for _ in 0..10_000 {
            counts[m.sample(t, &mut rng).unwrap()] += 1;
        }
        assert_eq!(
            counts[3..].iter().sum::<u32>(),
            0,
            "unborn files never drawn"
        );
        assert!(counts[0] > 0 && counts[1] > 0 && counts[2] > 0);
        // file 0 has the biggest zipf weight and only mild decay at t=200
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn sample_before_any_creation() {
        let created = vec![SimTime::from_secs(100)];
        let mut m = PopularityModel::new(created, 1.1, SimDuration::from_secs(10), 0.1);
        let mut rng = DetRng::new(1);
        assert_eq!(m.sample(SimTime::from_secs(0), &mut rng), None);
        assert_eq!(m.sample(SimTime::from_secs(100), &mut rng), Some(0));
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = |seed| {
            let mut m = model(20);
            let mut rng = DetRng::new(seed);
            (0..100)
                .map(|i| m.sample(SimTime::from_secs(1000 + i), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    /// Total variation distance between empirical draw frequencies and
    /// the exact distribution implied by [`PopularityModel::weight`].
    fn tvd_vs_exact(m: &PopularityModel, t: SimTime, counts: &[u32], draws: usize) -> f64 {
        let weights: Vec<f64> = (0..m.num_files()).map(|i| m.weight(i, t)).collect();
        let total: f64 = weights.iter().sum();
        counts
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| (c as f64 / draws as f64 - w / total).abs())
            .sum::<f64>()
            / 2.0
    }

    /// Both sampling paths draw from the exact distribution defined by
    /// `weight()`: empirical frequencies match the true probabilities
    /// within total-variation distance at every probed time, including
    /// mid-birth times where part of the namespace is unborn.
    #[test]
    fn tree_sampler_matches_naive_distribution() {
        const DRAWS: usize = 60_000;
        let mut m = model(120);
        for t_secs in [150u64, 2_000, 6_500, 40_000] {
            let t = SimTime::from_secs(t_secs);
            let mut fast = vec![0u32; 120];
            let mut naive = vec![0u32; 120];
            let mut rng_a = DetRng::new(9);
            let mut rng_b = DetRng::new(10);
            for _ in 0..DRAWS {
                fast[m.sample(t, &mut rng_a).unwrap()] += 1;
                naive[m.sample_naive(t, &mut rng_b).unwrap()] += 1;
            }
            let tvd_fast = tvd_vs_exact(&m, t, &fast, DRAWS);
            let tvd_naive = tvd_vs_exact(&m, t, &naive, DRAWS);
            assert!(tvd_fast < 0.02, "t={t_secs}: tree sampler TVD {tvd_fast}");
            assert!(
                tvd_naive < 0.02,
                "t={t_secs}: naive sampler TVD {tvd_naive}"
            );
            // and neither path ever draws an unborn file
            for (i, (&a, &b)) in fast.iter().zip(&naive).enumerate() {
                if m.weight(i, t) == 0.0 {
                    assert_eq!((a, b), (0, 0), "unborn file {i} drawn at t={t_secs}");
                }
            }
        }
    }

    /// Regression for the rounding fallback: when accumulation error
    /// leaves `x` uncovered, the walk must land on the last
    /// positive-weight file, never on an unborn zero-weight tail entry.
    #[test]
    fn pick_index_fallback_skips_zero_weight_tail() {
        let weights = [0.4, 0.6, 0.0, 0.0];
        // x past the true total simulates float overshoot
        assert_eq!(pick_index(&weights, 1.0 + 1e-9), Some(1));
        assert_eq!(pick_index(&weights, f64::MAX), Some(1));
        // a landing exactly on a zero-weight entry resolves to a positive one
        assert_eq!(pick_index(&[0.0, 1.0, 0.0], 1.0), Some(1));
        // all-zero weights have no valid pick
        assert_eq!(pick_index(&[0.0, 0.0], 0.5), None);
    }

    /// Time moving backwards un-inserts files; unborn files are never
    /// drawn afterwards.
    #[test]
    fn time_can_move_backwards() {
        let mut m = model(30);
        let mut rng = DetRng::new(3);
        for _ in 0..100 {
            assert!(m.sample(SimTime::from_secs(2950), &mut rng).is_some());
        }
        for _ in 0..2_000 {
            let i = m.sample(SimTime::from_secs(250), &mut rng).unwrap();
            assert!(i <= 2, "file {i} unborn at t=250");
        }
    }

    /// Creation spans far exceeding τ force freshness-tree rebases; the
    /// sampler must stay finite and still agree with the naive path.
    #[test]
    fn wide_creation_span_rebases_without_overflow() {
        let created: Vec<SimTime> = (0..40).map(|i| SimTime::from_secs(i * 50_000)).collect();
        let mut m = PopularityModel::new(created, 1.1, SimDuration::from_secs(300), 0.02);
        let t = SimTime::from_secs(40 * 50_000);
        const DRAWS: usize = 40_000;
        let mut fast = vec![0u32; 40];
        let mut naive = vec![0u32; 40];
        let mut rng_a = DetRng::new(5);
        let mut rng_b = DetRng::new(6);
        for _ in 0..DRAWS {
            fast[m.sample(t, &mut rng_a).unwrap()] += 1;
            naive[m.sample_naive(t, &mut rng_b).unwrap()] += 1;
        }
        let tvd_fast = tvd_vs_exact(&m, t, &fast, DRAWS);
        let tvd_naive = tvd_vs_exact(&m, t, &naive, DRAWS);
        assert!(
            tvd_fast < 0.02,
            "tree sampler TVD {tvd_fast} across rebases"
        );
        assert!(tvd_naive < 0.02, "naive sampler TVD {tvd_naive}");
    }
}
