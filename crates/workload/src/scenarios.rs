//! Production-shaped scenario generators.
//!
//! The SWIM generator ([`crate::swim`]) is stationary: one Zipf
//! popularity law, one Poisson arrival rate, for the whole horizon.
//! Production cluster traces are not — the tiered-storage literature
//! (arXiv 1907.02394) characterises multi-tenant traffic with diurnal
//! cycles, correlated cross-file flash crowds, continuous ingest
//! pipelines running next to periodic scans, and pressure that migrates
//! between storage tiers as data cools. This module synthesises those
//! four shapes, each seeded and fully deterministic, all emitting the
//! same [`Trace`] format the replay and soak drivers already consume.
//!
//! Every generator follows the same discipline as [`crate::swim`]:
//! fork one RNG stream per concern (files vs arrivals) so a parameter
//! tweak in one leg never perturbs the draws of another, timestamp
//! everything in seconds, and sort jobs by submit time before emission
//! so downstream drivers can binary-search the schedule.

use crate::popularity::PopularityModel;
use crate::swim::{Trace, TraceFile, TraceJob};
use simcore::units::{Bytes, MB};
use simcore::{DetRng, SimDuration, SimTime};

/// Lognormal file size clamped to `[min_mb, max_mb]`, in bytes.
fn lognormal_size(rng: &mut DetRng, mu: f64, sigma: f64, min_mb: u64, max_mb: u64) -> Bytes {
    let mb = rng.lognormal(mu, sigma).clamp(min_mb as f64, max_mb as f64);
    (mb.round() as u64) * MB
}

/// Finalise a job list: stable-sort by submit time (ties keep the
/// deterministic insertion order) and name jobs in submission order.
fn finalize_jobs(mut jobs: Vec<TraceJob>) -> Vec<TraceJob> {
    jobs.sort_by(|a, b| a.submit_at_secs.partial_cmp(&b.submit_at_secs).unwrap());
    for (j, job) in jobs.iter_mut().enumerate() {
        job.name = format!("job_{j:05}");
    }
    jobs
}

/// Multi-tenant Zipfian traffic with per-tenant diurnal cycles.
///
/// Each tenant owns a namespace subtree and a popularity model over its
/// own files; tenant share of traffic is itself Zipf. Tenant activity
/// follows a raised-cosine day curve with staggered peaks, so
/// cluster-wide load breathes but never fully sleeps — the shape the
/// elastic replica manager's scale-up/scale-down loop has to track.
#[derive(Debug, Clone)]
pub struct DiurnalConfig {
    pub tenants: usize,
    pub files_per_tenant: usize,
    pub horizon_secs: f64,
    /// Length of one diurnal cycle (86 400 for a real day).
    pub day_secs: f64,
    /// Cluster-wide arrival rate at a tenant's peak, jobs/hour.
    pub peak_jobs_per_hour: f64,
    /// Depth of the trough: 0 = flat, 1 = silent at the trough.
    pub diurnal_depth: f64,
    /// Zipf exponent of the tenant traffic shares.
    pub tenant_zipf: f64,
    /// Zipf exponent of per-tenant file popularity.
    pub zipf_exponent: f64,
    pub popularity_tau_secs: f64,
    pub popularity_floor: f64,
    pub file_size_mu: f64,
    pub file_size_sigma: f64,
    pub min_file_mb: u64,
    pub max_file_mb: u64,
    pub compute_per_block_secs: f64,
    pub reduce_secs: f64,
}

impl Default for DiurnalConfig {
    /// One simulated day, six tenants — the scorecard shape.
    fn default() -> Self {
        DiurnalConfig {
            tenants: 6,
            files_per_tenant: 8,
            horizon_secs: 86_400.0,
            day_secs: 86_400.0,
            peak_jobs_per_hour: 240.0,
            diurnal_depth: 0.8,
            tenant_zipf: 1.0,
            zipf_exponent: 1.1,
            popularity_tau_secs: 7200.0,
            popularity_floor: 0.08,
            file_size_mu: 4.8, // e^4.8 ≈ 122 MB median
            file_size_sigma: 0.6,
            min_file_mb: 64,
            max_file_mb: 512,
            compute_per_block_secs: 2.0,
            reduce_secs: 5.0,
        }
    }
}

impl DiurnalConfig {
    /// Two simulated days at a lower rate — the soak shape. Long enough
    /// that every tenant crosses two full peak/trough cycles.
    pub fn soak() -> Self {
        DiurnalConfig {
            horizon_secs: 172_800.0,
            peak_jobs_per_hour: 90.0,
            ..Self::default()
        }
    }

    /// Tenant `k`'s activity multiplier at time `t`: a raised cosine
    /// peaking at the tenant's staggered phase, in `[1 - depth, 1]`.
    fn activity(&self, tenant: usize, t: f64) -> f64 {
        let phase = self.day_secs * tenant as f64 / self.tenants.max(1) as f64;
        let angle = 2.0 * std::f64::consts::PI * (t - phase) / self.day_secs;
        (1.0 - self.diurnal_depth) + self.diurnal_depth * 0.5 * (1.0 + angle.cos())
    }
}

/// Background Zipf traffic punctuated by correlated cross-file flash
/// crowds: an episode picks a file *group* (a dataset's partitions) and
/// slams every file in it with a train of jobs inside a short span —
/// the paper's "hot data requested by many distributed clients
/// concurrently", but correlated across files instead of one at a time.
#[derive(Debug, Clone)]
pub struct FlashCrowdConfig {
    pub groups: usize,
    pub files_per_group: usize,
    pub horizon_secs: f64,
    /// Mean inter-arrival of the background (non-crowd) jobs.
    pub background_interarrival_secs: f64,
    /// Number of flash-crowd episodes across the horizon.
    pub crowds: usize,
    /// Jobs aimed at *each* file of the crowded group.
    pub crowd_jobs_per_file: usize,
    /// All of one episode's jobs land inside this span.
    pub crowd_span_secs: f64,
    /// Zipf exponent for which group a crowd hits.
    pub group_zipf: f64,
    pub zipf_exponent: f64,
    pub popularity_tau_secs: f64,
    pub popularity_floor: f64,
    pub file_size_mu: f64,
    pub file_size_sigma: f64,
    pub min_file_mb: u64,
    pub max_file_mb: u64,
    pub compute_per_block_secs: f64,
    pub reduce_secs: f64,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig {
            groups: 8,
            files_per_group: 5,
            horizon_secs: 14_400.0,
            background_interarrival_secs: 30.0,
            crowds: 6,
            crowd_jobs_per_file: 20,
            crowd_span_secs: 120.0,
            group_zipf: 1.0,
            zipf_exponent: 1.1,
            popularity_tau_secs: 3600.0,
            popularity_floor: 0.1,
            file_size_mu: 4.8,
            file_size_sigma: 0.6,
            min_file_mb: 64,
            max_file_mb: 512,
            compute_per_block_secs: 2.0,
            reduce_secs: 5.0,
        }
    }
}

/// Write-heavy continuous ingest running alongside periodic scan jobs.
///
/// New files land throughout the horizon (the write pressure), each
/// read a few times while fresh; meanwhile a scheduled scan sweeps the
/// namespace in round-robin batches, touching cold files the freshness
/// bias would otherwise never revisit.
#[derive(Debug, Clone)]
pub struct IngestScanConfig {
    /// Files present at t≈0.
    pub initial_files: usize,
    /// Files ingested across the horizon.
    pub ingest_files: usize,
    pub horizon_secs: f64,
    /// Reads of each ingested file shortly after it lands.
    pub fresh_reads_per_ingest: usize,
    /// Mean delay from ingest to each fresh read.
    pub fresh_read_lag_secs: f64,
    /// Scan sweeps start every this-many seconds.
    pub scan_every_secs: f64,
    /// Files touched per sweep (round-robin cursor over the namespace).
    pub scan_files_per_sweep: usize,
    /// Submit gap between consecutive jobs of one sweep.
    pub scan_spacing_secs: f64,
    pub file_size_mu: f64,
    pub file_size_sigma: f64,
    pub min_file_mb: u64,
    pub max_file_mb: u64,
    pub compute_per_block_secs: f64,
    pub reduce_secs: f64,
}

impl Default for IngestScanConfig {
    fn default() -> Self {
        IngestScanConfig {
            initial_files: 12,
            ingest_files: 48,
            horizon_secs: 21_600.0,
            fresh_reads_per_ingest: 4,
            fresh_read_lag_secs: 180.0,
            scan_every_secs: 1800.0,
            scan_files_per_sweep: 16,
            scan_spacing_secs: 2.0,
            file_size_mu: 5.0,
            file_size_sigma: 0.5,
            min_file_mb: 64,
            max_file_mb: 512,
            compute_per_block_secs: 2.0,
            reduce_secs: 5.0,
        }
    }
}

/// Tiered-storage pressure: files arrive in waves, traffic concentrates
/// on the newest wave (short freshness τ relative to wave spacing) while
/// older waves cool past the manager's cold-age threshold — with the
/// occasional floor-driven read reaching back into the cold tier. Run
/// with erasure coding enabled, this is the scenario where the
/// cold-data policy's storage/latency trade actually shows.
#[derive(Debug, Clone)]
pub struct TieredConfig {
    pub waves: usize,
    pub files_per_wave: usize,
    pub horizon_secs: f64,
    /// A wave's creations spread over this window from its start.
    pub wave_window_secs: f64,
    pub mean_interarrival_secs: f64,
    pub zipf_exponent: f64,
    /// Short relative to wave spacing, so old waves actually go cold.
    pub popularity_tau_secs: f64,
    /// Small but positive: the cold tier still sees the odd read.
    pub popularity_floor: f64,
    pub file_size_mu: f64,
    pub file_size_sigma: f64,
    pub min_file_mb: u64,
    pub max_file_mb: u64,
    pub compute_per_block_secs: f64,
    pub reduce_secs: f64,
}

impl Default for TieredConfig {
    fn default() -> Self {
        TieredConfig {
            waves: 4,
            files_per_wave: 12,
            horizon_secs: 28_800.0,
            wave_window_secs: 1800.0,
            mean_interarrival_secs: 20.0,
            zipf_exponent: 1.05,
            popularity_tau_secs: 3600.0,
            popularity_floor: 0.03,
            file_size_mu: 4.8,
            file_size_sigma: 0.6,
            min_file_mb: 64,
            max_file_mb: 384,
            compute_per_block_secs: 2.0,
            reduce_secs: 5.0,
        }
    }
}

/// A production-shaped scenario: four traffic shapes behind one
/// `generate` entry point, so drivers (replay, soak, scorecard) stay
/// agnostic of which shape they are running.
#[derive(Debug, Clone)]
pub enum ProdScenario {
    Diurnal(DiurnalConfig),
    FlashCrowd(FlashCrowdConfig),
    IngestScan(IngestScanConfig),
    Tiered(TieredConfig),
}

impl ProdScenario {
    pub fn kind(&self) -> &'static str {
        match self {
            ProdScenario::Diurnal(_) => "diurnal",
            ProdScenario::FlashCrowd(_) => "flash-crowd",
            ProdScenario::IngestScan(_) => "ingest-scan",
            ProdScenario::Tiered(_) => "tiered",
        }
    }

    /// Synthesise the trace. Same seed ⇒ byte-identical trace.
    pub fn generate(&self, seed: u64) -> Trace {
        match self {
            ProdScenario::Diurnal(c) => generate_diurnal(c, seed),
            ProdScenario::FlashCrowd(c) => generate_flash_crowd(c, seed),
            ProdScenario::IngestScan(c) => generate_ingest_scan(c, seed),
            ProdScenario::Tiered(c) => generate_tiered(c, seed),
        }
    }
}

fn generate_diurnal(cfg: &DiurnalConfig, seed: u64) -> Trace {
    assert!(cfg.tenants > 0 && cfg.files_per_tenant > 0);
    assert!(cfg.day_secs > 0.0 && (0.0..=1.0).contains(&cfg.diurnal_depth));
    let mut rng = DetRng::new(seed);
    let mut file_rng = rng.fork(1);
    let mut job_rng = rng.fork(2);

    // Each tenant's files appear over the first tenth of the horizon,
    // ordered so index tracks creation (popularity rank by index).
    let window = cfg.horizon_secs / 10.0;
    let mut files = Vec::new();
    let mut models = Vec::new();
    for k in 0..cfg.tenants {
        let mut created: Vec<f64> = (0..cfg.files_per_tenant)
            .map(|_| file_rng.gen_f64() * window)
            .collect();
        created.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let start = files.len();
        for (i, &t) in created.iter().enumerate() {
            files.push(TraceFile {
                path: format!("/prod/diurnal/t{k}/f{i:03}"),
                size: lognormal_size(
                    &mut file_rng,
                    cfg.file_size_mu,
                    cfg.file_size_sigma,
                    cfg.min_file_mb,
                    cfg.max_file_mb,
                ),
                created_at_secs: t,
            });
        }
        models.push((
            start,
            PopularityModel::new(
                created.iter().map(|&t| SimTime::from_secs_f64(t)).collect(),
                cfg.zipf_exponent,
                SimDuration::from_secs_f64(cfg.popularity_tau_secs),
                cfg.popularity_floor,
            ),
        ));
    }

    // Thinned Poisson process: candidates arrive at the peak rate, a
    // candidate picks its tenant Zipf-wise and survives with the
    // tenant's diurnal activity factor at that instant.
    let peak_rate_per_sec = cfg.peak_jobs_per_hour / 3600.0;
    let mut jobs = Vec::new();
    let mut t = window * 0.2; // first files exist
    loop {
        t += job_rng.exp(1.0 / peak_rate_per_sec);
        if t > cfg.horizon_secs {
            break;
        }
        let tenant = job_rng.zipf(cfg.tenants, cfg.tenant_zipf);
        if !job_rng.chance(cfg.activity(tenant, t)) {
            continue;
        }
        let (start, model) = &mut models[tenant];
        let Some(fi) = model.sample(SimTime::from_secs_f64(t), &mut job_rng) else {
            continue;
        };
        jobs.push(TraceJob {
            name: String::new(),
            input: files[*start + fi].path.clone(),
            submit_at_secs: t,
            compute_per_block_secs: cfg.compute_per_block_secs,
            reduce_secs: cfg.reduce_secs,
        });
    }

    Trace {
        config_seed: seed,
        files,
        jobs: finalize_jobs(jobs),
    }
}

fn generate_flash_crowd(cfg: &FlashCrowdConfig, seed: u64) -> Trace {
    assert!(cfg.groups > 0 && cfg.files_per_group > 0);
    let mut rng = DetRng::new(seed);
    let mut file_rng = rng.fork(1);
    let mut job_rng = rng.fork(2);
    let mut crowd_rng = rng.fork(3);

    // Grouped namespace; all files land in the first 5% of the horizon.
    let window = cfg.horizon_secs / 20.0;
    let mut files = Vec::new();
    let mut created = Vec::new();
    for g in 0..cfg.groups {
        for i in 0..cfg.files_per_group {
            let t = file_rng.gen_f64() * window;
            created.push(SimTime::from_secs_f64(t));
            files.push(TraceFile {
                path: format!("/prod/crowd/g{g}/f{i:02}"),
                size: lognormal_size(
                    &mut file_rng,
                    cfg.file_size_mu,
                    cfg.file_size_sigma,
                    cfg.min_file_mb,
                    cfg.max_file_mb,
                ),
                created_at_secs: t,
            });
        }
    }
    let mut model = PopularityModel::new(
        created,
        cfg.zipf_exponent,
        SimDuration::from_secs_f64(cfg.popularity_tau_secs),
        cfg.popularity_floor,
    );

    // Background traffic: plain popularity-driven Poisson reads.
    let mut jobs = Vec::new();
    let mut t = window;
    loop {
        t += job_rng.exp(cfg.background_interarrival_secs);
        if t > cfg.horizon_secs {
            break;
        }
        let Some(fi) = model.sample(SimTime::from_secs_f64(t), &mut job_rng) else {
            continue;
        };
        jobs.push(TraceJob {
            name: String::new(),
            input: files[fi].path.clone(),
            submit_at_secs: t,
            compute_per_block_secs: cfg.compute_per_block_secs,
            reduce_secs: cfg.reduce_secs,
        });
    }

    // Crowd episodes: evenly spaced with jitter, each slamming a whole
    // Zipf-chosen group — every file in the group, many jobs per file,
    // all inside the episode span.
    for c in 0..cfg.crowds {
        let center = cfg.horizon_secs * (c as f64 + 1.0) / (cfg.crowds as f64 + 1.0);
        let jitter = (crowd_rng.gen_f64() - 0.5) * cfg.crowd_span_secs;
        let start = (center + jitter - cfg.crowd_span_secs / 2.0).max(window);
        let group = crowd_rng.zipf(cfg.groups, cfg.group_zipf);
        for i in 0..cfg.files_per_group {
            let path = format!("/prod/crowd/g{group}/f{i:02}");
            for _ in 0..cfg.crowd_jobs_per_file {
                jobs.push(TraceJob {
                    name: String::new(),
                    input: path.clone(),
                    submit_at_secs: start + crowd_rng.gen_f64() * cfg.crowd_span_secs,
                    compute_per_block_secs: cfg.compute_per_block_secs,
                    reduce_secs: cfg.reduce_secs,
                });
            }
        }
    }

    Trace {
        config_seed: seed,
        files,
        jobs: finalize_jobs(jobs),
    }
}

fn generate_ingest_scan(cfg: &IngestScanConfig, seed: u64) -> Trace {
    assert!(cfg.initial_files + cfg.ingest_files > 0);
    let mut rng = DetRng::new(seed);
    let mut file_rng = rng.fork(1);
    let mut job_rng = rng.fork(2);

    // Initial corpus at t≈0, then a steady drip of ingested files across
    // the whole horizon (evenly spaced starts with jitter, so the write
    // pressure never lets up).
    let mut files = Vec::new();
    for i in 0..cfg.initial_files {
        files.push(TraceFile {
            path: format!("/prod/ingest/f{i:04}"),
            size: lognormal_size(
                &mut file_rng,
                cfg.file_size_mu,
                cfg.file_size_sigma,
                cfg.min_file_mb,
                cfg.max_file_mb,
            ),
            created_at_secs: file_rng.gen_f64() * 60.0,
        });
    }
    let slot = cfg.horizon_secs / (cfg.ingest_files.max(1) as f64 + 1.0);
    for n in 0..cfg.ingest_files {
        let i = cfg.initial_files + n;
        let t = slot * (n as f64 + 0.5 + file_rng.gen_f64() * 0.5);
        files.push(TraceFile {
            path: format!("/prod/ingest/f{i:04}"),
            size: lognormal_size(
                &mut file_rng,
                cfg.file_size_mu,
                cfg.file_size_sigma,
                cfg.min_file_mb,
                cfg.max_file_mb,
            ),
            created_at_secs: t,
        });
    }

    // Fresh reads: each ingested file is read a few times shortly after
    // landing — the "validate what you just wrote" traffic.
    let mut jobs = Vec::new();
    for f in &files[cfg.initial_files..] {
        for _ in 0..cfg.fresh_reads_per_ingest {
            jobs.push(TraceJob {
                name: String::new(),
                input: f.path.clone(),
                submit_at_secs: f.created_at_secs + job_rng.exp(cfg.fresh_read_lag_secs),
                compute_per_block_secs: cfg.compute_per_block_secs,
                reduce_secs: cfg.reduce_secs,
            });
        }
    }

    // Scan sweeps: a round-robin cursor walks the namespace in batches,
    // reading whatever exists by sweep time — cold files included.
    let mut cursor = 0usize;
    let mut sweep_start = cfg.scan_every_secs;
    while sweep_start < cfg.horizon_secs {
        let existing: Vec<&TraceFile> = files
            .iter()
            .filter(|f| f.created_at_secs <= sweep_start)
            .collect();
        if !existing.is_empty() {
            for s in 0..cfg.scan_files_per_sweep {
                let f = existing[(cursor + s) % existing.len()];
                jobs.push(TraceJob {
                    name: String::new(),
                    input: f.path.clone(),
                    submit_at_secs: sweep_start + s as f64 * cfg.scan_spacing_secs,
                    compute_per_block_secs: cfg.compute_per_block_secs,
                    reduce_secs: cfg.reduce_secs,
                });
            }
            cursor = (cursor + cfg.scan_files_per_sweep) % existing.len();
        }
        sweep_start += cfg.scan_every_secs;
    }

    Trace {
        config_seed: seed,
        files,
        jobs: finalize_jobs(jobs),
    }
}

fn generate_tiered(cfg: &TieredConfig, seed: u64) -> Trace {
    assert!(cfg.waves > 0 && cfg.files_per_wave > 0);
    let mut rng = DetRng::new(seed);
    let mut file_rng = rng.fork(1);
    let mut job_rng = rng.fork(2);

    // Waves of files at regular intervals; inside a wave, creations
    // spread over the wave window. Freshness τ ≪ wave spacing, so by
    // the time wave w+1 peaks, wave w has cooled toward the floor.
    let wave_gap = cfg.horizon_secs / cfg.waves as f64;
    let mut files = Vec::new();
    for w in 0..cfg.waves {
        let wave_start = w as f64 * wave_gap;
        let mut times: Vec<f64> = (0..cfg.files_per_wave)
            .map(|_| wave_start + file_rng.gen_f64() * cfg.wave_window_secs)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &t) in times.iter().enumerate() {
            files.push(TraceFile {
                path: format!("/prod/tiered/w{w}/f{i:03}"),
                size: lognormal_size(
                    &mut file_rng,
                    cfg.file_size_mu,
                    cfg.file_size_sigma,
                    cfg.min_file_mb,
                    cfg.max_file_mb,
                ),
                created_at_secs: t,
            });
        }
    }
    // The model assigns Zipf base weight by index, so feeding files in
    // wave order would hand the oldest wave the top ranks forever. Deal
    // ranks round-robin across waves instead: every wave carries
    // comparable base mass, and *freshness* — not rank — decides which
    // tier is hot.
    let rank_to_file: Vec<usize> = (0..cfg.waves * cfg.files_per_wave)
        .map(|r| (r % cfg.waves) * cfg.files_per_wave + r / cfg.waves)
        .collect();
    let mut model = PopularityModel::new(
        rank_to_file
            .iter()
            .map(|&f| SimTime::from_secs_f64(files[f].created_at_secs))
            .collect(),
        cfg.zipf_exponent,
        SimDuration::from_secs_f64(cfg.popularity_tau_secs),
        cfg.popularity_floor,
    );

    // One global popularity-driven Poisson stream: the freshness bias
    // concentrates it on the newest wave, the floor keeps a trickle of
    // cold-tier reads alive.
    let mut jobs = Vec::new();
    let mut t = files.first().map(|f| f.created_at_secs).unwrap_or(0.0);
    loop {
        t += job_rng.exp(cfg.mean_interarrival_secs);
        if t > cfg.horizon_secs {
            break;
        }
        let Some(rank) = model.sample(SimTime::from_secs_f64(t), &mut job_rng) else {
            continue;
        };
        jobs.push(TraceJob {
            name: String::new(),
            input: files[rank_to_file[rank]].path.clone(),
            submit_at_secs: t,
            compute_per_block_secs: cfg.compute_per_block_secs,
            reduce_secs: cfg.reduce_secs,
        });
    }

    Trace {
        config_seed: seed,
        files,
        jobs: finalize_jobs(jobs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn all_scenarios() -> Vec<ProdScenario> {
        vec![
            ProdScenario::Diurnal(DiurnalConfig::default()),
            ProdScenario::FlashCrowd(FlashCrowdConfig::default()),
            ProdScenario::IngestScan(IngestScanConfig::default()),
            ProdScenario::Tiered(TieredConfig::default()),
        ]
    }

    #[test]
    fn every_scenario_is_deterministic_and_seed_sensitive() {
        for s in all_scenarios() {
            let a = s.generate(11);
            let b = s.generate(11);
            assert_eq!(a, b, "{} not deterministic", s.kind());
            let c = s.generate(12);
            assert_ne!(a, c, "{} ignores the seed", s.kind());
        }
    }

    #[test]
    fn jobs_are_ordered_named_sequentially_and_reference_live_files() {
        for s in all_scenarios() {
            let t = s.generate(3);
            assert!(!t.jobs.is_empty(), "{} emits no jobs", s.kind());
            let by_path: BTreeMap<&str, f64> = t
                .files
                .iter()
                .map(|f| (f.path.as_str(), f.created_at_secs))
                .collect();
            assert_eq!(by_path.len(), t.files.len(), "duplicate paths");
            for (j, job) in t.jobs.iter().enumerate() {
                assert_eq!(job.name, format!("job_{j:05}"));
                let created = *by_path
                    .get(job.input.as_str())
                    .unwrap_or_else(|| panic!("{}: job reads unknown file", s.kind()));
                assert!(
                    job.submit_at_secs >= created,
                    "{}: {} read {:.0}s before it exists",
                    s.kind(),
                    job.input,
                    created - job.submit_at_secs
                );
            }
            for w in t.jobs.windows(2) {
                assert!(w[0].submit_at_secs <= w[1].submit_at_secs);
            }
        }
    }

    #[test]
    fn diurnal_traffic_actually_breathes() {
        let t = ProdScenario::Diurnal(DiurnalConfig::default()).generate(7);
        // bucket arrivals by hour; peak hour should dominate the trough
        let mut hourly = [0u32; 24];
        for j in &t.jobs {
            hourly[((j.submit_at_secs / 3600.0) as usize).min(23)] += 1;
        }
        let max = *hourly.iter().max().unwrap();
        let min = *hourly.iter().min().unwrap();
        assert!(
            max >= 2 * min.max(1),
            "no diurnal swing: max {max}/h min {min}/h"
        );
        // multi-tenant: more than one tenant subtree sees traffic
        let tenants: std::collections::BTreeSet<&str> = t
            .jobs
            .iter()
            .map(|j| j.input.split('/').nth(3).unwrap())
            .collect();
        assert!(tenants.len() >= 3, "only {} tenants active", tenants.len());
    }

    #[test]
    fn flash_crowds_spike_and_correlate_across_a_group() {
        let cfg = FlashCrowdConfig::default();
        let t = ProdScenario::FlashCrowd(cfg.clone()).generate(5);
        // split the horizon into span-sized windows; the busiest window
        // must hold a whole episode (≫ background) and touch the whole
        // crowded group
        let buckets = (cfg.horizon_secs / cfg.crowd_span_secs) as usize + 1;
        let mut counts = vec![0u32; buckets];
        for j in &t.jobs {
            counts[(j.submit_at_secs / cfg.crowd_span_secs) as usize] += 1;
        }
        let background_per_window = cfg.crowd_span_secs / cfg.background_interarrival_secs;
        let peak = *counts.iter().max().unwrap();
        assert!(
            peak as f64 > 10.0 * background_per_window,
            "no crowd spike: peak window {peak} vs background {background_per_window:.0}"
        );
        let peak_window = counts.iter().position(|&c| c == peak).unwrap();
        let lo = peak_window as f64 * cfg.crowd_span_secs;
        let groups_hit: std::collections::BTreeSet<&str> = t
            .jobs
            .iter()
            .filter(|j| j.submit_at_secs >= lo && j.submit_at_secs < lo + 2.0 * cfg.crowd_span_secs)
            .map(|j| j.input.rsplit_once('/').unwrap().0)
            .collect();
        let crowded = groups_hit
            .iter()
            .map(|g| {
                t.jobs
                    .iter()
                    .filter(|j| {
                        j.input.starts_with(*g)
                            && j.submit_at_secs >= lo
                            && j.submit_at_secs < lo + 2.0 * cfg.crowd_span_secs
                    })
                    .map(|j| j.input.as_str())
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            })
            .max()
            .unwrap();
        assert_eq!(
            crowded, cfg.files_per_group,
            "crowd does not span the whole group"
        );
    }

    #[test]
    fn ingest_spreads_writes_and_scans_revisit_cold_files() {
        let cfg = IngestScanConfig::default();
        let t = ProdScenario::IngestScan(cfg.clone()).generate(9);
        // writes keep landing: ingested files in every quarter of the horizon
        for q in 0..4 {
            let lo = cfg.horizon_secs * q as f64 / 4.0;
            let hi = cfg.horizon_secs * (q + 1) as f64 / 4.0;
            assert!(
                t.files
                    .iter()
                    .any(|f| f.created_at_secs >= lo && f.created_at_secs < hi),
                "no ingest in quarter {q}"
            );
        }
        // scans reach old data: some job reads an initial file late
        let initial: std::collections::BTreeSet<&str> = t
            .files
            .iter()
            .take(cfg.initial_files)
            .map(|f| f.path.as_str())
            .collect();
        assert!(
            t.jobs
                .iter()
                .any(|j| initial.contains(j.input.as_str())
                    && j.submit_at_secs > cfg.horizon_secs / 2.0),
            "scans never revisit the initial corpus"
        );
    }

    #[test]
    fn tiered_traffic_follows_the_newest_wave() {
        let cfg = TieredConfig::default();
        let t = ProdScenario::Tiered(cfg.clone()).generate(13);
        let wave_gap = cfg.horizon_secs / cfg.waves as f64;
        // during the last wave's reign, the newest wave dominates but the
        // floor still produces some cold-tier reads
        let last_start = (cfg.waves - 1) as f64 * wave_gap + cfg.wave_window_secs;
        let late: Vec<&TraceJob> = t
            .jobs
            .iter()
            .filter(|j| j.submit_at_secs >= last_start)
            .collect();
        assert!(!late.is_empty());
        let newest_prefix = format!("/prod/tiered/w{}/", cfg.waves - 1);
        let newest = late
            .iter()
            .filter(|j| j.input.starts_with(&newest_prefix))
            .count();
        assert!(
            newest * 2 > late.len(),
            "newest wave is not dominant late: {newest}/{}",
            late.len()
        );
        assert!(
            late.iter().any(|j| !j.input.starts_with(&newest_prefix)),
            "cold tier never read"
        );
    }
}
