//! SWIM-like trace synthesis.
//!
//! SWIM replays a scaled Facebook production trace; the statistical
//! properties this reproduction needs from it are (a) heavy-tailed file
//! popularity with freshness bias, (b) heavy-tailed (lognormal) input
//! sizes, and (c) bursty-but-stationary Poisson job arrivals. The
//! generator draws all three deterministically from a seed and emits a
//! serialisable [`Trace`].

use crate::popularity::PopularityModel;
use serde::{Deserialize, Serialize};
use simcore::units::{Bytes, MB};
use simcore::{DetRng, SimDuration, SimTime};

/// Generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    pub num_files: usize,
    pub num_jobs: usize,
    /// Files appear uniformly over this prefix of the trace.
    pub creation_window_secs: f64,
    /// Mean job inter-arrival time.
    pub mean_interarrival_secs: f64,
    /// Lognormal parameters of file sizes, in MB.
    pub file_size_mu: f64,
    pub file_size_sigma: f64,
    pub min_file_mb: u64,
    pub max_file_mb: u64,
    /// Zipf exponent of file popularity.
    pub zipf_exponent: f64,
    /// Freshness decay constant of popularity.
    pub popularity_tau_secs: f64,
    /// Cold-tail weight floor (fraction of base popularity).
    pub popularity_floor: f64,
    /// Mapper compute per block.
    pub compute_per_block_secs: f64,
    /// Reduce-phase duration.
    pub reduce_secs: f64,
    /// Probability that an arrival is a flash crowd — a train of jobs
    /// submitted together against the same input (the paper's "hot data
    /// could be requested by many distributed clients concurrently").
    pub burst_prob: f64,
    /// Mean extra jobs in a flash crowd (geometric).
    pub burst_mean: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_files: 60,
            num_jobs: 200,
            creation_window_secs: 3600.0,
            mean_interarrival_secs: 30.0,
            file_size_mu: 5.0, // e^5 ≈ 148 MB median
            file_size_sigma: 1.0,
            min_file_mb: 64,
            max_file_mb: 4096,
            zipf_exponent: 1.1,
            popularity_tau_secs: 1800.0,
            popularity_floor: 0.05,
            compute_per_block_secs: 2.0,
            reduce_secs: 5.0,
            burst_prob: 0.15,
            burst_mean: 8.0,
        }
    }
}

/// A file in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFile {
    pub path: String,
    pub size: Bytes,
    pub created_at_secs: f64,
}

/// A job in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    pub name: String,
    pub input: String,
    pub submit_at_secs: f64,
    pub compute_per_block_secs: f64,
    pub reduce_secs: f64,
}

/// A synthesised workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub config_seed: u64,
    pub files: Vec<TraceFile>,
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Generate a trace from `cfg` and `seed`.
    pub fn synthesize(cfg: &TraceConfig, seed: u64) -> Trace {
        assert!(cfg.num_files > 0 && cfg.num_jobs > 0);
        let mut rng = DetRng::new(seed);
        let mut file_rng = rng.fork(1);
        let mut job_rng = rng.fork(2);

        // files: creation times uniform over the window, sorted so that
        // file index correlates with creation order (fresh files are
        // later indices, popularity rank is assigned by index below)
        let mut created: Vec<f64> = (0..cfg.num_files)
            .map(|_| file_rng.gen_f64() * cfg.creation_window_secs)
            .collect();
        created.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let files: Vec<TraceFile> = created
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let mb = file_rng
                    .lognormal(cfg.file_size_mu, cfg.file_size_sigma)
                    .clamp(cfg.min_file_mb as f64, cfg.max_file_mb as f64);
                TraceFile {
                    path: format!("/swim/file_{i:04}"),
                    size: (mb.round() as u64) * MB,
                    created_at_secs: t,
                }
            })
            .collect();

        // popularity model over those files
        let mut model = PopularityModel::new(
            files
                .iter()
                .map(|f| SimTime::from_secs_f64(f.created_at_secs))
                .collect(),
            cfg.zipf_exponent,
            SimDuration::from_secs_f64(cfg.popularity_tau_secs),
            cfg.popularity_floor,
        );

        // jobs: Poisson arrivals starting after the first file exists;
        // some arrivals are flash crowds (job trains on one input)
        let mut jobs = Vec::with_capacity(cfg.num_jobs);
        let mut t = files.first().map(|f| f.created_at_secs).unwrap_or(0.0);
        let mut j = 0usize;
        while j < cfg.num_jobs {
            t += job_rng.exp(cfg.mean_interarrival_secs);
            let at = SimTime::from_secs_f64(t);
            let Some(fi) = model.sample(at, &mut job_rng) else {
                continue;
            };
            let train = if cfg.burst_prob > 0.0 && job_rng.chance(cfg.burst_prob) {
                // geometric train length with the configured mean
                let mut k = 1usize;
                let stop = 1.0 / cfg.burst_mean.max(1.0);
                while !job_rng.chance(stop) && k < 4 * cfg.burst_mean as usize {
                    k += 1;
                }
                1 + k
            } else {
                1
            };
            for b in 0..train {
                if j >= cfg.num_jobs {
                    break;
                }
                // train members arrive within a couple of seconds
                let jitter = if b == 0 { 0.0 } else { job_rng.gen_f64() * 2.0 };
                jobs.push(TraceJob {
                    name: format!("job_{j:05}"),
                    input: files[fi].path.clone(),
                    submit_at_secs: t + jitter,
                    compute_per_block_secs: cfg.compute_per_block_secs,
                    reduce_secs: cfg.reduce_secs,
                });
                j += 1;
            }
        }
        jobs.sort_by(|a, b| a.submit_at_secs.partial_cmp(&b.submit_at_secs).unwrap());

        Trace {
            config_seed: seed,
            files,
            jobs,
        }
    }

    /// Trace length: last job submission time.
    pub fn span_secs(&self) -> f64 {
        self.jobs.last().map(|j| j.submit_at_secs).unwrap_or(0.0)
    }

    /// Accesses per file path (static popularity histogram).
    pub fn access_counts(&self) -> std::collections::BTreeMap<&str, u32> {
        let mut m = std::collections::BTreeMap::new();
        for j in &self.jobs {
            *m.entry(j.input.as_str()).or_insert(0) += 1;
        }
        m
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialises")
    }
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceConfig {
        TraceConfig {
            num_files: 30,
            num_jobs: 300,
            ..TraceConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small();
        let a = Trace::synthesize(&cfg, 9);
        let b = Trace::synthesize(&cfg, 9);
        assert_eq!(a, b);
        let c = Trace::synthesize(&cfg, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn files_have_sane_sizes_and_ordered_creation() {
        let t = Trace::synthesize(&small(), 1);
        assert_eq!(t.files.len(), 30);
        for w in t.files.windows(2) {
            assert!(w[0].created_at_secs <= w[1].created_at_secs);
        }
        for f in &t.files {
            assert!(f.size >= 64 * MB && f.size <= 4096 * MB);
        }
    }

    #[test]
    fn jobs_arrive_in_order_and_reference_real_files() {
        let t = Trace::synthesize(&small(), 2);
        assert!(!t.jobs.is_empty());
        for w in t.jobs.windows(2) {
            assert!(w[0].submit_at_secs <= w[1].submit_at_secs);
        }
        let paths: std::collections::BTreeSet<&str> =
            t.files.iter().map(|f| f.path.as_str()).collect();
        for j in &t.jobs {
            assert!(paths.contains(j.input.as_str()));
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let t = Trace::synthesize(&small(), 3);
        let counts = t.access_counts();
        let mut values: Vec<u32> = counts.values().copied().collect();
        values.sort_unstable_by(|a, b| b.cmp(a));
        let total: u32 = values.iter().sum();
        let top5: u32 = values.iter().take(5).sum();
        assert!(
            top5 as f64 / total as f64 > 0.4,
            "top-5 files should dominate: {top5}/{total}"
        );
        // and a long tail of rarely-read files exists
        assert!(values.last().copied().unwrap_or(0) <= 3);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::synthesize(&small(), 4);
        let s = t.to_json();
        let back = Trace::from_json(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn span_covers_jobs() {
        let t = Trace::synthesize(&small(), 5);
        assert!(t.span_secs() >= t.jobs[0].submit_at_secs);
        assert_eq!(t.span_secs(), t.jobs.last().unwrap().submit_at_secs);
    }
}
