//! `workload` — synthetic workloads standing in for the paper's traces.
//!
//! The paper replays "jobs synthesized from the Statistical Workload
//! Injector for MapReduce (SWIM)", a one-month Facebook production trace,
//! and separately drives TestDFSIO-style concurrent read benchmarks. No
//! production trace ships with this reproduction, so this crate
//! synthesises equivalents with the properties the evaluation actually
//! depends on:
//!
//! * [`popularity`] — the hot → cooled → normal → cold lifecycle: file
//!   access probability is Zipf across files *and* decays with file age,
//!   making accesses front-loaded (paper Fig. 4's CDF) and heavy-tailed
//!   ("data access patterns in HDFS clusters are heavy-tailed",
//!   Section V);
//! * [`swim`] — the SWIM-like trace generator: lognormal file sizes,
//!   Poisson job arrivals, popularity-driven input selection; traces are
//!   serde-serialisable so a figure run can be archived and re-replayed;
//! * [`scenarios`] — production-shaped traffic beyond the stationary
//!   SWIM shape: multi-tenant diurnal cycles, correlated cross-file
//!   flash crowds, write-heavy ingest alongside periodic scans, and
//!   tiered-storage pressure, all emitting the same [`Trace`] format;
//! * [`testdfsio`] — the TestDFSIO-shaped concurrent-reader benchmark
//!   used by Figures 6, 8 and 9 ("we directly read data from HDFS
//!   instead of by Map/Reduce framework").
//!
//! ```
//! use workload::{Trace, TraceConfig};
//!
//! let trace = Trace::synthesize(&TraceConfig::default(), 42);
//! assert_eq!(trace.files.len(), 60);
//! // heavy-tailed: some file dominates the access counts
//! let max = trace.access_counts().values().copied().max().unwrap();
//! assert!(u64::from(max) as usize > trace.jobs.len() / 20);
//! // and it is perfectly reproducible
//! assert_eq!(trace, Trace::synthesize(&TraceConfig::default(), 42));
//! ```

pub mod popularity;
pub mod scenarios;
pub mod swim;
pub mod testdfsio;

pub use popularity::PopularityModel;
pub use scenarios::{
    DiurnalConfig, FlashCrowdConfig, IngestScanConfig, ProdScenario, TieredConfig,
};
pub use swim::{Trace, TraceConfig, TraceFile, TraceJob};
pub use testdfsio::{DfsIoReport, DfsIoSpec};
