//! TestDFSIO-shaped concurrent read benchmark.
//!
//! The paper's Figures 6, 8 and 9 measure reading performance directly:
//! "To eliminate these effects, we directly read data from HDFS instead
//! of by Map/Reduce framework." This module drives a [`ClusterSim`] with
//! `concurrent_readers` external clients all reading the benchmark files
//! and reports the metrics those figures plot — average execution time,
//! per-reader throughput, and sustained-session accounting.

use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterSim, ReadStats};
use serde::{Deserialize, Serialize};
use simcore::stats::OnlineStats;
use simcore::units::Bytes;

/// Benchmark shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DfsIoSpec {
    /// Number of benchmark files (readers round-robin over them; 1 means
    /// everyone hammers the same data, as in Fig. 6).
    pub file_count: usize,
    pub file_size: Bytes,
    pub replication: usize,
    pub concurrent_readers: usize,
}

/// Benchmark result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DfsIoReport {
    pub spec: DfsIoSpec,
    /// Mean / min / max execution time per reader, seconds.
    pub exec_secs: OnlineStats,
    /// Mean per-reader throughput, MB/s.
    pub throughput_mb_s: OnlineStats,
    /// Aggregate delivered bandwidth, MB/s (total bytes / makespan).
    pub aggregate_mb_s: f64,
    /// Highest concurrent session count observed on any datanode.
    pub peak_node_sessions: usize,
    pub failed_reads: usize,
}

impl DfsIoSpec {
    /// Create the benchmark files (idempotent: skips existing paths).
    pub fn prepare(&self, cluster: &mut ClusterSim) {
        for i in 0..self.file_count {
            let path = self.file_path(i);
            if cluster.namespace().resolve(&path).is_none() {
                cluster
                    .create_file(&path, self.file_size, self.replication, None)
                    .expect("benchmark file placement");
            }
        }
    }

    pub fn file_path(&self, i: usize) -> String {
        format!("/benchmarks/TestDFSIO/io_data/test_io_{i}")
    }

    /// Run one read round: all readers start together, run to drain.
    pub fn run_read_round(&self, cluster: &mut ClusterSim) -> DfsIoReport {
        self.prepare(cluster);
        let t0 = cluster.now();
        for r in 0..self.concurrent_readers {
            let path = self.file_path(r % self.file_count);
            cluster
                .open_read(Endpoint::Client(ClientId(r as u32 + 1)), &path)
                .expect("benchmark file exists");
        }
        cluster.run_until_quiescent();
        let makespan = (cluster.now() - t0).as_secs_f64();
        let reads = cluster.drain_completed_reads();
        self.report(cluster, reads, makespan)
    }

    fn report(&self, cluster: &ClusterSim, reads: Vec<ReadStats>, makespan: f64) -> DfsIoReport {
        let mut exec = OnlineStats::new();
        let mut tput = OnlineStats::new();
        let mut bytes: u64 = 0;
        let mut failed = 0usize;
        for r in &reads {
            if r.failed {
                failed += 1;
                continue;
            }
            exec.push(r.duration());
            tput.push(r.throughput_mb_s());
            bytes += r.bytes;
        }
        let peak = cluster
            .topology()
            .nodes()
            .map(|n| cluster.peak_sessions(n))
            .max()
            .unwrap_or(0);
        DfsIoReport {
            spec: self.clone(),
            exec_secs: exec,
            throughput_mb_s: tput,
            aggregate_mb_s: if makespan > 0.0 {
                bytes as f64 / (1 << 20) as f64 / makespan
            } else {
                0.0
            },
            peak_node_sessions: peak,
            failed_reads: failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdfs_sim::{ClusterConfig, DefaultRackAware};
    use simcore::units::MB;

    fn cluster() -> ClusterSim {
        ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware))
    }

    fn spec(readers: usize, replication: usize) -> DfsIoSpec {
        DfsIoSpec {
            file_count: 1,
            file_size: 256 * MB,
            replication,
            concurrent_readers: readers,
        }
    }

    #[test]
    fn single_reader_baseline() {
        let mut c = cluster();
        let report = spec(1, 3).run_read_round(&mut c);
        assert_eq!(report.exec_secs.count(), 1);
        assert_eq!(report.failed_reads, 0);
        assert!(report.throughput_mb_s.mean() > 50.0);
    }

    #[test]
    fn execution_time_grows_with_concurrency() {
        // Fig. 6's headline shape: same data, more threads ⇒ slower.
        let mut c1 = cluster();
        let lo = spec(4, 3).run_read_round(&mut c1);
        let mut c2 = cluster();
        let hi = spec(24, 3).run_read_round(&mut c2);
        assert!(
            hi.exec_secs.mean() > lo.exec_secs.mean() * 1.5,
            "24 readers {} should be much slower than 4 readers {}",
            hi.exec_secs.mean(),
            lo.exec_secs.mean()
        );
    }

    #[test]
    fn replication_restores_performance() {
        // Fig. 6's second shape: more replicas ⇒ faster at equal load.
        let readers = 12;
        let mut c1 = cluster();
        let r1 = spec(readers, 1).run_read_round(&mut c1);
        let mut c6 = cluster();
        let r6 = spec(readers, 6).run_read_round(&mut c6);
        assert!(
            r6.exec_secs.mean() < r1.exec_secs.mean() * 0.5,
            "r=6 {} should beat r=1 {}",
            r6.exec_secs.mean(),
            r1.exec_secs.mean()
        );
    }

    #[test]
    fn prepare_is_idempotent() {
        let mut c = cluster();
        let s = spec(2, 3);
        s.prepare(&mut c);
        let used = c.storage_used();
        s.prepare(&mut c);
        assert_eq!(c.storage_used(), used);
    }

    #[test]
    fn peak_sessions_reflect_contention() {
        let mut c = cluster();
        let report = spec(20, 1).run_read_round(&mut c);
        // single replica: sessions pile onto its holders up to the cap
        assert!(
            report.peak_node_sessions >= 5,
            "{}",
            report.peak_node_sessions
        );
        assert!(report.peak_node_sessions <= c.config().max_sessions_per_node);
    }

    #[test]
    fn multiple_files_spread_load() {
        let mut c = cluster();
        let s = DfsIoSpec {
            file_count: 4,
            file_size: 128 * MB,
            replication: 3,
            concurrent_readers: 8,
        };
        let report = s.run_read_round(&mut c);
        assert_eq!(report.exec_secs.count(), 8);
        assert_eq!(report.failed_reads, 0);
    }
}
