//! Pluggable replica placement.
//!
//! "Administrators ... can also implement their own replica placement
//! strategy for HDFS" — this trait is that hook. The simulator ships the
//! default rack-aware policy ("one replica on one node in the local
//! rack; another on a node in a remote rack; and the last on a different
//! node in the same remote rack"); the `erms` crate plugs Algorithm 1 in
//! through the same interface.

use crate::topology::{NodeId, RackId};
use simcore::units::Bytes;

/// Snapshot of one datanode, as placement decisions see it.
#[derive(Debug, Clone)]
pub struct NodeView {
    pub id: NodeId,
    pub rack: RackId,
    /// Powered on and serving.
    pub serving: bool,
    /// Designated a standby node under the active/standby model
    /// (regardless of current power state).
    pub standby_pool: bool,
    pub free: Bytes,
    /// Active + queued sessions.
    pub load: usize,
    /// Whether this node already holds the block being placed.
    pub holds_block: bool,
    /// How many blocks of the same *file* this node holds (drives the
    /// parity-placement rule of Algorithm 1).
    pub file_block_count: usize,
}

/// Everything a placement decision may consult.
#[derive(Debug)]
pub struct PlacementContext<'a> {
    pub views: &'a [NodeView],
    /// Current replica locations of the block in question.
    pub replica_locations: &'a [NodeId],
    /// Racks of those replicas (parallel to `replica_locations`).
    pub replica_racks: &'a [RackId],
    /// The cluster's default replication factor `r_D`.
    pub default_replication: usize,
    /// The writing node for initial placement (data-locality seed).
    pub writer: Option<NodeId>,
    /// Bytes the new replica needs.
    pub block_len: Bytes,
}

impl PlacementContext<'_> {
    /// Candidates able to take a new replica of the block.
    pub fn eligible(&self) -> impl Iterator<Item = &NodeView> {
        self.views
            .iter()
            .filter(|v| v.serving && !v.holds_block && v.free >= self.block_len)
    }

    pub fn view(&self, id: NodeId) -> Option<&NodeView> {
        self.views.iter().find(|v| v.id == id)
    }
}

/// A replica placement strategy.
pub trait PlacementPolicy {
    /// Choose up to `want` nodes for new replicas of a data block.
    fn choose_targets(&self, ctx: &PlacementContext<'_>, want: usize) -> Vec<NodeId>;

    /// Choose `count` replicas to delete (from `ctx.replica_locations`).
    fn choose_removals(&self, ctx: &PlacementContext<'_>, count: usize) -> Vec<NodeId>;

    /// Choose a node for an erasure-coding parity block. The default
    /// mirrors vanilla HDFS, which has no parity concept: least-loaded
    /// eligible node.
    fn choose_parity_target(&self, ctx: &PlacementContext<'_>) -> Option<NodeId> {
        let mut cands: Vec<&NodeView> = ctx.eligible().collect();
        cands.sort_by_key(|v| (v.load, v.id));
        cands.first().map(|v| v.id)
    }

    fn name(&self) -> &'static str;
}

/// HDFS's default rack-aware policy.
///
/// Initial pipeline: first replica on the writer's node when possible,
/// second on a node in a different rack, third on a different node in
/// that same remote rack; extras spread over the least-loaded nodes.
/// Deterministic tie-breaking (load, then id) replaces HDFS's randomness
/// so simulation runs are reproducible.
#[derive(Debug, Default, Clone)]
pub struct DefaultRackAware;

impl DefaultRackAware {
    fn pick_least_loaded<'a>(
        cands: impl Iterator<Item = &'a NodeView>,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        // load first, then prefer the emptiest disk (keeps bulk loads
        // spread like HDFS's randomised placement instead of piling onto
        // the lowest node ids), then id for determinism
        cands
            .filter(|v| !exclude.contains(&v.id))
            .min_by_key(|v| (v.load, std::cmp::Reverse(v.free), v.id))
            .map(|v| v.id)
    }
}

impl PlacementPolicy for DefaultRackAware {
    fn choose_targets(&self, ctx: &PlacementContext<'_>, want: usize) -> Vec<NodeId> {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(want);
        let mut racks_used: Vec<RackId> = ctx.replica_racks.to_vec();

        // replica ordinal counts existing replicas
        let mut ordinal = ctx.replica_locations.len();
        while chosen.len() < want {
            let pick = match ordinal {
                0 => {
                    // local: the writer if eligible, else least-loaded anywhere
                    ctx.writer
                        .and_then(|w| {
                            ctx.eligible()
                                .find(|v| v.id == w && !chosen.contains(&v.id))
                                .map(|v| v.id)
                        })
                        .or_else(|| Self::pick_least_loaded(ctx.eligible(), &chosen))
                }
                1 => {
                    // remote rack relative to the first replica
                    let first_rack = racks_used.first().copied();
                    Self::pick_least_loaded(
                        ctx.eligible().filter(|v| Some(v.rack) != first_rack),
                        &chosen,
                    )
                    .or_else(|| Self::pick_least_loaded(ctx.eligible(), &chosen))
                }
                2 => {
                    // same rack as the second replica, different node
                    let second_rack = racks_used.get(1).copied();
                    let second_node = ctx
                        .replica_locations
                        .get(1)
                        .copied()
                        .or_else(|| chosen.get(1).copied());
                    Self::pick_least_loaded(
                        ctx.eligible()
                            .filter(|v| Some(v.rack) == second_rack && Some(v.id) != second_node),
                        &chosen,
                    )
                    .or_else(|| Self::pick_least_loaded(ctx.eligible(), &chosen))
                }
                _ => Self::pick_least_loaded(ctx.eligible(), &chosen),
            };
            match pick {
                Some(id) => {
                    racks_used.push(ctx.view(id).map(|v| v.rack).unwrap_or(RackId(0)));
                    chosen.push(id);
                    ordinal += 1;
                }
                None => break, // cluster exhausted
            }
        }
        chosen
    }

    fn choose_removals(&self, ctx: &PlacementContext<'_>, count: usize) -> Vec<NodeId> {
        // vanilla HDFS trims over-replication from the most space-pressed
        // node first; ties by id
        let mut holders: Vec<&NodeView> = ctx
            .replica_locations
            .iter()
            .filter_map(|&id| ctx.view(id))
            .collect();
        holders.sort_by_key(|v| (v.free, v.id));
        holders.iter().take(count).map(|v| v.id).collect()
    }

    fn name(&self) -> &'static str {
        "default-rack-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, rack: u16, load: usize) -> NodeView {
        NodeView {
            id: NodeId(id),
            rack: RackId(rack),
            serving: true,
            standby_pool: false,
            free: 1 << 40,
            load,
            holds_block: false,
            file_block_count: 0,
        }
    }

    fn six_nodes() -> Vec<NodeView> {
        // racks: 0,0,1,1,2,2
        (0..6u32).map(|i| view(i, (i / 2) as u16, 0)).collect()
    }

    #[test]
    fn initial_triplication_follows_rack_rule() {
        let views = six_nodes();
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: 3,
            writer: Some(NodeId(0)),
            block_len: 1,
        };
        let targets = DefaultRackAware.choose_targets(&ctx, 3);
        assert_eq!(targets.len(), 3);
        assert_eq!(targets[0], NodeId(0), "first replica local to writer");
        let r1 = views[targets[1].0 as usize].rack;
        assert_ne!(r1, RackId(0), "second replica off-rack");
        let r2 = views[targets[2].0 as usize].rack;
        assert_eq!(r2, r1, "third replica in the second's rack");
        assert_ne!(targets[2], targets[1]);
    }

    #[test]
    fn no_duplicate_targets_and_no_holders() {
        let mut views = six_nodes();
        views[3].holds_block = true;
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[NodeId(3)],
            replica_racks: &[RackId(1)],
            default_replication: 3,
            writer: None,
            block_len: 1,
        };
        let targets = DefaultRackAware.choose_targets(&ctx, 4);
        assert_eq!(targets.len(), 4);
        assert!(!targets.contains(&NodeId(3)), "holder excluded");
        let mut sorted = targets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "no duplicates");
    }

    #[test]
    fn full_disks_are_skipped() {
        let mut views = six_nodes();
        for v in views.iter_mut().take(5) {
            v.free = 0;
        }
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: 3,
            writer: None,
            block_len: 100,
        };
        let targets = DefaultRackAware.choose_targets(&ctx, 3);
        assert_eq!(targets, vec![NodeId(5)], "only one node has space");
    }

    #[test]
    fn load_breaks_ties() {
        let mut views = six_nodes();
        for v in views.iter_mut() {
            v.load = 3;
        }
        views[0].load = 5;
        views[1].load = 1;
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: 3,
            writer: None,
            block_len: 1,
        };
        let targets = DefaultRackAware.choose_targets(&ctx, 1);
        assert_eq!(targets, vec![NodeId(1)], "least-loaded wins without writer");
    }

    #[test]
    fn removals_prefer_space_pressed_nodes() {
        let mut views = six_nodes();
        views[2].free = 10;
        views[4].free = 1000;
        views[0].free = 500;
        let locs = [NodeId(0), NodeId(2), NodeId(4)];
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &locs,
            replica_racks: &[RackId(0), RackId(1), RackId(2)],
            default_replication: 3,
            writer: None,
            block_len: 1,
        };
        let rm = DefaultRackAware.choose_removals(&ctx, 2);
        assert_eq!(rm, vec![NodeId(2), NodeId(0)]);
    }

    #[test]
    fn parity_default_is_least_loaded() {
        let mut views = six_nodes();
        for v in views.iter_mut() {
            v.load = 4;
        }
        views[0].load = 3;
        views[1].load = 1;
        views[2].load = 2;
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: 3,
            writer: None,
            block_len: 1,
        };
        assert_eq!(DefaultRackAware.choose_parity_target(&ctx), Some(NodeId(1)));
    }

    #[test]
    fn exhausted_cluster_returns_partial() {
        let views: Vec<NodeView> = (0..2u32).map(|i| view(i, i as u16, 0)).collect();
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: 3,
            writer: None,
            block_len: 1,
        };
        let targets = DefaultRackAware.choose_targets(&ctx, 5);
        assert_eq!(targets.len(), 2, "only two nodes exist");
    }
}
