//! Cluster configuration.
//!
//! Defaults mirror the paper's testbed: 18 datanodes in 3 racks behind
//! Gigabit Ethernet, 64 MB blocks, default replication 3, and a
//! per-datanode session cap calibrated so one replica sustains ≈8–10
//! concurrent readers (the paper measures "the maximum concurrent access
//! number of each replica could hold is 8-10, so the maximum of τ_M in
//! our environment [is 8]").

use serde::{Deserialize, Serialize};
use simcore::units::{Bandwidth, Bytes, GB, MB};
use simcore::SimDuration;
use std::fmt;

/// Why a [`ClusterConfig`] or [`crate::FaultConfig`] was rejected.
///
/// Marked `#[non_exhaustive]`: future validation rules may add
/// variants without a breaking release, so downstream matches need a
/// wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The cluster needs at least one datanode.
    NoDatanodes,
    /// Rack count must lie in `1..=datanodes`.
    RackCountOutOfRange { racks: u16, datanodes: u32 },
    /// Block size must be positive.
    ZeroBlockSize,
    /// Default replication must lie in `1..=datanodes`.
    ReplicationOutOfRange { replication: usize, datanodes: u32 },
    /// Per-node concurrent session cap must be positive.
    ZeroSessionCap,
    /// A probability-like fault knob fell outside `[0, 1]`.
    ProbabilityOutOfRange { field: &'static str, value: f64 },
    /// The fault plan horizon must be positive.
    ZeroFaultHorizon,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoDatanodes => write!(f, "need at least one datanode"),
            ConfigError::RackCountOutOfRange { racks, datanodes } => {
                write!(f, "rack count {racks} outside 1..={datanodes} (datanodes)")
            }
            ConfigError::ZeroBlockSize => write!(f, "block size must be positive"),
            ConfigError::ReplicationOutOfRange {
                replication,
                datanodes,
            } => write!(
                f,
                "default replication {replication} outside 1..={datanodes} (datanodes)"
            ),
            ConfigError::ZeroSessionCap => write!(f, "session cap must be positive"),
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} {value} outside [0, 1]")
            }
            ConfigError::ZeroFaultHorizon => write!(f, "fault horizon must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub datanodes: u32,
    pub racks: u16,
    /// HDFS block size.
    pub block_size: Bytes,
    /// Default replication factor (`r_D`).
    pub default_replication: usize,
    /// Disk capacity per datanode.
    pub disk_capacity: Bytes,
    /// Sequential disk bandwidth per datanode (shared by its sessions).
    #[serde(skip, default = "default_disk_bw")]
    pub disk_bandwidth: Bandwidth,
    /// NIC bandwidth per datanode.
    #[serde(skip, default = "default_nic_bw")]
    pub nic_bandwidth: Bandwidth,
    /// NIC bandwidth of an external client machine.
    #[serde(skip, default = "default_nic_bw")]
    pub client_bandwidth: Bandwidth,
    /// Aggregate inter-rack uplink per rack (oversubscribed fabric).
    #[serde(skip, default = "default_uplink_bw")]
    pub rack_uplink: Bandwidth,
    /// Concurrent sessions a datanode serves before new requests queue.
    pub max_sessions_per_node: usize,
    /// Fixed per-request overhead (connection setup, namenode RPC).
    pub request_overhead: SimDuration,
    /// Time to commission (boot) a standby node.
    pub standby_boot_time: SimDuration,
    /// Latency between a replication-factor change and the namenode's
    /// replication monitor actually starting the copies (HDFS scans its
    /// under-replication queues every few seconds).
    pub replication_scan_delay: SimDuration,
    /// Concurrent outbound replication streams per datanode
    /// (`dfs.namenode.replication.max-streams`); further copies wait and
    /// may pick newly landed replicas as sources when dispatched.
    pub max_replication_streams: usize,
}

fn default_disk_bw() -> Bandwidth {
    Bandwidth::from_mb_per_sec(80.0)
}
fn default_nic_bw() -> Bandwidth {
    Bandwidth::from_gbit_per_sec(1.0)
}
fn default_uplink_bw() -> Bandwidth {
    // 2 Gbit/s of uplink shared by each 6-node rack — a 3:1
    // oversubscribed fabric ("network fabrics are frequently
    // oversubscribed"), enough that cross-rack reads contend under load
    // without strangling external clients
    Bandwidth::from_gbit_per_sec(2.0)
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            datanodes: 18,
            racks: 3,
            block_size: 64 * MB,
            default_replication: 3,
            disk_capacity: 250 * GB,
            disk_bandwidth: default_disk_bw(),
            nic_bandwidth: default_nic_bw(),
            client_bandwidth: default_nic_bw(),
            rack_uplink: default_uplink_bw(),
            max_sessions_per_node: 10,
            request_overhead: SimDuration::from_millis(20),
            standby_boot_time: SimDuration::from_secs(30),
            replication_scan_delay: SimDuration::from_secs(3),
            max_replication_streams: 2,
        }
    }
}

impl ClusterConfig {
    /// The paper's testbed shape.
    pub fn paper_testbed() -> Self {
        Self::default()
    }

    /// A small cluster for fast unit tests.
    pub fn tiny() -> Self {
        ClusterConfig {
            datanodes: 4,
            racks: 2,
            disk_capacity: 10 * GB,
            ..Self::default()
        }
    }

    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.datanodes == 0 {
            return Err(ConfigError::NoDatanodes);
        }
        if self.racks == 0 || self.racks as u32 > self.datanodes {
            return Err(ConfigError::RackCountOutOfRange {
                racks: self.racks,
                datanodes: self.datanodes,
            });
        }
        if self.block_size == 0 {
            return Err(ConfigError::ZeroBlockSize);
        }
        if self.default_replication == 0 || self.default_replication > self.datanodes as usize {
            return Err(ConfigError::ReplicationOutOfRange {
                replication: self.default_replication,
                datanodes: self.datanodes,
            });
        }
        if self.max_sessions_per_node == 0 {
            return Err(ConfigError::ZeroSessionCap);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shape() {
        let c = ClusterConfig::paper_testbed();
        assert_eq!(c.datanodes, 18);
        assert_eq!(c.racks, 3);
        assert_eq!(c.block_size, 64 * MB);
        assert_eq!(c.default_replication, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ClusterConfig::tiny();
        c.datanodes = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoDatanodes));
        let mut c = ClusterConfig::tiny();
        c.racks = 10; // more racks than nodes
        assert_eq!(
            c.validate(),
            Err(ConfigError::RackCountOutOfRange {
                racks: 10,
                datanodes: 4
            })
        );
        let mut c = ClusterConfig::tiny();
        c.default_replication = 99;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ReplicationOutOfRange {
                replication: 99,
                datanodes: 4
            })
        );
        let mut c = ClusterConfig::tiny();
        c.max_sessions_per_node = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroSessionCap));
    }

    #[test]
    fn config_error_displays_and_is_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ProbabilityOutOfRange {
            field: "kill_probability",
            value: 1.5,
        });
        assert_eq!(err.to_string(), "kill_probability 1.5 outside [0, 1]");
    }
}
