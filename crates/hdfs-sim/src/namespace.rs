//! The namenode's file namespace.
//!
//! Files map a path to an ordered block list plus replication metadata.
//! A file is either plainly replicated or erasure-encoded (ERMS's cold
//! state); encoded files carry their parity block ids so the blockmap
//! can account for them.

use crate::block::{block_lengths, BlockId, BlockInfo, FileId};
use simcore::units::Bytes;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Grow a column so index `i` exists, then write `v` there.
fn column_put<T>(column: &mut Vec<Option<T>>, i: usize, v: T) {
    if i >= column.len() {
        column.resize_with(i + 1, || None);
    }
    column[i] = Some(v);
}

/// How a file's redundancy is currently provided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageMode {
    /// `r`-way block replication.
    Replicated { replication: usize },
    /// Erasure-encoded: per-block replication 1 plus parity blocks.
    Encoded { parity_blocks: Vec<BlockId> },
}

/// Per-file metadata.
#[derive(Debug, Clone)]
pub struct FileMeta {
    pub id: FileId,
    pub path: String,
    pub size: Bytes,
    pub blocks: Vec<BlockId>,
    pub mode: StorageMode,
    pub created_at: SimTime,
    pub last_access: SimTime,
}

impl FileMeta {
    /// Current target replication of the file's data blocks.
    pub fn replication(&self) -> usize {
        match &self.mode {
            StorageMode::Replicated { replication } => *replication,
            StorageMode::Encoded { .. } => 1,
        }
    }

    pub fn is_encoded(&self) -> bool {
        matches!(self.mode, StorageMode::Encoded { .. })
    }
}

/// The namespace: path ↔ file ↔ blocks.
///
/// File and block ids come off monotone counters, so both tables are
/// **columns** indexed by the dense id (`Vec<Option<_>>`), not keyed
/// maps: lookup is an array load and [`files`](Namespace::files)
/// iterates in id order by construction. Deleted ids leave a `None`
/// slot behind — ids are never re-used, so a stale id reads as absent
/// rather than aliasing a later file.
#[derive(Debug, Default)]
pub struct Namespace {
    /// Column: file metadata indexed by `FileId.0`.
    files: Vec<Option<FileMeta>>,
    by_path: BTreeMap<String, FileId>,
    /// Column: block metadata indexed by `BlockId.0`.
    blocks: Vec<Option<BlockInfo>>,
    next_file: u64,
    next_block: u64,
    live_blocks: usize,
}

impl Namespace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a file of `size` bytes split into `block_size` blocks.
    /// Returns `None` when the path already exists.
    pub fn create_file(
        &mut self,
        path: &str,
        size: Bytes,
        block_size: Bytes,
        replication: usize,
        now: SimTime,
    ) -> Option<FileId> {
        if self.by_path.contains_key(path) {
            return None;
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        let mut blocks = Vec::new();
        for (index, len) in block_lengths(size, block_size).into_iter().enumerate() {
            let bid = BlockId(self.next_block);
            self.next_block += 1;
            column_put(
                &mut self.blocks,
                bid.0 as usize,
                BlockInfo {
                    id: bid,
                    file: id,
                    index: index as u32,
                    len,
                    is_parity: false,
                },
            );
            self.live_blocks += 1;
            blocks.push(bid);
        }
        column_put(
            &mut self.files,
            id.0 as usize,
            FileMeta {
                id,
                path: path.to_string(),
                size,
                blocks,
                mode: StorageMode::Replicated { replication },
                created_at: now,
                last_access: now,
            },
        );
        self.by_path.insert(path.to_string(), id);
        Some(id)
    }

    /// Allocate a parity block belonging to `file` (ERMS encode path).
    pub fn allocate_parity_block(&mut self, file: FileId, index: u32, len: Bytes) -> BlockId {
        debug_assert!(self.file(file).is_some());
        let bid = BlockId(self.next_block);
        self.next_block += 1;
        column_put(
            &mut self.blocks,
            bid.0 as usize,
            BlockInfo {
                id: bid,
                file,
                index,
                len,
                is_parity: true,
            },
        );
        self.live_blocks += 1;
        bid
    }

    /// Delete a file, returning every block id (data + parity) it owned.
    pub fn delete_file(&mut self, id: FileId) -> Option<Vec<BlockId>> {
        let meta = self.files.get_mut(id.0 as usize)?.take()?;
        self.by_path.remove(&meta.path);
        let mut all = meta.blocks.clone();
        if let StorageMode::Encoded { parity_blocks } = &meta.mode {
            all.extend_from_slice(parity_blocks);
        }
        for b in &all {
            self.forget_block(*b);
        }
        Some(all)
    }

    pub fn file(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(id.0 as usize)?.as_ref()
    }
    pub fn file_mut(&mut self, id: FileId) -> Option<&mut FileMeta> {
        self.files.get_mut(id.0 as usize)?.as_mut()
    }
    pub fn resolve(&self, path: &str) -> Option<FileId> {
        self.by_path.get(path).copied()
    }
    pub fn block(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(id.0 as usize)?.as_ref()
    }
    /// Live files in id order (a column scan).
    pub fn files(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.iter().filter_map(Option::as_ref)
    }
    pub fn num_files(&self) -> usize {
        self.by_path.len()
    }
    pub fn num_blocks(&self) -> usize {
        self.live_blocks
    }

    /// Drop the metadata of a block that no longer exists (parity blocks
    /// removed on decode). Data blocks of live files must not be passed.
    pub fn forget_block(&mut self, id: BlockId) {
        if let Some(slot) = self.blocks.get_mut(id.0 as usize) {
            if slot.take().is_some() {
                self.live_blocks -= 1;
            }
        }
    }

    /// Record a read access (drives cold-data detection: "the last access
    /// time of the data is old").
    pub fn touch(&mut self, id: FileId, now: SimTime) {
        if let Some(f) = self.file_mut(id) {
            f.last_access = now;
        }
    }
}

impl checkpoint::Checkpointable for Namespace {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{seq_of, MapBuilder};
        use checkpoint::Value;
        MapBuilder::new()
            .put(
                "files",
                seq_of(self.files(), |f| {
                    let mut b = MapBuilder::new()
                        .u64("id", f.id.0)
                        .str("path", &f.path)
                        .u64("size", f.size)
                        .put(
                            "blocks",
                            Value::Seq(f.blocks.iter().map(|b| Value::U64(b.0)).collect()),
                        )
                        .time("created_at", f.created_at)
                        .time("last_access", f.last_access);
                    b = match &f.mode {
                        StorageMode::Replicated { replication } => {
                            b.u64("replication", *replication as u64)
                        }
                        StorageMode::Encoded { parity_blocks } => b.put(
                            "parity_blocks",
                            Value::Seq(parity_blocks.iter().map(|p| Value::U64(p.0)).collect()),
                        ),
                    };
                    b.build()
                }),
            )
            .put(
                "blocks",
                seq_of(self.blocks.iter().filter_map(Option::as_ref), |i| {
                    MapBuilder::new()
                        .u64("id", i.id.0)
                        .u64("file", i.file.0)
                        .u64("index", u64::from(i.index))
                        .u64("len", i.len)
                        .bool("is_parity", i.is_parity)
                        .build()
                }),
            )
            .u64("next_file", self.next_file)
            .u64("next_block", self.next_block)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.files.clear();
        self.by_path.clear();
        self.blocks.clear();
        self.live_blocks = 0;
        for fv in c::get_seq(state, "files")? {
            let id = FileId(c::get_u64(fv, "id")?);
            let path = c::get_str(fv, "path")?.to_string();
            let blocks = c::get_seq(fv, "blocks")?
                .iter()
                .map(|v| c::as_u64(v, "blocks[]").map(BlockId))
                .collect::<Result<_, _>>()?;
            let mode = match fv.get("replication") {
                Some(r) => StorageMode::Replicated {
                    replication: c::as_u64(r, "replication")? as usize,
                },
                None => StorageMode::Encoded {
                    parity_blocks: c::get_seq(fv, "parity_blocks")?
                        .iter()
                        .map(|v| c::as_u64(v, "parity_blocks[]").map(BlockId))
                        .collect::<Result<_, _>>()?,
                },
            };
            self.by_path.insert(path.clone(), id);
            column_put(
                &mut self.files,
                id.0 as usize,
                FileMeta {
                    id,
                    path,
                    size: c::get_u64(fv, "size")?,
                    blocks,
                    mode,
                    created_at: c::get_time(fv, "created_at")?,
                    last_access: c::get_time(fv, "last_access")?,
                },
            );
        }
        for bv in c::get_seq(state, "blocks")? {
            let id = BlockId(c::get_u64(bv, "id")?);
            column_put(
                &mut self.blocks,
                id.0 as usize,
                BlockInfo {
                    id,
                    file: FileId(c::get_u64(bv, "file")?),
                    index: c::get_u32(bv, "index")?,
                    len: c::get_u64(bv, "len")?,
                    is_parity: c::get_bool(bv, "is_parity")?,
                },
            );
            self.live_blocks += 1;
        }
        self.next_file = c::get_u64(state, "next_file")?;
        self.next_block = c::get_u64(state, "next_block")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MB;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn create_and_resolve() {
        let mut ns = Namespace::new();
        let id = ns
            .create_file("/data/a", 100 * MB, 64 * MB, 3, t(0))
            .unwrap();
        assert_eq!(ns.resolve("/data/a"), Some(id));
        let meta = ns.file(id).unwrap();
        assert_eq!(meta.blocks.len(), 2);
        assert_eq!(meta.replication(), 3);
        assert!(!meta.is_encoded());
        let b0 = ns.block(meta.blocks[0]).unwrap();
        assert_eq!(b0.len, 64 * MB);
        let b1 = ns.block(meta.blocks[1]).unwrap();
        assert_eq!(b1.len, 36 * MB);
        assert_eq!(b1.index, 1);
    }

    #[test]
    fn duplicate_path_rejected() {
        let mut ns = Namespace::new();
        assert!(ns.create_file("/a", MB, MB, 3, t(0)).is_some());
        assert!(ns.create_file("/a", MB, MB, 3, t(0)).is_none());
    }

    #[test]
    fn delete_returns_all_blocks() {
        let mut ns = Namespace::new();
        let id = ns.create_file("/a", 128 * MB, 64 * MB, 3, t(0)).unwrap();
        let p = ns.allocate_parity_block(id, 0, 64 * MB);
        ns.file_mut(id).unwrap().mode = StorageMode::Encoded {
            parity_blocks: vec![p],
        };
        let blocks = ns.delete_file(id).unwrap();
        assert_eq!(blocks.len(), 3, "2 data + 1 parity");
        assert!(ns.resolve("/a").is_none());
        assert!(ns.block(p).is_none());
        assert!(ns.delete_file(id).is_none(), "double delete");
        assert_eq!(ns.num_blocks(), 0);
    }

    #[test]
    fn encoded_mode_replication_is_one() {
        let mut ns = Namespace::new();
        let id = ns.create_file("/a", 64 * MB, 64 * MB, 3, t(0)).unwrap();
        ns.file_mut(id).unwrap().mode = StorageMode::Encoded {
            parity_blocks: vec![],
        };
        assert_eq!(ns.file(id).unwrap().replication(), 1);
        assert!(ns.file(id).unwrap().is_encoded());
    }

    #[test]
    fn touch_updates_last_access() {
        let mut ns = Namespace::new();
        let id = ns.create_file("/a", MB, MB, 3, t(5)).unwrap();
        assert_eq!(ns.file(id).unwrap().last_access, t(5));
        ns.touch(id, t(99));
        assert_eq!(ns.file(id).unwrap().last_access, t(99));
        assert_eq!(ns.file(id).unwrap().created_at, t(5));
    }

    #[test]
    fn parity_blocks_flagged() {
        let mut ns = Namespace::new();
        let id = ns.create_file("/a", MB, MB, 3, t(0)).unwrap();
        let p = ns.allocate_parity_block(id, 7, MB);
        let info = ns.block(p).unwrap();
        assert!(info.is_parity);
        assert_eq!(info.index, 7);
        assert_eq!(info.file, id);
    }
}
