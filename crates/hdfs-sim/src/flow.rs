//! Fair-share flow-level network model.
//!
//! Every transfer (block read, replica copy) is a **flow** with a byte
//! count and a set of capacity **resources** it traverses — the serving
//! datanode's disk, its NIC, the reader's NIC, and the rack uplinks when
//! the path crosses racks. Rates are assigned by **max-min fair
//! progressive filling**: all flows fill equally until some resource
//! saturates, flows through it freeze, and the rest keep filling. This
//! is the standard fluid approximation of TCP sharing and reproduces the
//! contention behaviour the paper measures (per-session throughput
//! collapsing as sessions pile onto the nodes holding hot replicas).
//!
//! Rates are recomputed from scratch on every flow arrival/departure and
//! on capacity changes (node death). Clusters here run at most a few
//! hundred concurrent flows, so the O(flows × resources) recompute is
//! nowhere near the profile.

use simcore::units::Bandwidth;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A capacity resource (a NIC, a disk, a rack uplink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub usize);

/// A flow in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

#[derive(Debug)]
struct Flow {
    resources: Vec<ResourceId>,
    remaining: f64,
    rate: f64,
}

/// The flow network.
#[derive(Debug, Default)]
pub struct FlowNet {
    capacities: Vec<f64>,
    flows: BTreeMap<FlowId, Flow>,
    next_flow: u64,
    last_settle: SimTime,
}

impl FlowNet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a resource; capacity may later change (e.g. node death).
    pub fn add_resource(&mut self, capacity: Bandwidth) -> ResourceId {
        self.capacities.push(capacity.bytes_per_sec());
        ResourceId(self.capacities.len() - 1)
    }

    pub fn set_capacity(&mut self, now: SimTime, r: ResourceId, capacity: Bandwidth) {
        self.settle(now);
        self.capacities[r.0] = capacity.bytes_per_sec();
        self.recompute();
    }

    pub fn capacity(&self, r: ResourceId) -> Bandwidth {
        Bandwidth(self.capacities[r.0])
    }

    /// Start a flow of `bytes` across `resources`.
    pub fn start(&mut self, now: SimTime, bytes: u64, resources: Vec<ResourceId>) -> FlowId {
        debug_assert!(resources.iter().all(|r| r.0 < self.capacities.len()));
        self.settle(now);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.insert(
            id,
            Flow {
                resources,
                remaining: bytes as f64,
                rate: 0.0,
            },
        );
        self.recompute();
        id
    }

    /// Remove a flow (completion or cancellation). Returns the bytes it
    /// still had left (0 ⇒ it was done).
    pub fn remove(&mut self, now: SimTime, id: FlowId) -> Option<u64> {
        self.settle(now);
        let flow = self.flows.remove(&id)?;
        self.recompute();
        Some(flow.remaining.max(0.0).round() as u64)
    }

    pub fn contains(&self, id: FlowId) -> bool {
        self.flows.contains_key(&id)
    }
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Current rate of a flow in bytes/sec.
    pub fn rate(&self, id: FlowId) -> Option<Bandwidth> {
        self.flows.get(&id).map(|f| Bandwidth(f.rate))
    }

    /// Remaining bytes of a flow as of the last settle point.
    pub fn remaining(&self, id: FlowId) -> Option<u64> {
        self.flows
            .get(&id)
            .map(|f| f.remaining.max(0.0).round() as u64)
    }

    /// Predicted completion time of a flow given current rates.
    pub fn eta(&self, id: FlowId) -> Option<SimTime> {
        let f = self.flows.get(&id)?;
        Some(self.last_settle + Bandwidth(f.rate).transfer_time(f.remaining.max(0.0) as u64))
    }

    /// The earliest (time, flow) completion under current rates.
    pub fn next_completion(&self) -> Option<(SimTime, FlowId)> {
        self.flows
            .iter()
            .map(|(&id, f)| {
                let d = if f.rate <= f64::EPSILON {
                    SimDuration::from_hours(24 * 365)
                } else {
                    SimDuration::from_secs_f64((f.remaining.max(0.0)) / f.rate)
                };
                (self.last_settle + d, id)
            })
            .min_by_key(|&(t, id)| (t, id))
    }

    /// Advance internal progress accounting to `now`.
    pub fn settle(&mut self, now: SimTime) {
        if now <= self.last_settle {
            return;
        }
        let dt = (now - self.last_settle).as_secs_f64();
        for f in self.flows.values_mut() {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.last_settle = now;
    }

    /// Max-min fair progressive filling.
    fn recompute(&mut self) {
        let n_res = self.capacities.len();
        let mut residual = self.capacities.clone();
        let mut frozen: BTreeMap<FlowId, f64> = BTreeMap::new();
        let mut level = 0.0f64;
        // flows not yet frozen
        let mut live: Vec<FlowId> = self.flows.keys().copied().collect();

        while !live.is_empty() {
            // count live flows per resource
            let mut counts = vec![0usize; n_res];
            for id in &live {
                for r in &self.flows[id].resources {
                    counts[r.0] += 1;
                }
            }
            // headroom per live flow on each loaded resource
            let mut delta = f64::INFINITY;
            for r in 0..n_res {
                if counts[r] > 0 {
                    delta = delta.min(residual[r].max(0.0) / counts[r] as f64);
                }
            }
            if !delta.is_finite() {
                // live flows traverse no resources: unconstrained — give
                // them an effectively unlimited rate and stop.
                for id in live.drain(..) {
                    frozen.insert(id, f64::MAX / 4.0);
                }
                break;
            }
            level += delta;
            for r in 0..n_res {
                residual[r] -= delta * counts[r] as f64;
            }
            // freeze flows crossing any saturated resource
            let eps = 1e-6;
            let before = live.len();
            live.retain(|id| {
                let saturated = self.flows[id]
                    .resources
                    .iter()
                    .any(|r| residual[r.0] <= eps);
                if saturated {
                    frozen.insert(*id, level);
                }
                !saturated
            });
            debug_assert!(
                live.len() < before || live.is_empty(),
                "progressive filling must make progress"
            );
            if live.len() == before {
                // numerical corner: freeze everything at current level
                for id in live.drain(..) {
                    frozen.insert(id, level);
                }
            }
        }

        for (id, f) in self.flows.iter_mut() {
            f.rate = frozen.get(id).copied().unwrap_or(0.0);
        }
    }
}

impl checkpoint::Checkpointable for FlowNet {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{f64_bits, seq_of, MapBuilder};
        use checkpoint::Value;
        MapBuilder::new()
            .put(
                "capacities",
                seq_of(self.capacities.iter().copied(), f64_bits),
            )
            .put(
                "flows",
                seq_of(self.flows.iter(), |(id, f)| {
                    MapBuilder::new()
                        .u64("id", id.0)
                        .put(
                            "resources",
                            Value::Seq(
                                f.resources.iter().map(|r| Value::U64(r.0 as u64)).collect(),
                            ),
                        )
                        .f64b("remaining", f.remaining)
                        .f64b("rate", f.rate)
                        .build()
                }),
            )
            .u64("next_flow", self.next_flow)
            .time("last_settle", self.last_settle)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        // Capacities are replaced wholesale: the saved run may have
        // lazily registered more resources (client NICs) than a freshly
        // built instance has.
        self.capacities = c::get_seq(state, "capacities")?
            .iter()
            .map(|v| c::as_f64_bits(v, "capacities[]"))
            .collect::<Result<_, _>>()?;
        self.flows.clear();
        for fv in c::get_seq(state, "flows")? {
            let resources = c::get_seq(fv, "resources")?
                .iter()
                .map(|v| c::as_u64(v, "resources[]").map(|n| ResourceId(n as usize)))
                .collect::<Result<_, _>>()?;
            self.flows.insert(
                FlowId(c::get_u64(fv, "id")?),
                Flow {
                    resources,
                    remaining: c::get_f64b(fv, "remaining")?,
                    rate: c::get_f64b(fv, "rate")?,
                },
            );
        }
        self.next_flow = c::get_u64(state, "next_flow")?;
        self.last_settle = c::get_time(state, "last_settle")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MB;

    fn bw(mb: f64) -> Bandwidth {
        Bandwidth::from_mb_per_sec(mb)
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(80.0));
        let nic = net.add_resource(bw(119.0));
        let f = net.start(SimTime::ZERO, 80 * MB, vec![disk, nic]);
        assert!((net.rate(f).unwrap().mb_per_sec() - 80.0).abs() < 1e-6);
        let (t, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_a_resource_equally() {
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(80.0));
        let f1 = net.start(SimTime::ZERO, 80 * MB, vec![disk]);
        let f2 = net.start(SimTime::ZERO, 80 * MB, vec![disk]);
        assert!((net.rate(f1).unwrap().mb_per_sec() - 40.0).abs() < 1e-6);
        assert!((net.rate(f2).unwrap().mb_per_sec() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_gives_leftover_to_unconstrained_flow() {
        // Two flows share disk A (80); flow 2 also crosses a slow client
        // NIC (10). True max-min: f2 = 10, f1 = 70. Plain equal split
        // would wrongly give f1 = 40.
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(80.0));
        let slow_nic = net.add_resource(bw(10.0));
        let f1 = net.start(SimTime::ZERO, MB, vec![disk]);
        let f2 = net.start(SimTime::ZERO, MB, vec![disk, slow_nic]);
        assert!((net.rate(f2).unwrap().mb_per_sec() - 10.0).abs() < 1e-6);
        assert!((net.rate(f1).unwrap().mb_per_sec() - 70.0).abs() < 1e-6);
    }

    #[test]
    fn progress_settles_across_rate_changes() {
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(100.0));
        let f1 = net.start(SimTime::ZERO, 200 * MB, vec![disk]);
        // at t=1s, 100MB done; start a second flow → both at 50
        let f2 = net.start(SimTime::from_secs(1), 100 * MB, vec![disk]);
        assert_eq!(net.remaining(f1), Some(100 * MB));
        assert!((net.rate(f1).unwrap().mb_per_sec() - 50.0).abs() < 1e-6);
        // both need 2 more seconds
        let (t, _) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 3.0).abs() < 1e-6);
        // completing f1 at t=3 restores f2 to full rate with 0 left
        net.settle(SimTime::from_secs(3));
        assert_eq!(net.remaining(f1), Some(0));
        assert_eq!(net.remaining(f2), Some(0));
        assert_eq!(net.remove(SimTime::from_secs(3), f1), Some(0));
        assert_eq!(net.remove(SimTime::from_secs(3), f2), Some(0));
        assert!(net.next_completion().is_none());
    }

    #[test]
    fn capacity_change_rebalances() {
        let mut net = FlowNet::new();
        let nic = net.add_resource(bw(100.0));
        let f = net.start(SimTime::ZERO, 100 * MB, vec![nic]);
        net.set_capacity(SimTime::from_millis(500), nic, bw(50.0));
        assert!((net.rate(f).unwrap().mb_per_sec() - 50.0).abs() < 1e-6);
        // 50MB left at 50MB/s → done at t=1.5
        let (t, _) = net.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_stalls_but_does_not_hang() {
        let mut net = FlowNet::new();
        let dead = net.add_resource(bw(0.0));
        let f = net.start(SimTime::ZERO, MB, vec![dead]);
        assert_eq!(net.rate(f).unwrap().bytes_per_sec(), 0.0);
        let (t, _) = net.next_completion().unwrap();
        assert!(
            t.as_secs_f64() > 1e6,
            "stalled flow sorts far in the future"
        );
        // removing the stalled flow reports its bytes intact
        assert_eq!(net.remove(SimTime::from_secs(10), f), Some(MB));
    }

    #[test]
    fn removal_mid_flight_reports_leftover() {
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(100.0));
        let f = net.start(SimTime::ZERO, 100 * MB, vec![disk]);
        let left = net.remove(SimTime::from_millis(250), f).unwrap();
        assert_eq!(left, 75 * MB);
        assert!(
            net.remove(SimTime::from_secs(1), f).is_none(),
            "double remove"
        );
    }

    #[test]
    fn many_flows_conserve_capacity() {
        let mut net = FlowNet::new();
        let disk = net.add_resource(bw(80.0));
        let flows: Vec<FlowId> = (0..16)
            .map(|_| net.start(SimTime::ZERO, MB, vec![disk]))
            .collect();
        let total: f64 = flows
            .iter()
            .map(|&f| net.rate(f).unwrap().mb_per_sec())
            .sum();
        assert!(
            (total - 80.0).abs() < 1e-3,
            "sum of rates = capacity, got {total}"
        );
        for &f in &flows {
            assert!((net.rate(f).unwrap().mb_per_sec() - 5.0).abs() < 1e-6);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random topologies: flows over random subsets of resources.
        fn arb_net() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
            (2usize..8, 1usize..14).prop_flat_map(|(n_res, n_flows)| {
                let caps = prop::collection::vec(1.0f64..200.0, n_res);
                let paths = prop::collection::vec(
                    prop::collection::btree_set(0..n_res, 1..=n_res.min(4)),
                    n_flows,
                )
                .prop_map(|v| v.into_iter().map(|s| s.into_iter().collect()).collect());
                (caps, paths)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]
            #[test]
            fn rates_are_max_min_fair((caps, paths) in arb_net()) {
                let mut net = FlowNet::new();
                let res: Vec<ResourceId> = caps
                    .iter()
                    .map(|&c| net.add_resource(Bandwidth(c)))
                    .collect();
                let flows: Vec<FlowId> = paths
                    .iter()
                    .map(|p| {
                        let r: Vec<ResourceId> = p.iter().map(|&i| res[i]).collect();
                        net.start(SimTime::ZERO, 1 << 30, r)
                    })
                    .collect();
                let rates: Vec<f64> = flows
                    .iter()
                    .map(|&f| net.rate(f).unwrap().bytes_per_sec())
                    .collect();

                // feasibility: no resource is oversubscribed
                let eps = 1e-6;
                let mut load = vec![0.0f64; caps.len()];
                for (path, &rate) in paths.iter().zip(&rates) {
                    for &r in path {
                        load[r] += rate;
                    }
                }
                for (r, (&l, &c)) in load.iter().zip(&caps).enumerate() {
                    prop_assert!(l <= c + eps * c.max(1.0), "resource {r}: {l} > {c}");
                }

                // max-min optimality: every flow is blocked by a resource
                // that is saturated AND on which it has a maximal rate
                // (no flow could grow without shrinking a smaller one)
                for (i, path) in paths.iter().enumerate() {
                    let blocked = path.iter().any(|&r| {
                        let saturated = load[r] >= caps[r] - eps * caps[r].max(1.0);
                        let maximal = paths
                            .iter()
                            .enumerate()
                            .filter(|(_, q)| q.contains(&r))
                            .all(|(j, _)| rates[j] <= rates[i] + eps);
                        saturated && maximal
                    });
                    prop_assert!(blocked, "flow {i} (rate {}) has headroom", rates[i]);
                }
            }

            #[test]
            fn settle_conserves_bytes(
                (caps, paths) in arb_net(),
                steps in prop::collection::vec(1u64..500, 1..6),
            ) {
                // Advancing in many small steps must account the same
                // progress as advancing once (piecewise-constant rates:
                // no flow completes mid-interval here because we never
                // remove flows, so rates are constant throughout).
                let total_ms: u64 = steps.iter().sum();
                let build = |net: &mut FlowNet| -> Vec<FlowId> {
                    let res: Vec<ResourceId> = caps
                        .iter()
                        .map(|&c| net.add_resource(Bandwidth(c)))
                        .collect();
                    paths
                        .iter()
                        .map(|p| {
                            let r: Vec<ResourceId> = p.iter().map(|&i| res[i]).collect();
                            net.start(SimTime::ZERO, 1 << 40, r)
                        })
                        .collect()
                };
                let mut stepped = FlowNet::new();
                let fs = build(&mut stepped);
                let mut t = 0u64;
                for &ms in &steps {
                    t += ms;
                    stepped.settle(SimTime::from_millis(t));
                }
                let mut whole = FlowNet::new();
                let fw = build(&mut whole);
                whole.settle(SimTime::from_millis(total_ms));
                for (&a, &b) in fs.iter().zip(&fw) {
                    let ra = stepped.remaining(a).unwrap();
                    let rb = whole.remaining(b).unwrap();
                    let diff = ra.abs_diff(rb);
                    prop_assert!(diff <= 8, "stepped {ra} vs whole {rb}");
                }
            }
        }
    }

    #[test]
    fn cross_rack_path_bottlenecks_on_uplink() {
        let mut net = FlowNet::new();
        let src_nic = net.add_resource(bw(119.0));
        let uplink = net.add_resource(bw(30.0));
        let dst_nic = net.add_resource(bw(119.0));
        let f = net.start(SimTime::ZERO, MB, vec![src_nic, uplink, dst_nic]);
        assert!((net.rate(f).unwrap().mb_per_sec() - 30.0).abs() < 1e-6);
    }
}
