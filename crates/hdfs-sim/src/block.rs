//! Block and file identifiers.

use serde::{Deserialize, Serialize};
use simcore::units::Bytes;
use std::fmt;

/// A file identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// A block identifier, globally unique across the cluster's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file_{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // HDFS block names look like `blk_<id>`
        write!(f, "blk_{}", self.0)
    }
}

/// Metadata of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    pub id: BlockId,
    pub file: FileId,
    /// Position of the block within its file.
    pub index: u32,
    /// Actual bytes (the final block of a file may be short).
    pub len: Bytes,
    /// Whether this is an erasure-coding parity block rather than data.
    pub is_parity: bool,
}

/// Split a file size into block lengths ("all blocks in a file are of the
/// same size, except the last one" — paper Section II).
pub fn block_lengths(file_size: Bytes, block_size: Bytes) -> Vec<Bytes> {
    assert!(block_size > 0);
    if file_size == 0 {
        return Vec::new();
    }
    let full = (file_size / block_size) as usize;
    let rem = file_size % block_size;
    let mut out = vec![block_size; full];
    if rem > 0 {
        out.push(rem);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MB;

    #[test]
    fn block_splitting() {
        assert_eq!(block_lengths(0, 64 * MB), Vec::<u64>::new());
        assert_eq!(block_lengths(64 * MB, 64 * MB), vec![64 * MB]);
        assert_eq!(block_lengths(100 * MB, 64 * MB), vec![64 * MB, 36 * MB]);
        assert_eq!(
            block_lengths(200 * MB, 64 * MB),
            vec![64 * MB, 64 * MB, 64 * MB, 8 * MB]
        );
        assert_eq!(block_lengths(1, 64 * MB), vec![1]);
    }

    #[test]
    fn display_matches_hdfs_naming() {
        assert_eq!(BlockId(42).to_string(), "blk_42");
        assert_eq!(FileId(7).to_string(), "file_7");
    }

    #[test]
    fn total_is_preserved() {
        for size in [1u64, 63 * MB, 64 * MB, 65 * MB, 640 * MB + 5] {
            let total: u64 = block_lengths(size, 64 * MB).iter().sum();
            assert_eq!(total, size);
        }
    }
}
