//! Cluster topology: racks, datanodes and external clients.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A datanode identifier (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A rack identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u16);

/// An external (non-datanode) client machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dn{}", self.0)
    }
}
impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}
impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Where a transfer endpoint lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    Node(NodeId),
    Client(ClientId),
}

/// Network distance categories, mirroring HDFS's topology levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Distance {
    SameNode,
    SameRack,
    OffRack,
}

/// Static rack layout of the datanodes. Clients are assumed off-rack
/// (they reach the cluster through the core switch), except when a
/// "client" is actually a task running *on* a datanode — that case is
/// expressed with [`Endpoint::Node`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// rack of each node, indexed by `NodeId.0`.
    node_rack: Vec<RackId>,
    racks: u16,
}

impl Topology {
    /// Distribute `nodes` datanodes round-robin over `racks` racks —
    /// matching the paper's 18 nodes in 3 racks when called as `(18, 3)`.
    pub fn round_robin(nodes: u32, racks: u16) -> Self {
        assert!(nodes > 0 && racks > 0);
        Topology {
            node_rack: (0..nodes)
                .map(|i| RackId((i % racks as u32) as u16))
                .collect(),
            racks,
        }
    }

    /// Explicit rack assignment.
    pub fn from_racks(node_rack: Vec<RackId>) -> Self {
        assert!(!node_rack.is_empty());
        let racks = node_rack.iter().map(|r| r.0 + 1).max().expect("non-empty");
        Topology { node_rack, racks }
    }

    pub fn num_nodes(&self) -> u32 {
        self.node_rack.len() as u32
    }
    pub fn num_racks(&self) -> u16 {
        self.racks
    }

    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.node_rack[node.0 as usize]
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId)
    }

    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.rack_of(n) == rack).collect()
    }

    pub fn distance(&self, a: NodeId, b: NodeId) -> Distance {
        if a == b {
            Distance::SameNode
        } else if self.rack_of(a) == self.rack_of(b) {
            Distance::SameRack
        } else {
            Distance::OffRack
        }
    }

    /// Distance from a reader endpoint to a datanode.
    pub fn reader_distance(&self, reader: Endpoint, node: NodeId) -> Distance {
        match reader {
            Endpoint::Node(n) => self.distance(n, node),
            Endpoint::Client(_) => Distance::OffRack,
        }
    }

    /// Whether a node-to-node transfer crosses racks.
    pub fn crosses_racks(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) != self.rack_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_evenly() {
        let t = Topology::round_robin(18, 3);
        assert_eq!(t.num_nodes(), 18);
        assert_eq!(t.num_racks(), 3);
        for r in 0..3u16 {
            assert_eq!(t.nodes_in_rack(RackId(r)).len(), 6);
        }
    }

    #[test]
    fn distances() {
        let t = Topology::round_robin(6, 3); // racks: 0,1,2,0,1,2
        assert_eq!(t.distance(NodeId(0), NodeId(0)), Distance::SameNode);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), Distance::SameRack);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), Distance::OffRack);
        assert!(Distance::SameNode < Distance::SameRack);
        assert!(Distance::SameRack < Distance::OffRack);
    }

    #[test]
    fn reader_distances() {
        let t = Topology::round_robin(6, 3);
        assert_eq!(
            t.reader_distance(Endpoint::Node(NodeId(0)), NodeId(0)),
            Distance::SameNode
        );
        assert_eq!(
            t.reader_distance(Endpoint::Node(NodeId(0)), NodeId(3)),
            Distance::SameRack
        );
        assert_eq!(
            t.reader_distance(Endpoint::Client(ClientId(9)), NodeId(0)),
            Distance::OffRack
        );
    }

    #[test]
    fn explicit_racks() {
        let t = Topology::from_racks(vec![RackId(0), RackId(0), RackId(4)]);
        assert_eq!(t.num_racks(), 5);
        assert!(t.crosses_racks(NodeId(0), NodeId(2)));
        assert!(!t.crosses_racks(NodeId(0), NodeId(1)));
    }
}
