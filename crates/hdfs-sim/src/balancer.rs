//! The HDFS balancer's cost model.
//!
//! ERMS's placement argument (Section III.B) is that parking extra
//! replicas on standby nodes means removing them later "does not need to
//! rebalance ... because the data statuses of running nodes are not
//! changing. It is desirable to avoid rebalancing because it takes
//! considerable time and bandwidth." This module implements the balancer
//! the paper is avoiding: it measures utilisation imbalance and plans the
//! block moves needed to bring every serving node within a threshold of
//! the mean — the ablation bench uses it to price placement policies in
//! rebalance bytes.

use crate::block::BlockId;
use crate::cluster::ClusterSim;
use crate::topology::NodeId;
use simcore::units::Bytes;

/// A planned balancer move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Move {
    pub block: BlockId,
    pub from: NodeId,
    pub to: NodeId,
    pub bytes: Bytes,
}

/// Utilisation snapshot of the serving nodes.
#[derive(Debug, Clone)]
pub struct UtilizationReport {
    /// (node, used bytes, utilisation fraction) for each serving node.
    pub nodes: Vec<(NodeId, Bytes, f64)>,
    pub mean_utilization: f64,
    pub max_deviation: f64,
}

impl UtilizationReport {
    /// Standard deviation of utilisation across serving nodes.
    pub fn std_dev(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let var: f64 = self
            .nodes
            .iter()
            .map(|&(_, _, u)| (u - self.mean_utilization).powi(2))
            .sum::<f64>()
            / self.nodes.len() as f64;
        var.sqrt()
    }

    /// Whether every node sits within `threshold` of the mean.
    pub fn is_balanced(&self, threshold: f64) -> bool {
        self.max_deviation <= threshold
    }
}

/// Measure utilisation across serving nodes.
pub fn utilization(cluster: &ClusterSim) -> UtilizationReport {
    let cap = cluster.config().disk_capacity.max(1);
    let nodes: Vec<(NodeId, Bytes, f64)> = cluster
        .topology()
        .nodes()
        .filter(|&n| matches!(cluster.node_state(n), crate::datanode::NodeState::Active))
        .map(|n| {
            let used = cluster.node_used(n);
            (n, used, used as f64 / cap as f64)
        })
        .collect();
    let mean = if nodes.is_empty() {
        0.0
    } else {
        nodes.iter().map(|&(_, _, u)| u).sum::<f64>() / nodes.len() as f64
    };
    let max_dev = nodes
        .iter()
        .map(|&(_, _, u)| (u - mean).abs())
        .fold(0.0f64, f64::max);
    UtilizationReport {
        nodes,
        mean_utilization: mean,
        max_deviation: max_dev,
    }
}

/// Plan the moves that bring every serving node within `threshold` of the
/// mean utilisation (greedy: repeatedly move a block from the most-over
/// node to the most-under node, like the real balancer's iterations).
/// Returns the plan; nothing is executed.
pub fn plan_moves(cluster: &ClusterSim, threshold: f64) -> Vec<Move> {
    let cap = cluster.config().disk_capacity.max(1) as f64;
    let report = utilization(cluster);
    if report.nodes.len() < 2 {
        return Vec::new();
    }
    let mean = report.mean_utilization;
    // working copy of used-bytes per node
    let mut used: std::collections::BTreeMap<NodeId, i64> = report
        .nodes
        .iter()
        .map(|&(n, u, _)| (n, u as i64))
        .collect();
    // blocks currently on each node (only move blocks the target lacks)
    let mut holdings: std::collections::BTreeMap<NodeId, Vec<BlockId>> = report
        .nodes
        .iter()
        .map(|&(n, _, _)| {
            let blocks: Vec<BlockId> = cluster.node_blocks(n).collect();
            (n, blocks)
        })
        .collect();

    let mut moves = Vec::new();
    // bounded iterations: each move shrinks the imbalance
    for _ in 0..10_000 {
        let (&over, _) = match used.iter().max_by_key(|(_, &u)| u) {
            Some(x) => x,
            None => break,
        };
        let (&under, _) = match used.iter().min_by_key(|(_, &u)| u) {
            Some(x) => x,
            None => break,
        };
        let over_dev = used[&over] as f64 / cap - mean;
        let under_dev = mean - used[&under] as f64 / cap;
        if over_dev <= threshold && under_dev <= threshold {
            break;
        }
        // pick a block on `over` that `under` lacks
        let candidates = holdings.get(&over).cloned().unwrap_or_default();
        let pick = candidates.iter().copied().find(|&b| {
            !cluster.blockmap().holds(b, under) && !moves.iter().any(|m: &Move| m.block == b)
        });
        let Some(block) = pick else {
            break; // nothing movable
        };
        let bytes = cluster.namespace().block(block).map(|i| i.len).unwrap_or(0);
        if bytes == 0 {
            break;
        }
        *used.get_mut(&over).expect("node present") -= bytes as i64;
        *used.get_mut(&under).expect("node present") += bytes as i64;
        holdings
            .get_mut(&over)
            .expect("node present")
            .retain(|&b| b != block);
        moves.push(Move {
            block,
            from: over,
            to: under,
            bytes,
        });
    }
    moves
}

/// Total bytes a plan would move — the "considerable time and bandwidth"
/// the paper's placement avoids.
pub fn plan_bytes(moves: &[Move]) -> Bytes {
    moves.iter().map(|m| m.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::placement::DefaultRackAware;
    use simcore::units::MB;

    fn skewed_cluster() -> ClusterSim {
        // place everything with replication 1 on a 4-node cluster, then
        // manually concentrate replicas to create imbalance
        let mut cfg = ClusterConfig::tiny();
        cfg.datanodes = 4;
        cfg.racks = 2;
        let mut c = ClusterSim::new(cfg, Box::new(DefaultRackAware));
        for i in 0..8 {
            c.create_file(&format!("/f{i}"), 64 * MB, 1, Some(NodeId(0)))
                .expect("fits");
        }
        c
    }

    #[test]
    fn utilization_detects_skew() {
        let c = skewed_cluster();
        let r = utilization(&c);
        assert_eq!(r.nodes.len(), 4);
        assert!(r.max_deviation > 0.0, "writer-local placement skews node 0");
        assert!(r.std_dev() > 0.0);
        assert!(!r.is_balanced(1e-6));
    }

    #[test]
    fn plan_reduces_imbalance() {
        let c = skewed_cluster();
        let before = utilization(&c);
        let moves = plan_moves(&c, 0.001);
        assert!(!moves.is_empty(), "skewed cluster needs moves");
        // simulate the plan's accounting
        let cap = c.config().disk_capacity as f64;
        let mut used: std::collections::BTreeMap<NodeId, i64> = before
            .nodes
            .iter()
            .map(|&(n, u, _)| (n, u as i64))
            .collect();
        for m in &moves {
            *used.get_mut(&m.from).unwrap() -= m.bytes as i64;
            *used.get_mut(&m.to).unwrap() += m.bytes as i64;
        }
        let mean = used.values().map(|&u| u as f64 / cap).sum::<f64>() / used.len() as f64;
        let max_dev = used
            .values()
            .map(|&u| (u as f64 / cap - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev < before.max_deviation,
            "plan must shrink imbalance: {max_dev} vs {}",
            before.max_deviation
        );
        assert!(plan_bytes(&moves) > 0);
    }

    #[test]
    fn balanced_cluster_needs_no_moves() {
        let mut cfg = ClusterConfig::tiny();
        cfg.datanodes = 4;
        cfg.racks = 2;
        let mut c = ClusterSim::new(cfg, Box::new(DefaultRackAware));
        // r=4 on 4 nodes: perfectly even
        for i in 0..4 {
            c.create_file(&format!("/f{i}"), 64 * MB, 4, None)
                .expect("fits");
        }
        let r = utilization(&c);
        assert!(r.is_balanced(0.01));
        assert!(plan_moves(&c, 0.01).is_empty());
    }

    #[test]
    fn moves_never_duplicate_replicas() {
        let c = skewed_cluster();
        let moves = plan_moves(&c, 0.001);
        for m in &moves {
            assert!(!c.blockmap().holds(m.block, m.to));
            assert!(c.blockmap().holds(m.block, m.from));
        }
    }

    /// A six-node skewed cluster with extra empty nodes — the natural
    /// balancer *targets*, which the tests below then take away.
    fn skewed_six() -> ClusterSim {
        let mut cfg = ClusterConfig::tiny();
        cfg.datanodes = 6;
        cfg.racks = 2;
        let mut c = ClusterSim::new(cfg, Box::new(DefaultRackAware));
        for i in 0..8 {
            c.create_file(&format!("/f{i}"), 64 * MB, 1, Some(NodeId(0)))
                .expect("fits");
        }
        c
    }

    #[test]
    fn moves_never_target_a_crashed_node() {
        let mut c = skewed_six();
        // crash the emptiest nodes — exactly the ones the balancer would
        // otherwise pick as destinations
        assert!(c.crash_node(NodeId(4)));
        assert!(c.crash_node(NodeId(5)));
        let r = utilization(&c);
        assert_eq!(r.nodes.len(), 4, "dead nodes drop out of the report");
        let moves = plan_moves(&c, 0.001);
        assert!(!moves.is_empty(), "survivors are still skewed");
        for m in &moves {
            assert_ne!(m.to, NodeId(4), "never move onto a crashed node");
            assert_ne!(m.to, NodeId(5), "never move onto a crashed node");
            assert_ne!(m.from, NodeId(4), "never move off a crashed node");
            assert_ne!(m.from, NodeId(5), "never move off a crashed node");
        }
    }

    #[test]
    fn moves_never_target_a_powered_down_node() {
        let mut c = skewed_six();
        // empty standby-style nodes power down cleanly (no data to strand)
        c.power_off(NodeId(4)).expect("empty node powers off");
        c.power_off(NodeId(5)).expect("empty node powers off");
        assert_eq!(c.node_state(NodeId(4)), crate::datanode::NodeState::Standby);
        let moves = plan_moves(&c, 0.001);
        assert!(!moves.is_empty(), "serving nodes are still skewed");
        for m in &moves {
            assert!(
                matches!(c.node_state(m.to), crate::datanode::NodeState::Active),
                "move targets a non-serving node: {m:?}"
            );
            assert!(
                matches!(c.node_state(m.from), crate::datanode::NodeState::Active),
                "move sources a non-serving node: {m:?}"
            );
        }
    }

    #[test]
    fn a_dead_cluster_plans_nothing() {
        let mut c = skewed_cluster();
        // kill everything but the overloaded node: one survivor left,
        // so there is nowhere to move anything
        for n in 1..4 {
            c.crash_node(NodeId(n));
        }
        assert!(plan_moves(&c, 0.001).is_empty());
        assert_eq!(utilization(&c).nodes.len(), 1);
    }
}
