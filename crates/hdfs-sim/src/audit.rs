//! Audit-log emission.
//!
//! The namenode logs every namespace operation and each datanode logs
//! block transfers; ERMS consumes the *text* of these logs through its
//! CEP pipeline (crate `cep` parses them back). The sink buffers lines
//! until drained, so the ERMS control loop processes exactly the records
//! that arrived since its previous epoch.

use crate::block::BlockId;
use crate::topology::{ClientId, Endpoint, NodeId};
use simcore::SimTime;

/// Buffered audit/clienttrace sink.
#[derive(Debug, Default)]
pub struct AuditSink {
    lines: Vec<String>,
    emitted: u64,
}

impl AuditSink {
    pub fn new() -> Self {
        Self::default()
    }

    fn reader_name(reader: Endpoint) -> String {
        match reader {
            Endpoint::Node(n) => format!("/task@{n}"),
            Endpoint::Client(c) => format!("/{c}"),
        }
    }

    /// Namenode audit record for a file-level operation.
    pub fn file_op(&mut self, now: SimTime, reader: Endpoint, cmd: &str, path: &str) {
        let ip = Self::reader_name(reader);
        self.lines.push(format!(
            "{:.6} FSNamesystem.audit: allowed=true ugi=hadoop ip={} cmd={} src={} dst=null perm=null",
            now.as_secs_f64(),
            ip,
            cmd,
            path,
        ));
        self.emitted += 1;
    }

    /// Datanode client-trace record for one block transfer.
    pub fn block_read(
        &mut self,
        now: SimTime,
        block: BlockId,
        node: NodeId,
        path: &str,
        bytes: u64,
    ) {
        self.lines.push(format!(
            "{:.6} datanode.clienttrace: cmd=read_block blk={} dn={} src={} bytes={}",
            now.as_secs_f64(),
            block,
            node,
            path,
            bytes,
        ));
        self.emitted += 1;
    }

    /// Take all buffered lines.
    pub fn drain(&mut self) -> Vec<String> {
        std::mem::take(&mut self.lines)
    }

    pub fn pending(&self) -> usize {
        self.lines.len()
    }
    pub fn total_emitted(&self) -> u64 {
        self.emitted
    }
}

/// Identifier helpers shared with the audit text format.
pub fn client_endpoint(c: ClientId) -> Endpoint {
    Endpoint::Client(c)
}

impl checkpoint::Checkpointable for AuditSink {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        // Undrained lines are part of the run's state: the CEP epoch
        // after a restore must see exactly what it would have seen.
        MapBuilder::new()
            .put(
                "lines",
                Value::Seq(self.lines.iter().map(|l| Value::Str(l.clone())).collect()),
            )
            .u64("emitted", self.emitted)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.lines = c::get_seq(state, "lines")?
            .iter()
            .map(|v| c::as_str(v, "lines[]").map(str::to_string))
            .collect::<Result<_, _>>()?;
        self.emitted = c::get_u64(state, "emitted")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_parseable_lines() {
        let mut sink = AuditSink::new();
        sink.file_op(
            SimTime::from_secs(10),
            Endpoint::Client(ClientId(3)),
            "open",
            "/data/f",
        );
        sink.block_read(
            SimTime::from_secs(11),
            BlockId(7),
            NodeId(2),
            "/data/f",
            64 << 20,
        );
        assert_eq!(sink.pending(), 2);
        let lines = sink.drain();
        assert_eq!(lines.len(), 2);
        assert_eq!(sink.pending(), 0, "drain empties the buffer");
        assert_eq!(sink.total_emitted(), 2);

        // must round-trip through the cep audit parser
        let (events, bad) = cep::audit::parse_log(&lines.join("\n"));
        assert_eq!(bad, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event_type.as_ref(), cep::audit::AUDIT_EVENT);
        assert_eq!(events[0].get("cmd").unwrap().as_str(), Some("open"));
        assert_eq!(events[0].get("src").unwrap().as_str(), Some("/data/f"));
        assert_eq!(events[1].event_type.as_ref(), cep::audit::BLOCK_EVENT);
        assert_eq!(events[1].get("blk").unwrap().as_str(), Some("blk_7"));
        assert_eq!(events[1].get("dn").unwrap().as_str(), Some("dn2"));
    }

    #[test]
    fn reader_names_distinguish_tasks_from_clients() {
        let mut sink = AuditSink::new();
        sink.file_op(SimTime::ZERO, Endpoint::Node(NodeId(4)), "open", "/f");
        sink.file_op(SimTime::ZERO, Endpoint::Client(ClientId(4)), "open", "/f");
        let lines = sink.drain();
        assert!(lines[0].contains("ip=/task@dn4"));
        assert!(lines[1].contains("ip=/client4"));
    }
}
