//! The datanode service model.
//!
//! A datanode is a disk (capacity + block set), a NIC, and a bounded
//! session pool. "A datanode can simultaneously support a limited number
//! of sessions due to capacity constraint ... the connection requests
//! from application servers will be blocked, or rejected" (paper
//! Section III.C) — requests beyond [`DataNode::max_sessions`] wait in a
//! FIFO queue, which is what produces the execution-time blow-up at high
//! concurrency in Figures 6 and 8.

use crate::block::BlockId;
use crate::topology::NodeId;
use simcore::units::Bytes;
use std::collections::VecDeque;

/// Power/service state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving reads/writes.
    Active,
    /// Powered off, holds no data, serves nothing (ERMS standby pool).
    Standby,
    /// Crashed: data lost, serves nothing.
    Dead,
}

/// A queued session waiting for a free slot; the cluster stores an opaque
/// ticket it knows how to resume.
pub type SessionTicket = u64;

#[derive(Debug)]
pub struct DataNode {
    pub id: NodeId,
    pub state: NodeState,
    pub capacity: Bytes,
    used: Bytes,
    /// Replica list kept sorted by block id — a dense column rather
    /// than a tree, since membership checks are binary searches and
    /// scans (checkpoint, crash drain) walk it front to back.
    blocks: Vec<BlockId>,
    /// Sessions currently being served.
    active_sessions: usize,
    pub max_sessions: usize,
    /// Requests blocked on the session cap.
    wait_queue: VecDeque<SessionTicket>,
    /// Total sessions ever admitted (for metrics).
    pub sessions_served: u64,
    /// Peak concurrent sessions observed.
    pub peak_sessions: usize,
}

impl DataNode {
    pub fn new(id: NodeId, capacity: Bytes, max_sessions: usize, state: NodeState) -> Self {
        DataNode {
            id,
            state,
            capacity,
            used: 0,
            blocks: Vec::new(),
            active_sessions: 0,
            max_sessions,
            wait_queue: VecDeque::new(),
            sessions_served: 0,
            peak_sessions: 0,
        }
    }

    pub fn is_serving(&self) -> bool {
        self.state == NodeState::Active
    }

    pub fn used(&self) -> Bytes {
        self.used
    }
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    pub fn holds(&self, block: BlockId) -> bool {
        self.blocks.binary_search(&block).is_ok()
    }
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().copied()
    }

    /// Store a replica. Returns false (and stores nothing) when the disk
    /// is full or the block is already present.
    pub fn add_block(&mut self, block: BlockId, len: Bytes) -> bool {
        match self.blocks.binary_search(&block) {
            Ok(_) => false,
            Err(pos) => {
                if self.free() < len {
                    return false;
                }
                self.blocks.insert(pos, block);
                self.used += len;
                true
            }
        }
    }

    /// Drop a replica; returns whether it was present.
    pub fn remove_block(&mut self, block: BlockId, len: Bytes) -> bool {
        match self.blocks.binary_search(&block) {
            Ok(pos) => {
                self.blocks.remove(pos);
                self.used = self.used.saturating_sub(len);
                true
            }
            Err(_) => false,
        }
    }

    /// Wipe all data (crash / decommission drain).
    pub fn clear(&mut self) -> Vec<BlockId> {
        self.used = 0;
        std::mem::take(&mut self.blocks)
    }

    pub fn active_sessions(&self) -> usize {
        self.active_sessions
    }
    pub fn queued_sessions(&self) -> usize {
        self.wait_queue.len()
    }
    /// Load proxy used by replica selection: serving + waiting sessions.
    pub fn load(&self) -> usize {
        self.active_sessions + self.wait_queue.len()
    }
    pub fn has_free_slot(&self) -> bool {
        self.active_sessions < self.max_sessions
    }

    /// Try to admit a session now; if the cap is reached, the ticket
    /// queues and `false` is returned.
    pub fn admit_or_queue(&mut self, ticket: SessionTicket) -> bool {
        if self.active_sessions < self.max_sessions {
            self.active_sessions += 1;
            self.sessions_served += 1;
            self.peak_sessions = self.peak_sessions.max(self.active_sessions);
            true
        } else {
            self.wait_queue.push_back(ticket);
            false
        }
    }

    /// Finish a session; if someone is waiting, admit them and return
    /// their ticket so the cluster can start the transfer.
    pub fn release_session(&mut self) -> Option<SessionTicket> {
        debug_assert!(self.active_sessions > 0, "release without active session");
        self.active_sessions = self.active_sessions.saturating_sub(1);
        if let Some(next) = self.wait_queue.pop_front() {
            self.active_sessions += 1;
            self.sessions_served += 1;
            self.peak_sessions = self.peak_sessions.max(self.active_sessions);
            Some(next)
        } else {
            None
        }
    }

    /// Drop every queued ticket (node died); returns them for cancellation.
    pub fn drain_queue(&mut self) -> Vec<SessionTicket> {
        let out = self.wait_queue.drain(..).collect();
        self.active_sessions = 0;
        out
    }
}

impl checkpoint::Checkpointable for DataNode {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        let state = match self.state {
            NodeState::Active => "active",
            NodeState::Standby => "standby",
            NodeState::Dead => "dead",
        };
        MapBuilder::new()
            .u64("id", u64::from(self.id.0))
            .str("state", state)
            .u64("capacity", self.capacity)
            .u64("used", self.used)
            .put(
                "blocks",
                Value::Seq(self.blocks.iter().map(|b| Value::U64(b.0)).collect()),
            )
            .u64("active_sessions", self.active_sessions as u64)
            .u64("max_sessions", self.max_sessions as u64)
            .put(
                "wait_queue",
                Value::Seq(self.wait_queue.iter().map(|&t| Value::U64(t)).collect()),
            )
            .u64("sessions_served", self.sessions_served)
            .u64("peak_sessions", self.peak_sessions as u64)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.id = NodeId(c::get_u32(state, "id")?);
        self.state = match c::get_str(state, "state")? {
            "active" => NodeState::Active,
            "standby" => NodeState::Standby,
            "dead" => NodeState::Dead,
            other => {
                return Err(checkpoint::CheckpointError::Corrupt(format!(
                    "unknown node state `{other}`"
                )))
            }
        };
        self.capacity = c::get_u64(state, "capacity")?;
        self.used = c::get_u64(state, "used")?;
        self.blocks = c::get_seq(state, "blocks")?
            .iter()
            .map(|v| c::as_u64(v, "blocks[]").map(BlockId))
            .collect::<Result<_, _>>()?;
        // the column is sorted by invariant; saved order already is,
        // but hand-edited snapshots must not break binary search
        self.blocks.sort_unstable();
        self.blocks.dedup();
        self.active_sessions = c::get_usize(state, "active_sessions")?;
        self.max_sessions = c::get_usize(state, "max_sessions")?;
        self.wait_queue = c::get_seq(state, "wait_queue")?
            .iter()
            .map(|v| c::as_u64(v, "wait_queue[]"))
            .collect::<Result<_, _>>()?;
        self.sessions_served = c::get_u64(state, "sessions_served")?;
        self.peak_sessions = c::get_usize(state, "peak_sessions")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn() -> DataNode {
        DataNode::new(NodeId(0), 1000, 2, NodeState::Active)
    }

    #[test]
    fn block_storage_accounting() {
        let mut d = dn();
        assert!(d.add_block(BlockId(1), 400));
        assert!(d.add_block(BlockId(2), 400));
        assert_eq!(d.used(), 800);
        assert_eq!(d.free(), 200);
        assert!(!d.add_block(BlockId(3), 400), "disk full");
        assert!(!d.add_block(BlockId(1), 100), "duplicate replica");
        assert!(d.remove_block(BlockId(1), 400));
        assert!(!d.remove_block(BlockId(1), 400), "already gone");
        assert_eq!(d.used(), 400);
        assert_eq!(d.block_count(), 1);
    }

    #[test]
    fn session_cap_queues_excess() {
        let mut d = dn();
        assert!(d.admit_or_queue(100));
        assert!(d.admit_or_queue(101));
        assert!(!d.admit_or_queue(102), "third session must queue");
        assert_eq!(d.active_sessions(), 2);
        assert_eq!(d.queued_sessions(), 1);
        assert_eq!(d.load(), 3);
        assert_eq!(d.peak_sessions, 2);
        // releasing admits the waiter
        assert_eq!(d.release_session(), Some(102));
        assert_eq!(d.active_sessions(), 2);
        assert_eq!(d.queued_sessions(), 0);
        assert_eq!(d.release_session(), None);
        assert_eq!(d.active_sessions(), 1);
        assert_eq!(d.sessions_served, 3);
    }

    #[test]
    fn clear_wipes_data() {
        let mut d = dn();
        d.add_block(BlockId(1), 100);
        d.add_block(BlockId(2), 100);
        let lost = d.clear();
        assert_eq!(lost.len(), 2);
        assert_eq!(d.used(), 0);
        assert_eq!(d.block_count(), 0);
    }

    #[test]
    fn drain_queue_returns_tickets() {
        let mut d = dn();
        d.admit_or_queue(1);
        d.admit_or_queue(2);
        d.admit_or_queue(3);
        d.admit_or_queue(4);
        assert_eq!(d.drain_queue(), vec![3, 4]);
        assert_eq!(d.active_sessions(), 0);
    }

    #[test]
    fn standby_nodes_do_not_serve() {
        let d = DataNode::new(NodeId(1), 1000, 2, NodeState::Standby);
        assert!(!d.is_serving());
        let d = DataNode::new(NodeId(1), 1000, 2, NodeState::Dead);
        assert!(!d.is_serving());
    }
}
