//! Seeded fault injection: MTBF/MTTR churn schedules for the cluster.
//!
//! A [`FaultPlan`] is generated *up front* from a seed and a
//! [`FaultConfig`], so a whole churn experiment is a pure function of
//! its command line: the same seed yields byte-identical schedules (and,
//! downstream, byte-identical figure output). Three fault families are
//! modelled, mirroring what an HDFS operator actually sees:
//!
//! * **node churn** — each node crashes after an exponential
//!   mean-time-between-failures draw and restarts after an exponential
//!   mean-time-to-repair downtime; with a small probability a crash is a
//!   *permanent* kill (disk destroyed, node never returns);
//! * **rack uplink outages** — a whole rack's oversubscribed uplink
//!   drops (switch reboot), stalling every cross-rack flow through it;
//! * **stragglers** — a node's disk/NIC degrade to a fraction of their
//!   rated speed for a while (failing disk, noisy neighbour).
//!
//! The [`FaultInjector`] replays the plan against a
//! [`ClusterSim`] as simulated time
//! advances; the driver interleaves `injector.apply_due(&mut sim, now)`
//! with its own control-loop ticks.

use crate::cluster::ClusterSim;
use crate::config::ConfigError;
use crate::topology::{NodeId, RackId};
use simcore::rng::DetRng;
use simcore::time::{SimDuration, SimTime};

/// Parameters of the churn generator. All mean durations feed
/// exponential draws; a `*_mtbf` of zero disables that fault family.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Mean time between crashes, per node.
    pub node_mtbf: SimDuration,
    /// Mean downtime before a crashed node restarts.
    pub node_mttr: SimDuration,
    /// Probability that a crash is permanent (disk destroyed; the node
    /// never restarts and its fault stream ends).
    pub kill_probability: f64,
    /// Mean time between uplink outages, per rack (zero disables).
    pub rack_mtbf: SimDuration,
    /// Mean duration of a rack uplink outage.
    pub rack_mttr: SimDuration,
    /// Mean time between straggler episodes, per node (zero disables).
    pub straggler_mtbf: SimDuration,
    /// Mean duration of a straggler episode.
    pub straggler_duration: SimDuration,
    /// Service factor during an episode (e.g. 0.1 = 10 % speed).
    pub straggler_slowdown: f64,
    /// Mean time between silent-corruption events, per node (zero
    /// disables the family; bit-rot strikes replicas in place without
    /// any node-state change, so nothing notices until a checksum is
    /// actually verified).
    pub corrupt_mtbf: SimDuration,
    /// Probability a corruption event targets a parity shard (forcing
    /// the RS `verify`/`reconstruct` repair route) rather than a data
    /// replica (repaired by re-copy).
    pub corrupt_shard_fraction: f64,
    /// Probability that a crash is a *torn write*: every transfer that
    /// was landing on the crashing disk survives in the crash stash but
    /// latently corrupt, so the block report after restart re-announces
    /// bad data.
    pub torn_write_probability: f64,
    /// Generate events in `[0, horizon)`.
    pub horizon: SimDuration,
}

impl FaultConfig {
    /// Moderate churn for the `figures faults` scenario: enough
    /// overlapping failures that an unmanaged cluster measurably
    /// degrades over an 8-hour window, while a repairing one keeps up.
    pub fn paper_default() -> Self {
        FaultConfig {
            node_mtbf: SimDuration::from_hours(2),
            node_mttr: SimDuration::from_secs(20 * 60),
            kill_probability: 0.1,
            rack_mtbf: SimDuration::from_hours(6),
            rack_mttr: SimDuration::from_secs(120),
            straggler_mtbf: SimDuration::from_hours(4),
            straggler_duration: SimDuration::from_secs(10 * 60),
            straggler_slowdown: 0.1,
            corrupt_mtbf: SimDuration::from_secs(0),
            corrupt_shard_fraction: 0.0,
            torn_write_probability: 0.0,
            horizon: SimDuration::from_hours(8),
        }
    }

    /// Layer silent corruption (and torn writes on crash) onto a churn
    /// config — the corruption-storm scenario's knob.
    pub fn with_corruption(
        mut self,
        mtbf: SimDuration,
        shard_fraction: f64,
        torn_write_probability: f64,
    ) -> Self {
        self.corrupt_mtbf = mtbf;
        self.corrupt_shard_fraction = shard_fraction;
        self.torn_write_probability = torn_write_probability;
        self
    }

    /// Node churn only (no rack outages or stragglers) — the setting the
    /// property tests and the durability acceptance check use.
    pub fn churn_only(mtbf: SimDuration, mttr: SimDuration, horizon: SimDuration) -> Self {
        FaultConfig {
            node_mtbf: mtbf,
            node_mttr: mttr,
            kill_probability: 0.0,
            rack_mtbf: SimDuration::from_secs(0),
            rack_mttr: SimDuration::from_secs(0),
            straggler_mtbf: SimDuration::from_secs(0),
            straggler_duration: SimDuration::from_secs(0),
            straggler_slowdown: 1.0,
            corrupt_mtbf: SimDuration::from_secs(0),
            corrupt_shard_fraction: 0.0,
            torn_write_probability: 0.0,
            horizon,
        }
    }

    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.kill_probability) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "kill_probability",
                value: self.kill_probability,
            });
        }
        if !(0.0..=1.0).contains(&self.straggler_slowdown) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "straggler_slowdown",
                value: self.straggler_slowdown,
            });
        }
        if !(0.0..=1.0).contains(&self.corrupt_shard_fraction) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "corrupt_shard_fraction",
                value: self.corrupt_shard_fraction,
            });
        }
        if !(0.0..=1.0).contains(&self.torn_write_probability) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "torn_write_probability",
                value: self.torn_write_probability,
            });
        }
        if self.horizon.as_secs_f64() <= 0.0 {
            return Err(ConfigError::ZeroFaultHorizon);
        }
        Ok(())
    }
}

/// One fault the injector applies to the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Transient crash: disk contents survive for the paired `Restart`.
    Crash(NodeId),
    /// The paired restart of an earlier `Crash`.
    Restart(NodeId),
    /// Permanent failure: disk destroyed, node never returns.
    Kill(NodeId),
    RackOutage(RackId),
    RackRestore(RackId),
    StragglerStart(NodeId),
    StragglerEnd(NodeId),
    /// A crash caught mid-write: like `Crash`, but every transfer that
    /// was landing on this disk is retained *latently corrupt* — the
    /// restart block-reports it back as bad data nobody knows about yet.
    TornCrash(NodeId),
    /// Silent bit-rot of one data replica on the node. `pick` selects
    /// the victim deterministically among the blocks actually held at
    /// apply time (the plan cannot know future placement).
    CorruptReplica {
        node: NodeId,
        pick: u64,
    },
    /// Silent bit-rot of one parity shard on the node (falls back to a
    /// data replica when the node holds no parity).
    CorruptShard {
        node: NodeId,
        pick: u64,
    },
}

/// A fault pinned to its simulated firing time.
#[derive(Debug, Clone)]
pub struct TimedFault {
    pub at: SimTime,
    pub event: FaultEvent,
}

/// A deterministic, pre-generated fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Events sorted by time (ties broken deterministically).
    pub events: Vec<TimedFault>,
}

impl FaultPlan {
    /// Generate the schedule for `nodes` datanodes in `racks` racks.
    /// Each node/rack gets an independent child RNG stream, so the plan
    /// is invariant to generation order and stable across runs.
    pub fn generate(cfg: &FaultConfig, nodes: usize, racks: usize, seed: u64) -> FaultPlan {
        cfg.validate().expect("invalid fault config");
        let mut root = DetRng::new(seed);
        let horizon = cfg.horizon.as_secs_f64();
        let mut events: Vec<TimedFault> = Vec::new();

        // node crash/restart renewal processes
        if cfg.node_mtbf.as_secs_f64() > 0.0 {
            for n in 0..nodes {
                let mut rng = root.fork(0x1000 + n as u64);
                let mut t = rng.exp(cfg.node_mtbf.as_secs_f64());
                while t < horizon {
                    let node = NodeId(n as u32);
                    if rng.chance(cfg.kill_probability) {
                        events.push(TimedFault {
                            at: SimTime::from_secs_f64(t),
                            event: FaultEvent::Kill(node),
                        });
                        break; // permanent: this node's stream ends
                    }
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(t),
                        event: FaultEvent::Crash(node),
                    });
                    let down = rng.exp(cfg.node_mttr.as_secs_f64().max(1.0));
                    let up = t + down;
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(up),
                        event: FaultEvent::Restart(node),
                    });
                    t = up + rng.exp(cfg.node_mtbf.as_secs_f64());
                }
            }
        }

        // rack uplink outage episodes
        if cfg.rack_mtbf.as_secs_f64() > 0.0 {
            for r in 0..racks {
                let mut rng = root.fork(0x2000 + r as u64);
                let mut t = rng.exp(cfg.rack_mtbf.as_secs_f64());
                while t < horizon {
                    let rack = RackId(r as u16);
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(t),
                        event: FaultEvent::RackOutage(rack),
                    });
                    let up = t + rng.exp(cfg.rack_mttr.as_secs_f64().max(1.0));
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(up),
                        event: FaultEvent::RackRestore(rack),
                    });
                    t = up + rng.exp(cfg.rack_mtbf.as_secs_f64());
                }
            }
        }

        // straggler episodes
        if cfg.straggler_mtbf.as_secs_f64() > 0.0 {
            for n in 0..nodes {
                let mut rng = root.fork(0x3000 + n as u64);
                let mut t = rng.exp(cfg.straggler_mtbf.as_secs_f64());
                while t < horizon {
                    let node = NodeId(n as u32);
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(t),
                        event: FaultEvent::StragglerStart(node),
                    });
                    let up = t + rng.exp(cfg.straggler_duration.as_secs_f64().max(1.0));
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(up),
                        event: FaultEvent::StragglerEnd(node),
                    });
                    t = up + rng.exp(cfg.straggler_mtbf.as_secs_f64());
                }
            }
        }

        // silent-corruption arrivals: an independent renewal process per
        // node. Forked *after* the three original families so plans from
        // corruption-free configs stay byte-identical (fork consumes a
        // draw from the root stream, so fork order is part of the plan).
        if cfg.corrupt_mtbf.as_secs_f64() > 0.0 {
            for n in 0..nodes {
                let mut rng = root.fork(0x4000 + n as u64);
                let mut t = rng.exp(cfg.corrupt_mtbf.as_secs_f64());
                while t < horizon {
                    let node = NodeId(n as u32);
                    let pick = rng.gen_u64();
                    let event = if rng.chance(cfg.corrupt_shard_fraction) {
                        FaultEvent::CorruptShard { node, pick }
                    } else {
                        FaultEvent::CorruptReplica { node, pick }
                    };
                    events.push(TimedFault {
                        at: SimTime::from_secs_f64(t),
                        event,
                    });
                    t += rng.exp(cfg.corrupt_mtbf.as_secs_f64());
                }
            }
        }

        // torn-write pass: re-tag some crashes as torn. A separate fork
        // per node keeps the churn stream's draws untouched, so enabling
        // torn writes changes *which* crashes are torn but never when
        // crashes happen.
        if cfg.torn_write_probability > 0.0 && cfg.node_mtbf.as_secs_f64() > 0.0 {
            for n in 0..nodes {
                let mut rng = root.fork(0x5000 + n as u64);
                let node = NodeId(n as u32);
                for tf in events.iter_mut() {
                    if tf.event == FaultEvent::Crash(node) && rng.chance(cfg.torn_write_probability)
                    {
                        tf.event = FaultEvent::TornCrash(node);
                    }
                }
            }
        }

        // deterministic global order: time, then a stable event rank
        events.sort_by(|a, b| {
            a.at.cmp(&b.at)
                .then_with(|| event_rank(&a.event).cmp(&event_rank(&b.event)))
        });
        FaultPlan { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
    /// Count of permanent kills in the plan.
    pub fn kills(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.event, FaultEvent::Kill(_)))
            .count()
    }
}

/// Stable tie-break rank: restores before outages at the same instant so
/// a same-tick restore/outage pair nets to the outage.
fn event_rank(e: &FaultEvent) -> (u8, u32) {
    match e {
        FaultEvent::Restart(n) => (0, n.0),
        FaultEvent::RackRestore(r) => (1, u32::from(r.0)),
        FaultEvent::StragglerEnd(n) => (2, n.0),
        FaultEvent::Crash(n) => (3, n.0),
        FaultEvent::Kill(n) => (4, n.0),
        FaultEvent::RackOutage(r) => (5, u32::from(r.0)),
        FaultEvent::StragglerStart(n) => (6, n.0),
        FaultEvent::TornCrash(n) => (7, n.0),
        FaultEvent::CorruptReplica { node, .. } => (8, node.0),
        FaultEvent::CorruptShard { node, .. } => (9, node.0),
    }
}

/// Cursor that replays a [`FaultPlan`] against a cluster.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    next: usize,
    slowdown: f64,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, straggler_slowdown: f64) -> Self {
        FaultInjector {
            plan,
            next: 0,
            slowdown: straggler_slowdown.clamp(0.01, 1.0),
        }
    }

    /// Build plan + injector in one step.
    pub fn from_config(cfg: &FaultConfig, nodes: usize, racks: usize, seed: u64) -> Self {
        let plan = FaultPlan::generate(cfg, nodes, racks, seed);
        FaultInjector::new(plan, cfg.straggler_slowdown)
    }

    /// How many planned faults have already been applied. The plan
    /// itself is a pure function of (config, cluster shape, seed), so a
    /// checkpoint stores only this cursor and regenerates the plan on
    /// restore.
    pub fn cursor(&self) -> usize {
        self.next
    }

    /// Reposition the applied-fault cursor (checkpoint restore). Clamped
    /// to the plan length.
    pub fn set_cursor(&mut self, cursor: usize) {
        self.next = cursor.min(self.plan.events.len());
    }

    /// Apply every not-yet-applied fault with `at <= now`. Returns how
    /// many fired. Events targeting nodes in an incompatible state
    /// (e.g. a restart for a node that was separately killed) are
    /// skipped harmlessly — the cluster entry points are state-checked.
    pub fn apply_due(&mut self, c: &mut ClusterSim, now: SimTime) -> usize {
        let mut fired = 0;
        let telemetry = c.telemetry().clone();
        while self.next < self.plan.events.len() && self.plan.events[self.next].at <= now {
            let ev = self.plan.events[self.next].event.clone();
            self.next += 1;
            fired += 1;
            simcore::trace!(telemetry, now, {
                let (kind, node, rack) = match &ev {
                    FaultEvent::Crash(n) => ("crash", Some(n.0), None),
                    FaultEvent::Restart(n) => ("restart", Some(n.0), None),
                    FaultEvent::Kill(n) => ("kill", Some(n.0), None),
                    FaultEvent::RackOutage(r) => ("rack_outage", None, Some(u32::from(r.0))),
                    FaultEvent::RackRestore(r) => ("rack_restore", None, Some(u32::from(r.0))),
                    FaultEvent::StragglerStart(n) => ("straggler_start", Some(n.0), None),
                    FaultEvent::StragglerEnd(n) => ("straggler_end", Some(n.0), None),
                    FaultEvent::TornCrash(n) => ("torn_crash", Some(n.0), None),
                    FaultEvent::CorruptReplica { node, .. } => {
                        ("corrupt_replica", Some(node.0), None)
                    }
                    FaultEvent::CorruptShard { node, .. } => ("corrupt_shard", Some(node.0), None),
                };
                simcore::telemetry::Event::FaultApplied {
                    kind: kind.to_string(),
                    node,
                    rack,
                }
            });
            telemetry.counter_add("faults.applied", 1);
            match ev {
                FaultEvent::Crash(n) => {
                    c.crash_node(n);
                }
                FaultEvent::Restart(n) => {
                    c.restart_node(n);
                }
                FaultEvent::Kill(n) => {
                    c.kill_node(n);
                }
                FaultEvent::RackOutage(r) => {
                    c.fail_rack_uplink(r);
                }
                FaultEvent::RackRestore(r) => {
                    c.restore_rack_uplink(r);
                }
                FaultEvent::StragglerStart(n) => c.set_node_slowdown(n, self.slowdown),
                FaultEvent::StragglerEnd(n) => c.clear_node_slowdown(n),
                FaultEvent::TornCrash(n) => {
                    c.crash_node_torn(n);
                }
                FaultEvent::CorruptReplica { node, pick } => {
                    c.corrupt_replica(node, pick, false);
                }
                FaultEvent::CorruptShard { node, pick } => {
                    c.corrupt_replica(node, pick, true);
                }
            }
        }
        fired
    }

    /// Time of the next pending fault, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.plan.events.get(self.next).map(|e| e.at)
    }
    /// Whether the whole plan has been applied.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.events.len()
    }
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSim;
    use crate::config::ClusterConfig;
    use crate::placement::DefaultRackAware;
    use simcore::units::MB;

    fn cfg() -> FaultConfig {
        FaultConfig {
            node_mtbf: SimDuration::from_secs(600),
            node_mttr: SimDuration::from_secs(120),
            kill_probability: 0.1,
            rack_mtbf: SimDuration::from_secs(1800),
            rack_mttr: SimDuration::from_secs(60),
            straggler_mtbf: SimDuration::from_secs(1200),
            straggler_duration: SimDuration::from_secs(300),
            straggler_slowdown: 0.2,
            corrupt_mtbf: SimDuration::ZERO,
            corrupt_shard_fraction: 0.0,
            torn_write_probability: 0.0,
            horizon: SimDuration::from_hours(2),
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(&cfg(), 18, 3, 42);
        let b = FaultPlan::generate(&cfg(), 18, 3, 42);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.event, y.event);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&cfg(), 18, 3, 1);
        let b = FaultPlan::generate(&cfg(), 18, 3, 2);
        let same = a
            .events
            .iter()
            .zip(&b.events)
            .filter(|(x, y)| x.at == y.at)
            .count();
        assert!(same < a.len().min(b.len()) / 2);
    }

    #[test]
    fn plan_is_sorted_and_crashes_pair_with_restarts() {
        let p = FaultPlan::generate(&cfg(), 18, 3, 7);
        for w in p.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for n in 0..18u32 {
            let crashes = p
                .events
                .iter()
                .filter(|e| e.event == FaultEvent::Crash(NodeId(n)))
                .count();
            let restarts = p
                .events
                .iter()
                .filter(|e| e.event == FaultEvent::Restart(NodeId(n)))
                .count();
            assert_eq!(crashes, restarts, "node {n}: every crash restarts");
            let kills = p
                .events
                .iter()
                .filter(|e| e.event == FaultEvent::Kill(NodeId(n)))
                .count();
            assert!(kills <= 1, "a node dies at most once");
        }
    }

    #[test]
    fn zero_rates_disable_families() {
        let c = FaultConfig::churn_only(
            SimDuration::from_secs(600),
            SimDuration::from_secs(60),
            SimDuration::from_hours(1),
        );
        let p = FaultPlan::generate(&c, 10, 2, 3);
        assert!(p
            .events
            .iter()
            .all(|e| matches!(e.event, FaultEvent::Crash(_) | FaultEvent::Restart(_))));
        assert_eq!(p.kills(), 0);
    }

    #[test]
    fn corruption_family_is_additive_and_deterministic() {
        // enabling corruption must not move any of the original events:
        // the new streams fork after the old ones, so the old plan is a
        // sub-sequence of the new one
        let base = FaultPlan::generate(&cfg(), 18, 3, 42);
        let storm_cfg = cfg().with_corruption(SimDuration::from_secs(1200), 0.3, 0.0);
        let storm = FaultPlan::generate(&storm_cfg, 18, 3, 42);
        assert!(storm.len() > base.len(), "corruption adds events");
        let originals: Vec<&TimedFault> = storm
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.event,
                    FaultEvent::CorruptReplica { .. } | FaultEvent::CorruptShard { .. }
                )
            })
            .collect();
        assert_eq!(originals.len(), base.len());
        for (o, b) in originals.iter().zip(&base.events) {
            assert_eq!(o.at, b.at);
            assert_eq!(o.event, b.event);
        }
        // and both shapes appear with a 0.3 shard fraction
        assert!(storm
            .events
            .iter()
            .any(|e| matches!(e.event, FaultEvent::CorruptReplica { .. })));
        assert!(storm
            .events
            .iter()
            .any(|e| matches!(e.event, FaultEvent::CorruptShard { .. })));
    }

    #[test]
    fn torn_writes_retag_crashes_without_moving_them() {
        let base = FaultPlan::generate(&cfg(), 18, 3, 42);
        let torn_cfg = cfg().with_corruption(SimDuration::from_secs(0), 0.0, 0.5);
        let torn = FaultPlan::generate(&torn_cfg, 18, 3, 42);
        assert_eq!(torn.len(), base.len(), "torn pass only retags");
        let mut retagged = 0;
        for (t, b) in torn.events.iter().zip(&base.events) {
            assert_eq!(t.at, b.at, "timing is untouched");
            match (&t.event, &b.event) {
                (FaultEvent::TornCrash(a), FaultEvent::Crash(b)) => {
                    assert_eq!(a, b);
                    retagged += 1;
                }
                (a, b) => assert_eq!(a, b),
            }
        }
        assert!(retagged > 0, "p=0.5 must tear some crashes");
        // every torn crash still pairs with a restart
        for n in 0..18u32 {
            let crashes = torn
                .events
                .iter()
                .filter(|e| {
                    e.event == FaultEvent::Crash(NodeId(n))
                        || e.event == FaultEvent::TornCrash(NodeId(n))
                })
                .count();
            let restarts = torn
                .events
                .iter()
                .filter(|e| e.event == FaultEvent::Restart(NodeId(n)))
                .count();
            assert_eq!(crashes, restarts, "node {n}");
        }
    }

    #[test]
    fn injector_drives_cluster_through_churn() {
        let mut c = ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
        c.create_file("/f", 256 * MB, 3, None).unwrap();
        let used = c.storage_used();
        let fc = FaultConfig::churn_only(
            SimDuration::from_secs(900),
            SimDuration::from_secs(60),
            SimDuration::from_hours(1),
        );
        let mut inj = FaultInjector::from_config(&fc, 18, 3, 11);
        assert!(!inj.exhausted());
        let mut t = SimTime::from_secs(0);
        let end = SimTime::from_secs(3700);
        while t < end {
            t += SimDuration::from_secs(10);
            inj.apply_due(&mut c, t);
            c.run_until(t);
        }
        assert!(inj.exhausted());
        // churn only (no kills): every node is back and every retained
        // replica was block-reported, so nothing was lost
        assert_eq!(c.serving_nodes(), 18);
        assert_eq!(c.storage_used(), used);
        assert!(c.durability().loss_events().is_empty());
    }
}
