//! `hdfs-sim` — a discrete-event simulator of an HDFS cluster.
//!
//! This is the substrate substitution for the paper's physical testbed
//! (1 namenode + 18 datanodes in 3 racks on Gigabit Ethernet, Hadoop
//! 0.20-append). The quantities ERMS's evaluation measures — read
//! throughput, data locality, storage utilisation, the number of
//! concurrent sessions a replica set sustains — are functions of replica
//! *placement* and per-node *service capacity*, which the simulator
//! models explicitly:
//!
//! * [`topology`] — racks, datanodes, external clients;
//! * [`block`] / [`namespace`] / [`blockmap`] — files, 64 MB blocks and
//!   the block → replica-locations map, with under-replication tracking;
//! * [`datanode`] — per-node disk capacity and the **session cap** (HDFS's
//!   `max.xcievers`-style limit: requests beyond it queue, reproducing the
//!   contention collapse of Figures 6 and 8);
//! * [`flow`] — a fair-share flow-level network model: every transfer is
//!   a flow over a set of capacity resources (source disk+NIC, client NIC,
//!   rack uplinks) and gets the min equal share across them, recomputed
//!   whenever the flow set changes;
//! * [`placement`] — the pluggable replica-placement interface plus
//!   HDFS's default rack-aware policy (ERMS plugs Algorithm 1 in here);
//! * [`audit`] — namenode audit log + datanode client-trace emission, the
//!   textual interface ERMS's CEP pipeline consumes;
//! * [`cluster`] — the [`cluster::ClusterSim`] facade gluing it together:
//!   reads, writes, replication changes, node commission/decommission,
//!   failures and metrics.
//!
//! ```
//! use hdfs_sim::topology::{ClientId, Endpoint};
//! use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
//!
//! let mut cluster = ClusterSim::new(
//!     ClusterConfig::paper_testbed(), // 18 nodes, 3 racks, 64 MB blocks
//!     Box::new(DefaultRackAware),
//! );
//! cluster.create_file("/data/f", 128 << 20, 3, None).unwrap();
//! cluster.open_read(Endpoint::Client(ClientId(1)), "/data/f").unwrap();
//! cluster.run_until_quiescent();
//!
//! let read = &cluster.drain_completed_reads()[0];
//! assert!(!read.failed);
//! assert!(read.throughput_mb_s() > 0.0);
//! // and the audit log recorded it in HDFS's own format
//! assert!(cluster.drain_audit().iter().any(|l| l.contains("cmd=open")));
//! ```

pub mod audit;
pub mod balancer;
pub mod block;
pub mod blockmap;
pub mod cluster;
pub mod config;
pub mod datanode;
pub mod faults;
pub mod flow;
pub mod namespace;
pub mod placement;
pub mod topology;

pub use block::{BlockId, FileId};
pub use cluster::{ClusterSim, Locality, ReadStats};
pub use config::{ClusterConfig, ConfigError};
pub use faults::{FaultConfig, FaultEvent, FaultInjector, FaultPlan, TimedFault};
pub use placement::{DefaultRackAware, PlacementContext, PlacementPolicy};
pub use topology::{ClientId, NodeId, RackId, Topology};
