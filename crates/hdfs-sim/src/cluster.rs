//! The cluster simulator facade.
//!
//! [`ClusterSim`] glues the pieces together into a driveable HDFS model:
//! clients open files and read them block by block from the best replica
//! (datanode sessions cap out and queue, flows share bandwidth
//! max-min-fairly), replication changes move real simulated bytes, nodes
//! boot, drain, and die. Every namespace operation and block transfer is
//! written to the audit sink in HDFS's own log format — the feed ERMS's
//! CEP pipeline consumes.
//!
//! The simulator is **driven**: callers submit work, then pump the event
//! loop with [`ClusterSim::run_until`] / [`ClusterSim::run_until_quiescent`]
//! and collect completions with [`ClusterSim::drain_completed_reads`].

use crate::audit::AuditSink;
use crate::block::{BlockId, FileId};
use crate::blockmap::BlockMap;
use crate::config::ClusterConfig;
use crate::datanode::{DataNode, NodeState, SessionTicket};
use crate::flow::{FlowId, FlowNet, ResourceId};
use crate::namespace::{Namespace, StorageMode};
use crate::placement::{NodeView, PlacementContext, PlacementPolicy};
use crate::topology::{ClientId, Distance, Endpoint, NodeId, RackId, Topology};
use simcore::stats::DurabilityLog;
use simcore::telemetry::{Event as Tel, TelemetrySink};
use simcore::units::{Bandwidth, Bytes};
use simcore::{trace, EventId, EventQueue, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Handle to an in-flight read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReadId(pub u64);

/// Handle to an in-flight replica copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CopyId(pub u64);

/// Which replica distance served a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    NodeLocal,
    RackLocal,
    Remote,
}

/// Final accounting of one read request.
#[derive(Debug, Clone)]
pub struct ReadStats {
    pub id: ReadId,
    pub path: String,
    pub reader: Endpoint,
    pub bytes: Bytes,
    pub started: SimTime,
    pub finished: SimTime,
    pub node_local_blocks: u32,
    pub rack_local_blocks: u32,
    pub remote_blocks: u32,
    pub failed: bool,
}

impl ReadStats {
    pub fn duration(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }
    /// Mean throughput in MB/s over the request's lifetime.
    pub fn throughput_mb_s(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1 << 20) as f64 / d
        }
    }
    pub fn total_blocks(&self) -> u32 {
        self.node_local_blocks + self.rack_local_blocks + self.remote_blocks
    }
    /// Fraction of blocks served node-locally.
    pub fn locality_fraction(&self) -> f64 {
        let t = self.total_blocks();
        if t == 0 {
            0.0
        } else {
            self.node_local_blocks as f64 / t as f64
        }
    }
}

/// Final accounting of one replica copy.
#[derive(Debug, Clone)]
pub struct CopyStats {
    pub id: CopyId,
    pub block: BlockId,
    pub source: NodeId,
    pub target: NodeId,
    pub started: SimTime,
    pub finished: SimTime,
    pub succeeded: bool,
}

/// Handle to an in-flight pipelined write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId(pub u64);

/// Final accounting of one pipelined file write.
#[derive(Debug, Clone)]
pub struct WriteStats {
    pub id: WriteId,
    pub path: String,
    pub bytes: Bytes,
    pub started: SimTime,
    pub finished: SimTime,
    pub failed: bool,
}

impl WriteStats {
    pub fn duration(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }
    pub fn throughput_mb_s(&self) -> f64 {
        let d = self.duration();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1 << 20) as f64 / d
        }
    }
}

#[derive(Debug, Clone)]
enum Ev {
    BeginRead(ReadId),
    FlowDone(FlowId),
    NodeBooted(NodeId),
    /// A staged replica copy clears the replication-monitor delay.
    StartCopy(CopyId),
    /// Opaque caller timer (MapReduce compute phases, controller ticks).
    Timer(u64),
}

#[derive(Debug)]
struct ReadReq {
    id: ReadId,
    reader: Endpoint,
    path: String,
    pending_blocks: VecDeque<BlockId>,
    bytes_done: Bytes,
    started: SimTime,
    node_local: u32,
    rack_local: u32,
    remote: u32,
    failed: bool,
}

#[derive(Debug, Clone)]
enum Transfer {
    ReadBlock {
        read: ReadId,
        block: BlockId,
        node: NodeId,
    },
    WriteBlock {
        write: WriteId,
        block: BlockId,
        targets: Vec<NodeId>,
        len: Bytes,
    },
    Copy {
        copy: CopyId,
        block: BlockId,
        source: NodeId,
        target: NodeId,
        len: Bytes,
        started: SimTime,
    },
    /// Erasure reconstruction: the target pulls one shard from each of
    /// `sources` (k surviving stripe members) and writes the rebuilt
    /// block, so ~k × len bytes cross the network.
    Reconstruct {
        copy: CopyId,
        block: BlockId,
        sources: Vec<NodeId>,
        target: NodeId,
        len: Bytes,
        started: SimTime,
    },
}

/// A replica copy waiting out the replication-monitor scan delay or a
/// free replication stream; the source is chosen at dispatch time so
/// newly landed replicas can serve later copies.
#[derive(Debug, Clone)]
struct StagedCopy {
    block: BlockId,
    target: NodeId,
    len: Bytes,
    requested: SimTime,
}

#[derive(Debug)]
struct WriteReq {
    id: WriteId,
    writer: Endpoint,
    file: FileId,
    path: String,
    replication: usize,
    pending_blocks: VecDeque<BlockId>,
    bytes_done: Bytes,
    started: SimTime,
    failed: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingSession {
    read: ReadId,
    block: BlockId,
    node: NodeId,
}

/// The HDFS cluster simulator.
pub struct ClusterSim {
    cfg: ClusterConfig,
    topology: Topology,
    nodes: Vec<DataNode>,
    namespace: Namespace,
    blockmap: BlockMap,
    net: FlowNet,
    queue: EventQueue<Ev>,
    audit: AuditSink,
    policy: Box<dyn PlacementPolicy>,

    node_disk: Vec<ResourceId>,
    node_nic: Vec<ResourceId>,
    rack_uplink: Vec<ResourceId>,
    client_nic: BTreeMap<ClientId, ResourceId>,

    reads: BTreeMap<ReadId, ReadReq>,
    next_read: u64,
    writes: BTreeMap<WriteId, WriteReq>,
    next_write: u64,
    completed_writes: Vec<WriteStats>,
    transfers: BTreeMap<FlowId, Transfer>,
    flow_events: BTreeMap<FlowId, EventId>,
    tickets: BTreeMap<SessionTicket, PendingSession>,
    next_ticket: u64,
    next_copy: u64,

    completed_reads: Vec<ReadStats>,
    completed_copies: Vec<CopyStats>,
    fired_timers: Vec<(SimTime, u64)>,
    standby_pool: Vec<bool>,
    /// In-flight replica-copy flows touching each node (sources and
    /// targets), counted into placement/source load so parallel copies
    /// spread across holders.
    copy_load: Vec<u32>,
    /// Copies waiting for the replication monitor.
    staged_copies: BTreeMap<CopyId, StagedCopy>,
    /// Copies past the monitor delay, waiting for a free stream.
    ready_copies: VecDeque<(CopyId, StagedCopy)>,
    /// Outbound replication streams per node (capped by config).
    copy_streams: Vec<u32>,
    /// On-disk blocks a crashed node retains across its downtime; the
    /// block report on [`ClusterSim::restart_node`] reconciles them.
    /// Kept cluster-side so `storage_used` keeps matching the block map
    /// while the node is down.
    retained: BTreeMap<NodeId, Vec<(BlockId, Bytes)>>,
    /// Per-node service slowdown factor (1.0 = healthy); a straggler
    /// episode scales the node's disk and NIC capacity by this.
    slowdown: Vec<f64>,
    /// Rack uplinks currently forced down by a fault.
    rack_down: Vec<bool>,
    /// Copies started by the repair loop (counted as repair traffic).
    repair_copies: BTreeSet<CopyId>,
    /// Unavailability windows, loss events and repair bytes.
    durability: DurabilityLog,
    /// Files touched since the last [`ClusterSim::drain_dirty_files`]:
    /// creates, reads (including per-block read completions), writes,
    /// replication changes, landed copies, encode/decode flips and
    /// fault-affected replicas all mark the owning file. A control loop
    /// can re-examine only these instead of walking the namespace.
    dirty_files: BTreeSet<FileId>,
    /// Paths removed by [`ClusterSim::delete_file`] since the last
    /// [`ClusterSim::drain_deleted_paths`], so per-path bookkeeping
    /// outside the cluster (ERMS streaks, boost flags, in-flight dedup)
    /// can be pruned instead of leaking.
    deleted_paths: Vec<String>,
    /// Replicas/shards whose on-disk bytes are silently corrupt but not
    /// yet detected, keyed by (block, holder) with the injection time so
    /// detection latency can be measured. A corrupt copy still *serves*
    /// until a read, a repair copy or the scrubber checksums it; the key
    /// survives a crash (the stash keeps the bad bytes) and dies with
    /// the disk (kill/power-off/delete).
    latent_corrupt: BTreeMap<(BlockId, NodeId), SimTime>,
    /// Blocks with at least one detected-and-quarantined corrupt copy
    /// that have not yet been restored to their target replica count.
    /// The scrubber's repair scheduling drains this.
    corrupt_pending_repair: BTreeSet<BlockId>,
    /// Next block id the background scrub sweep will checksum; wraps
    /// around the sorted block-id space so the scan order is
    /// deterministic regardless of budget.
    scrub_cursor: u64,
    /// Structured event/metric sink; disabled (free) by default.
    telemetry: TelemetrySink,
}

impl ClusterSim {
    /// Build a cluster with every node active and the given policy.
    pub fn new(cfg: ClusterConfig, policy: Box<dyn PlacementPolicy>) -> Self {
        cfg.validate().expect("invalid cluster config");
        let topology = Topology::round_robin(cfg.datanodes, cfg.racks);
        let mut net = FlowNet::new();
        let mut nodes = Vec::with_capacity(cfg.datanodes as usize);
        let mut node_disk = Vec::new();
        let mut node_nic = Vec::new();
        for i in 0..cfg.datanodes {
            nodes.push(DataNode::new(
                NodeId(i),
                cfg.disk_capacity,
                cfg.max_sessions_per_node,
                NodeState::Active,
            ));
            node_disk.push(net.add_resource(cfg.disk_bandwidth));
            node_nic.push(net.add_resource(cfg.nic_bandwidth));
        }
        let rack_uplink = (0..cfg.racks)
            .map(|_| net.add_resource(cfg.rack_uplink))
            .collect();
        let datanodes = cfg.datanodes as usize;
        let cfg_racks = cfg.racks as usize;
        let standby_pool = vec![false; datanodes];
        let copy_load = vec![0; datanodes];
        ClusterSim {
            cfg,
            topology,
            nodes,
            namespace: Namespace::new(),
            blockmap: BlockMap::new(),
            net,
            queue: EventQueue::new(),
            audit: AuditSink::new(),
            policy,
            node_disk,
            node_nic,
            rack_uplink,
            client_nic: BTreeMap::new(),
            reads: BTreeMap::new(),
            next_read: 0,
            writes: BTreeMap::new(),
            next_write: 0,
            completed_writes: Vec::new(),
            transfers: BTreeMap::new(),
            flow_events: BTreeMap::new(),
            tickets: BTreeMap::new(),
            next_ticket: 0,
            next_copy: 0,
            completed_reads: Vec::new(),
            completed_copies: Vec::new(),
            fired_timers: Vec::new(),
            standby_pool,
            copy_load,
            staged_copies: BTreeMap::new(),
            ready_copies: VecDeque::new(),
            copy_streams: vec![0; datanodes],
            retained: BTreeMap::new(),
            slowdown: vec![1.0; datanodes],
            rack_down: vec![false; cfg_racks],
            repair_copies: BTreeSet::new(),
            durability: DurabilityLog::new(),
            dirty_files: BTreeSet::new(),
            deleted_paths: Vec::new(),
            latent_corrupt: BTreeMap::new(),
            corrupt_pending_repair: BTreeSet::new(),
            scrub_cursor: 0,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Install a telemetry sink; pass a clone of the harness-wide sink
    /// so cluster events interleave with manager/scheduler events in
    /// one trace. [`TelemetrySink::disabled`] (the default) is free.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// The installed telemetry sink (disabled unless a harness swapped
    /// one in). The fault injector emits through this.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Schedule an opaque timer; it surfaces in
    /// [`ClusterSim::drain_fired_timers`] once the clock reaches `at`.
    /// Lets callers (the MapReduce runner, the ERMS control loop) run
    /// their own logic on the cluster clock.
    pub fn schedule_timer(&mut self, at: SimTime, token: u64) {
        let at = at.max(self.now());
        self.queue.schedule(at, Ev::Timer(token));
    }

    /// Timers that fired since the last drain.
    pub fn drain_fired_timers(&mut self) -> Vec<(SimTime, u64)> {
        std::mem::take(&mut self.fired_timers)
    }

    // ------------------------------------------------------------------
    // introspection

    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }
    pub fn blockmap(&self) -> &BlockMap {
        &self.blockmap
    }
    pub fn audit_mut(&mut self) -> &mut AuditSink {
        &mut self.audit
    }
    /// Take all audit-log lines emitted since the last drain.
    pub fn drain_audit(&mut self) -> Vec<String> {
        self.audit.drain()
    }

    /// Take the set of files touched since the last drain, in id order.
    /// See the `dirty_files` field for what counts as a touch.
    pub fn drain_dirty_files(&mut self) -> Vec<FileId> {
        let set = std::mem::take(&mut self.dirty_files);
        set.into_iter().collect()
    }

    /// Take the paths deleted since the last drain, in deletion order.
    pub fn drain_deleted_paths(&mut self) -> Vec<String> {
        std::mem::take(&mut self.deleted_paths)
    }

    fn mark_dirty(&mut self, file: FileId) {
        self.dirty_files.insert(file);
    }

    /// Mark the file owning `block` dirty (no-op for forgotten blocks).
    fn mark_block_dirty(&mut self, block: BlockId) {
        if let Some(f) = self.namespace.block(block).map(|i| i.file) {
            self.dirty_files.insert(f);
        }
    }

    pub fn node_state(&self, n: NodeId) -> NodeState {
        self.nodes[n.0 as usize].state
    }
    pub fn node_load(&self, n: NodeId) -> usize {
        self.nodes[n.0 as usize].load() + self.copy_load[n.0 as usize] as usize
    }
    pub fn node_used(&self, n: NodeId) -> Bytes {
        self.nodes[n.0 as usize].used()
    }
    pub fn node_block_count(&self, n: NodeId) -> usize {
        self.nodes[n.0 as usize].block_count()
    }
    pub fn node_holds(&self, n: NodeId, b: BlockId) -> bool {
        self.nodes[n.0 as usize].holds(b)
    }
    /// Blocks stored on a node, in id order. Borrows the node's sorted
    /// block column; collect only if you need ownership.
    pub fn node_blocks(&self, n: NodeId) -> impl Iterator<Item = BlockId> + '_ {
        self.nodes[n.0 as usize].blocks()
    }
    pub fn peak_sessions(&self, n: NodeId) -> usize {
        self.nodes[n.0 as usize].peak_sessions
    }

    /// Total bytes stored across all datanodes.
    pub fn storage_used(&self) -> Bytes {
        self.nodes.iter().map(DataNode::used).sum()
    }

    /// Durability ledger (unavailability windows, loss events, repair
    /// bytes) accumulated by the fault surface.
    pub fn durability(&self) -> &DurabilityLog {
        &self.durability
    }
    pub fn durability_mut(&mut self) -> &mut DurabilityLog {
        &mut self.durability
    }
    /// Current straggler slowdown factor of a node (1.0 = healthy).
    pub fn node_slowdown(&self, n: NodeId) -> f64 {
        self.slowdown[n.0 as usize]
    }
    /// Whether a rack's uplink is currently failed.
    pub fn rack_uplink_down(&self, r: RackId) -> bool {
        self.rack_down[r.0 as usize]
    }
    /// Blocks a crashed node still retains on disk (restored by the
    /// block report when the node restarts).
    pub fn retained_blocks(&self, n: NodeId) -> usize {
        self.retained.get(&n).map_or(0, Vec::len)
    }

    /// Number of datanodes currently serving.
    pub fn serving_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_serving()).count()
    }

    /// Sum of active+queued sessions across the cluster — the idleness
    /// signal the Condor scheduler consults.
    pub fn total_load(&self) -> usize {
        self.nodes.iter().map(DataNode::load).sum()
    }
    pub fn is_idle(&self) -> bool {
        self.transfers.is_empty()
            && self.tickets.is_empty()
            && self.staged_copies.is_empty()
            && self.ready_copies.is_empty()
    }

    /// Placement snapshot for a block of `file`.
    pub fn node_views(&self, block: Option<BlockId>, file: Option<FileId>) -> Vec<NodeView> {
        let file_blocks: Vec<BlockId> = file
            .and_then(|f| self.namespace.file(f))
            .map(|m| {
                let mut all = m.blocks.clone();
                if let StorageMode::Encoded { parity_blocks } = &m.mode {
                    all.extend_from_slice(parity_blocks);
                }
                all
            })
            .unwrap_or_default();
        self.nodes
            .iter()
            .map(|n| NodeView {
                id: n.id,
                rack: self.topology.rack_of(n.id),
                serving: n.is_serving(),
                standby_pool: self.standby_pool[n.id.0 as usize],
                free: n.free(),
                load: n.load() + self.copy_load[n.id.0 as usize] as usize,
                holds_block: block.is_some_and(|b| n.holds(b)),
                file_block_count: file_blocks.iter().filter(|&&b| n.holds(b)).count(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // namespace operations

    /// Create a file and place its blocks instantly (bulk-load path used
    /// by trace replay; timed data movement goes through the replication
    /// APIs). Returns `None` if the path exists or placement failed.
    pub fn create_file(
        &mut self,
        path: &str,
        size: Bytes,
        replication: usize,
        writer: Option<NodeId>,
    ) -> Option<FileId> {
        let now = self.now();
        let id = self
            .namespace
            .create_file(path, size, self.cfg.block_size, replication, now)?;
        let blocks: Vec<BlockId> = self
            .namespace
            .file(id)
            .expect("just created")
            .blocks
            .clone();
        self.mark_dirty(id);
        for b in blocks {
            self.blockmap.set_target(b, replication);
            let len = self.namespace.block(b).expect("block exists").len;
            let views = self.node_views(Some(b), Some(id));
            let ctx = PlacementContext {
                views: &views,
                replica_locations: &[],
                replica_racks: &[],
                default_replication: self.cfg.default_replication,
                writer,
                block_len: len,
            };
            let targets = self.policy.choose_targets(&ctx, replication);
            for t in targets {
                self.store_replica(b, t, len);
            }
        }
        let ep = writer
            .map(Endpoint::Node)
            .unwrap_or(Endpoint::Client(ClientId(0)));
        self.audit.file_op(now, ep, "create", path);
        Some(id)
    }

    /// Write a file through the simulated pipeline: blocks stream
    /// sequentially through `replication` targets chosen per block by
    /// the placement policy, moving real simulated bytes (unlike
    /// [`ClusterSim::create_file`], which bulk-loads instantly).
    /// Completion surfaces in [`ClusterSim::drain_completed_writes`].
    pub fn write_file(
        &mut self,
        writer: Endpoint,
        path: &str,
        size: Bytes,
        replication: usize,
    ) -> Option<WriteId> {
        let now = self.now();
        let file = self
            .namespace
            .create_file(path, size, self.cfg.block_size, replication, now)?;
        let blocks: Vec<BlockId> = self
            .namespace
            .file(file)
            .expect("just created")
            .blocks
            .clone();
        self.mark_dirty(file);
        for &b in &blocks {
            self.blockmap.set_target(b, replication);
        }
        let id = WriteId(self.next_write);
        self.next_write += 1;
        self.audit.file_op(now, writer, "create", path);
        trace!(
            self.telemetry,
            now,
            Tel::WriteStarted {
                write: id.0,
                path: path.to_string(),
                replication: replication as u32,
            }
        );
        self.telemetry.counter_add("hdfs.writes_started", 1);
        self.writes.insert(
            id,
            WriteReq {
                id,
                writer,
                file,
                path: path.to_string(),
                replication,
                pending_blocks: blocks.into_iter().collect(),
                bytes_done: 0,
                started: now,
                failed: false,
            },
        );
        self.advance_write(id);
        Some(id)
    }

    fn advance_write(&mut self, id: WriteId) {
        let Some(req) = self.writes.get(&id) else {
            return;
        };
        let Some(&block) = req.pending_blocks.front() else {
            self.finish_write(id, false);
            return;
        };
        let writer = req.writer;
        let file = req.file;
        let replication = req.replication;
        let len = self.block_len_or_zero(block);
        // choose the pipeline targets for this block
        let views = self.node_views(Some(block), Some(file));
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: self.cfg.default_replication,
            writer: match writer {
                Endpoint::Node(n) => Some(n),
                Endpoint::Client(_) => None,
            },
            block_len: len,
        };
        let targets = self.policy.choose_targets(&ctx, replication);
        if targets.is_empty() {
            self.finish_write(id, true);
            return;
        }
        // in-flight pipeline targets count as load so concurrent writes
        // spread instead of stacking on the same empty nodes
        for &t in &targets {
            self.copy_load[t.0 as usize] += 1;
        }
        // the pipeline traverses the writer's NIC and every target's
        // NIC + disk; cross-rack hops pay their uplinks
        let mut resources = Vec::new();
        let mut prev: Option<NodeId> = None;
        match writer {
            Endpoint::Node(n) => {
                resources.push(self.node_nic[n.0 as usize]);
                prev = Some(n);
            }
            Endpoint::Client(c) => {
                let client_bw = self.cfg.client_bandwidth;
                let nic = *self
                    .client_nic
                    .entry(c)
                    .or_insert_with(|| self.net.add_resource(client_bw));
                resources.push(nic);
                if let Some(&first) = targets.first() {
                    resources.push(self.rack_uplink[self.topology.rack_of(first).0 as usize]);
                }
            }
        }
        for &t in &targets {
            resources.push(self.node_nic[t.0 as usize]);
            resources.push(self.node_disk[t.0 as usize]);
            if let Some(p) = prev {
                if self.topology.crosses_racks(p, t) {
                    resources.push(self.rack_uplink[self.topology.rack_of(p).0 as usize]);
                    resources.push(self.rack_uplink[self.topology.rack_of(t).0 as usize]);
                }
            }
            prev = Some(t);
        }
        resources.sort_unstable();
        resources.dedup();
        let now = self.now();
        let flow = self.net.start(now, len, resources);
        self.transfers.insert(
            flow,
            Transfer::WriteBlock {
                write: id,
                block,
                targets,
                len,
            },
        );
        self.resync_flow_events();
    }

    fn finish_write(&mut self, id: WriteId, failed: bool) {
        let Some(req) = self.writes.remove(&id) else {
            return;
        };
        let now = self.now();
        if failed {
            // abandon the partial file like an expired lease would
            let path = req.path.clone();
            self.delete_file(&path);
        }
        trace!(
            self.telemetry,
            now,
            Tel::WriteFinished {
                write: id.0,
                path: req.path.clone(),
                bytes: req.bytes_done,
                failed: failed || req.failed,
            }
        );
        self.telemetry
            .observe("hdfs.write_secs", now.since(req.started).as_secs_f64());
        self.telemetry.counter_add("hdfs.writes_finished", 1);
        self.telemetry
            .counter_add("hdfs.bytes_written", req.bytes_done);
        self.completed_writes.push(WriteStats {
            id: req.id,
            path: req.path,
            bytes: req.bytes_done,
            started: req.started,
            finished: now,
            failed: failed || req.failed,
        });
    }

    /// Delete a file, freeing every replica.
    pub fn delete_file(&mut self, path: &str) -> bool {
        let Some(id) = self.namespace.resolve(path) else {
            return false;
        };
        let now = self.now();
        // capture lengths before the namespace forgets the blocks
        let meta = self.namespace.file(id).expect("resolved file");
        let mut all_blocks: Vec<BlockId> = meta.blocks.clone();
        if let StorageMode::Encoded { parity_blocks } = &meta.mode {
            all_blocks.extend_from_slice(parity_blocks);
        }
        let lens: Vec<Bytes> = all_blocks
            .iter()
            .map(|&b| self.block_len_or_zero(b))
            .collect();
        self.namespace.delete_file(id).expect("resolved file");
        for (&b, &len) in all_blocks.iter().zip(&lens) {
            for n in self.blockmap.replica_nodes(b) {
                self.nodes[n.0 as usize].remove_block(b, len);
            }
            self.blockmap.drop_block(b);
            self.durability.forget(b.0);
            // crashed disks forget deleted blocks at their next report;
            // drop them now so a restart cannot resurrect them
            for stash in self.retained.values_mut() {
                stash.retain(|&(rb, _)| rb != b);
            }
            self.latent_corrupt.retain(|&(lb, _), _| lb != b);
            self.corrupt_pending_repair.remove(&b);
        }
        self.audit
            .file_op(now, Endpoint::Client(ClientId(0)), "delete", path);
        self.dirty_files.remove(&id);
        self.deleted_paths.push(path.to_string());
        true
    }

    fn block_len_or_zero(&self, b: BlockId) -> Bytes {
        self.namespace.block(b).map(|i| i.len).unwrap_or(0)
    }

    fn store_replica(&mut self, block: BlockId, node: NodeId, len: Bytes) -> bool {
        if self.nodes[node.0 as usize].add_block(block, len) {
            self.blockmap.add(block, node);
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // reads

    /// Open a file for reading. The request incurs the configured
    /// overhead, then streams each block from the best available replica.
    pub fn open_read(&mut self, reader: Endpoint, path: &str) -> Option<ReadId> {
        let file = self.namespace.resolve(path)?;
        let meta = self.namespace.file(file).expect("resolved file");
        let id = ReadId(self.next_read);
        self.next_read += 1;
        let req = ReadReq {
            id,
            reader,
            path: path.to_string(),
            pending_blocks: meta.blocks.iter().copied().collect(),
            bytes_done: 0,
            started: self.now(),
            node_local: 0,
            rack_local: 0,
            remote: 0,
            failed: false,
        };
        let now = self.now();
        self.audit.file_op(now, reader, "open", path);
        trace!(
            self.telemetry,
            now,
            Tel::ReadStarted {
                read: id.0,
                path: path.to_string(),
            }
        );
        self.telemetry.counter_add("hdfs.reads_started", 1);
        self.namespace.touch(file, now);
        self.mark_dirty(file);
        self.reads.insert(id, req);
        let begin = now + self.cfg.request_overhead;
        self.queue.schedule(begin, Ev::BeginRead(id));
        Some(id)
    }

    /// Open a read of a single block of `path` — the map-task pattern:
    /// each mapper opens the file and reads exactly its input split.
    pub fn open_block_read(
        &mut self,
        reader: Endpoint,
        path: &str,
        block: BlockId,
    ) -> Option<ReadId> {
        let file = self.namespace.resolve(path)?;
        let meta = self.namespace.file(file)?;
        if !meta.blocks.contains(&block) {
            return None;
        }
        let id = ReadId(self.next_read);
        self.next_read += 1;
        let req = ReadReq {
            id,
            reader,
            path: path.to_string(),
            pending_blocks: std::iter::once(block).collect(),
            bytes_done: 0,
            started: self.now(),
            node_local: 0,
            rack_local: 0,
            remote: 0,
            failed: false,
        };
        let now = self.now();
        self.audit.file_op(now, reader, "open", path);
        trace!(
            self.telemetry,
            now,
            Tel::ReadStarted {
                read: id.0,
                path: path.to_string(),
            }
        );
        self.telemetry.counter_add("hdfs.reads_started", 1);
        self.namespace.touch(file, now);
        self.mark_dirty(file);
        self.reads.insert(id, req);
        let begin = now + self.cfg.request_overhead;
        self.queue.schedule(begin, Ev::BeginRead(id));
        Some(id)
    }

    /// Collect finished reads.
    pub fn drain_completed_reads(&mut self) -> Vec<ReadStats> {
        std::mem::take(&mut self.completed_reads)
    }
    /// Collect finished replica copies.
    pub fn drain_completed_copies(&mut self) -> Vec<CopyStats> {
        std::mem::take(&mut self.completed_copies)
    }
    pub fn inflight_reads(&self) -> usize {
        self.reads.len()
    }
    pub fn inflight_writes(&self) -> usize {
        self.writes.len()
    }
    /// Collect finished pipelined writes.
    pub fn drain_completed_writes(&mut self) -> Vec<WriteStats> {
        std::mem::take(&mut self.completed_writes)
    }

    fn advance_read(&mut self, id: ReadId) {
        let Some(req) = self.reads.get_mut(&id) else {
            return;
        };
        let Some(&block) = req.pending_blocks.front() else {
            self.finish_read(id, false);
            return;
        };
        // candidate replicas: serving holders
        let reader = req.reader;
        let holders: Vec<NodeId> = self
            .blockmap
            .replica_nodes(block)
            .iter()
            .copied()
            .filter(|&n| self.nodes[n.0 as usize].is_serving())
            .collect();
        if holders.is_empty() {
            self.finish_read(id, true);
            return;
        }
        // rank: distance first, then instantaneous load, then id
        let best = holders
            .into_iter()
            .min_by_key(|&n| {
                let d = match self.topology.reader_distance(reader, n) {
                    Distance::SameNode => 0u8,
                    Distance::SameRack => 1,
                    Distance::OffRack => 2,
                };
                (d, self.nodes[n.0 as usize].load(), n)
            })
            .expect("non-empty holders");
        // locality accounting happens at replica choice
        {
            let req = self.reads.get_mut(&id).expect("read exists");
            match self.topology.reader_distance(reader, best) {
                Distance::SameNode => req.node_local += 1,
                Distance::SameRack => req.rack_local += 1,
                Distance::OffRack => req.remote += 1,
            }
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        if self.nodes[best.0 as usize].admit_or_queue(ticket) {
            self.start_block_flow(id, block, best);
        } else {
            self.tickets.insert(
                ticket,
                PendingSession {
                    read: id,
                    block,
                    node: best,
                },
            );
        }
    }

    fn read_path_resources(&mut self, reader: Endpoint, node: NodeId) -> Vec<ResourceId> {
        let ni = node.0 as usize;
        match reader {
            Endpoint::Node(r) if r == node => vec![self.node_disk[ni]],
            Endpoint::Node(r) => {
                let mut res = vec![
                    self.node_disk[ni],
                    self.node_nic[ni],
                    self.node_nic[r.0 as usize],
                ];
                if self.topology.crosses_racks(r, node) {
                    res.push(self.rack_uplink[self.topology.rack_of(node).0 as usize]);
                    res.push(self.rack_uplink[self.topology.rack_of(r).0 as usize]);
                }
                res
            }
            Endpoint::Client(c) => {
                let client_bw = self.cfg.client_bandwidth;
                let nic = *self
                    .client_nic
                    .entry(c)
                    .or_insert_with(|| self.net.add_resource(client_bw));
                vec![
                    self.node_disk[ni],
                    self.node_nic[ni],
                    nic,
                    self.rack_uplink[self.topology.rack_of(node).0 as usize],
                ]
            }
        }
    }

    fn start_block_flow(&mut self, id: ReadId, block: BlockId, node: NodeId) {
        let len = self.block_len_or_zero(block);
        let reader = self.reads.get(&id).expect("read exists").reader;
        let resources = self.read_path_resources(reader, node);
        let now = self.now();
        let flow = self.net.start(now, len, resources);
        self.transfers.insert(
            flow,
            Transfer::ReadBlock {
                read: id,
                block,
                node,
            },
        );
        self.resync_flow_events();
    }

    fn finish_read(&mut self, id: ReadId, failed: bool) {
        let Some(req) = self.reads.remove(&id) else {
            return;
        };
        let now = self.now();
        trace!(
            self.telemetry,
            now,
            Tel::ReadFinished {
                read: id.0,
                path: req.path.clone(),
                bytes: req.bytes_done,
                failed: failed || req.failed,
            }
        );
        self.telemetry
            .observe("hdfs.read_secs", now.since(req.started).as_secs_f64());
        self.telemetry.counter_add("hdfs.reads_finished", 1);
        self.telemetry
            .counter_add("hdfs.bytes_read", req.bytes_done);
        if failed || req.failed {
            self.telemetry.counter_add("hdfs.reads_failed", 1);
        }
        self.completed_reads.push(ReadStats {
            id: req.id,
            path: req.path,
            reader: req.reader,
            bytes: req.bytes_done,
            started: req.started,
            finished: now,
            node_local_blocks: req.node_local,
            rack_local_blocks: req.rack_local,
            remote_blocks: req.remote,
            failed: failed || req.failed,
        });
    }

    // ------------------------------------------------------------------
    // replication operations

    /// Copy `block` to `target` from the least-loaded serving holder.
    /// Bytes move through the simulated network; completion appears in
    /// [`ClusterSim::drain_completed_copies`].
    pub fn add_replica_to(&mut self, block: BlockId, target: NodeId) -> Option<CopyId> {
        let len = self.namespace.block(block)?.len;
        if self.nodes[target.0 as usize].holds(block)
            || !self.nodes[target.0 as usize].is_serving()
            || self.nodes[target.0 as usize].free() < len
        {
            return None;
        }
        // a serving source must exist now (it is re-picked at dispatch)
        self.blockmap
            .replica_nodes(block)
            .iter()
            .copied()
            .find(|&n| self.nodes[n.0 as usize].is_serving())?;
        self.copy_load[target.0 as usize] += 1;
        let id = CopyId(self.next_copy);
        self.next_copy += 1;
        let now = self.now();
        self.staged_copies.insert(
            id,
            StagedCopy {
                block,
                target,
                len,
                requested: now,
            },
        );
        self.queue
            .schedule(now + self.cfg.replication_scan_delay, Ev::StartCopy(id));
        Some(id)
    }

    /// The replication monitor picked up a staged copy: queue it for a
    /// free replication stream and try to dispatch.
    fn start_staged_copy(&mut self, id: CopyId) {
        if let Some(staged) = self.staged_copies.remove(&id) {
            self.ready_copies.push_back((id, staged));
        }
        self.dispatch_replications();
    }

    /// Start every ready copy that can get a source with a free stream.
    /// Sources are picked at dispatch time, so replicas that just landed
    /// immediately widen the fan-out (the waves real HDFS exhibits).
    fn dispatch_replications(&mut self) {
        let now = self.now();
        let cap = self.cfg.max_replication_streams as u32;
        let mut remaining: VecDeque<(CopyId, StagedCopy)> = VecDeque::new();
        let mut started_any = false;
        while let Some((id, staged)) = self.ready_copies.pop_front() {
            let StagedCopy {
                block,
                target,
                len,
                requested,
            } = staged.clone();
            let ti = target.0 as usize;
            let target_ok = self.nodes[ti].is_serving()
                && !self.nodes[ti].holds(block)
                && self.nodes[ti].free() >= len;
            let holders: Vec<NodeId> = self
                .blockmap
                .replica_nodes(block)
                .iter()
                .copied()
                .filter(|&n| self.nodes[n.0 as usize].is_serving())
                .collect();
            if !target_ok || holders.is_empty() {
                self.copy_load[ti] = self.copy_load[ti].saturating_sub(1);
                self.repair_copies.remove(&id);
                self.completed_copies.push(CopyStats {
                    id,
                    block,
                    source: holders.first().copied().unwrap_or(target),
                    target,
                    started: requested,
                    finished: now,
                    succeeded: false,
                });
                continue;
            }
            let source = holders
                .into_iter()
                .filter(|&n| self.copy_streams[n.0 as usize] < cap)
                .min_by_key(|&n| (self.copy_streams[n.0 as usize], self.node_load(n), n));
            let Some(source) = source else {
                remaining.push_back((id, staged)); // wait for a stream
                continue;
            };
            let si = source.0 as usize;
            self.copy_streams[si] += 1;
            self.copy_load[si] += 1;
            let mut resources = vec![
                self.node_disk[si],
                self.node_nic[si],
                self.node_nic[ti],
                self.node_disk[ti],
            ];
            if self.topology.crosses_racks(source, target) {
                resources.push(self.rack_uplink[self.topology.rack_of(source).0 as usize]);
                resources.push(self.rack_uplink[self.topology.rack_of(target).0 as usize]);
            }
            let flow = self.net.start(now, len, resources);
            trace!(
                self.telemetry,
                now,
                Tel::CopyDispatched {
                    copy: id.0,
                    block: block.0,
                    source: source.0,
                    target: target.0,
                }
            );
            self.telemetry.counter_add("hdfs.copies_dispatched", 1);
            self.transfers.insert(
                flow,
                Transfer::Copy {
                    copy: id,
                    block,
                    source,
                    target,
                    len,
                    started: requested,
                },
            );
            started_any = true;
        }
        self.ready_copies = remaining;
        if started_any {
            self.resync_flow_events();
        }
    }

    /// Raise `block`'s replica count by `extra`, letting the placement
    /// policy choose targets. Returns the copy handles actually started.
    pub fn add_replicas(&mut self, block: BlockId, extra: usize) -> Vec<CopyId> {
        let Some(info) = self.namespace.block(block).copied() else {
            return Vec::new();
        };
        let locs = self.blockmap.replica_nodes(block);
        let racks: Vec<RackId> = locs.iter().map(|&n| self.topology.rack_of(n)).collect();
        let views = self.node_views(Some(block), Some(info.file));
        let ctx = PlacementContext {
            views: &views,
            replica_locations: locs,
            replica_racks: &racks,
            default_replication: self.cfg.default_replication,
            writer: None,
            block_len: info.len,
        };
        let targets = self.policy.choose_targets(&ctx, extra);
        targets
            .into_iter()
            .filter_map(|t| self.add_replica_to(block, t))
            .collect()
    }

    /// Drop one replica of `block` from `node` (instant: deletes are
    /// metadata operations).
    pub fn remove_replica(&mut self, block: BlockId, node: NodeId) -> bool {
        let len = self.block_len_or_zero(block);
        if self.nodes[node.0 as usize].remove_block(block, len) {
            self.blockmap.remove(block, node);
            self.latent_corrupt.remove(&(block, node));
            self.mark_block_dirty(block);
            if self.blockmap.replica_count(block) == 0 {
                self.note_zero_replicas(block);
            }
            true
        } else {
            false
        }
    }

    /// Lower `block`'s replica count by `count`, letting the policy pick
    /// victims. Returns how many replicas were actually removed.
    pub fn remove_replicas(&mut self, block: BlockId, count: usize) -> usize {
        let Some(info) = self.namespace.block(block).copied() else {
            return 0;
        };
        let locs = self.blockmap.replica_nodes(block);
        let racks: Vec<RackId> = locs.iter().map(|&n| self.topology.rack_of(n)).collect();
        let views = self.node_views(Some(block), Some(info.file));
        let ctx = PlacementContext {
            views: &views,
            replica_locations: locs,
            replica_racks: &racks,
            default_replication: self.cfg.default_replication,
            writer: None,
            block_len: info.len,
        };
        let victims = self.policy.choose_removals(&ctx, count);
        victims
            .into_iter()
            .filter(|&v| self.remove_replica(block, v))
            .count()
    }

    /// Set the target replication of a whole file: adds copies or removes
    /// excess per block. Returns the started copy handles.
    pub fn set_file_replication(&mut self, file: FileId, r: usize) -> Vec<CopyId> {
        let Some(meta) = self.namespace.file_mut(file) else {
            return Vec::new();
        };
        meta.mode = StorageMode::Replicated { replication: r };
        let blocks = meta.blocks.clone();
        let path = meta.path.clone();
        self.mark_dirty(file);
        let mut copies = Vec::new();
        for b in blocks {
            self.blockmap.set_target(b, r);
            let have = self.blockmap.replica_count(b);
            if have < r {
                copies.extend(self.add_replicas(b, r - have));
            } else if have > r {
                self.remove_replicas(b, have - r);
            }
        }
        let now = self.now();
        self.audit
            .file_op(now, Endpoint::Client(ClientId(0)), "setReplication", &path);
        copies
    }

    /// Place a parity block for `file` via the policy and store it
    /// instantly (the byte-level encode cost is the erasure crate's
    /// domain; the storage and placement effects are modelled here).
    pub fn place_parity_block(
        &mut self,
        file: FileId,
        index: u32,
        len: Bytes,
    ) -> Option<(BlockId, NodeId)> {
        let block = self.namespace.allocate_parity_block(file, index, len);
        self.blockmap.set_target(block, 1);
        self.mark_dirty(file);
        let views = self.node_views(Some(block), Some(file));
        let ctx = PlacementContext {
            views: &views,
            replica_locations: &[],
            replica_racks: &[],
            default_replication: self.cfg.default_replication,
            writer: None,
            block_len: len,
        };
        let target = self.policy.choose_parity_target(&ctx)?;
        if self.store_replica(block, target, len) {
            Some((block, target))
        } else {
            None
        }
    }

    /// Mark a file encoded (replication 1 + parities). The caller (ERMS
    /// manager) supplies the parity blocks it placed.
    pub fn mark_encoded(&mut self, file: FileId, parity_blocks: Vec<BlockId>) {
        if let Some(meta) = self.namespace.file_mut(file) {
            meta.mode = StorageMode::Encoded { parity_blocks };
            let data_blocks = meta.blocks.clone();
            // encoded files keep exactly one replica per data block
            for b in data_blocks {
                self.blockmap.set_target(b, 1);
            }
            self.mark_dirty(file);
        }
    }

    /// Undo encoding: drop the parity blocks and return the file to
    /// `replication`-way storage (the caller then restores replicas with
    /// [`ClusterSim::set_file_replication`], which moves real bytes).
    pub fn mark_decoded(&mut self, file: FileId, replication: usize) {
        let Some(meta) = self.namespace.file_mut(file) else {
            return;
        };
        let parities =
            match std::mem::replace(&mut meta.mode, StorageMode::Replicated { replication }) {
                StorageMode::Encoded { parity_blocks } => parity_blocks,
                StorageMode::Replicated { .. } => Vec::new(),
            };
        let data_blocks = meta.blocks.clone();
        for b in data_blocks {
            self.blockmap.set_target(b, replication);
        }
        self.mark_dirty(file);
        for p in parities {
            let len = self.block_len_or_zero(p);
            for n in self.blockmap.replica_nodes(p) {
                self.nodes[n.0 as usize].remove_block(p, len);
            }
            self.blockmap.drop_block(p);
            self.namespace.forget_block(p);
            self.durability.forget(p.0);
            for stash in self.retained.values_mut() {
                stash.retain(|&(rb, _)| rb != p);
            }
            self.latent_corrupt.retain(|&(lb, _), _| lb != p);
            self.corrupt_pending_repair.remove(&p);
        }
    }

    // ------------------------------------------------------------------
    // node lifecycle

    /// Designate nodes as the standby pool and power them off. Their data
    /// (if any) is dropped — ERMS only parks *extra* replicas there. A
    /// node whose power-off would orphan a last replica is skipped (and
    /// left out of the pool).
    pub fn designate_standby(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            self.standby_pool[n.0 as usize] = true;
            if self.power_off(n).is_err() {
                self.standby_pool[n.0 as usize] = false;
            }
        }
    }

    /// Power a standby node off (drops its blocks from the block map).
    ///
    /// Refuses — and changes nothing — when the node holds the last live
    /// replica of any block; the would-be-orphaned blocks are returned so
    /// the caller can re-replicate (e.g. via
    /// [`ClusterSim::decommission`]) and retry.
    pub fn power_off(&mut self, n: NodeId) -> Result<(), Vec<BlockId>> {
        let ni = n.0 as usize;
        if self.nodes[ni].state == NodeState::Dead {
            return Ok(());
        }
        let orphaned: Vec<BlockId> = self.nodes[ni]
            .blocks()
            .filter(|&b| self.blockmap.replica_count(b) <= 1)
            .collect();
        if !orphaned.is_empty() {
            return Err(orphaned);
        }
        // leave service *before* failing transfers (see kill_node)
        for b in self.nodes[ni].clear() {
            self.blockmap.remove(b, n);
            self.mark_block_dirty(b);
        }
        // the powered-off disk is parked, not preserved: any latent
        // corruption it carried leaves with the blocks
        self.latent_corrupt.retain(|&(_, ln), _| ln != n);
        self.nodes[ni].state = NodeState::Standby;
        self.apply_node_capacity(n);
        self.fail_node_transfers(n, false);
        self.resync_flow_events();
        let now = self.now();
        trace!(
            self.telemetry,
            now,
            Tel::StandbyPower {
                node: n.0,
                on: false,
            }
        );
        Ok(())
    }

    /// Commission (boot) a standby node; it starts serving after the
    /// configured boot time. Returns false if the node isn't standby.
    pub fn commission(&mut self, n: NodeId) -> bool {
        if self.nodes[n.0 as usize].state != NodeState::Standby {
            return false;
        }
        let at = self.now() + self.cfg.standby_boot_time;
        self.queue.schedule(at, Ev::NodeBooted(n));
        true
    }

    /// Begin a graceful decommission of `n`: start one extra copy of
    /// every block it holds (targets chosen by the placement policy,
    /// which never reuses a holder). Once the returned copies complete,
    /// the node can be powered off with no replication deficit — the
    /// orderly path, versus [`ClusterSim::kill_node`]'s crash.
    pub fn decommission(&mut self, n: NodeId) -> Vec<CopyId> {
        let blocks: Vec<BlockId> = self.nodes[n.0 as usize].blocks().collect();
        let mut copies = Vec::new();
        for b in blocks {
            copies.extend(self.add_replicas(b, 1));
        }
        copies
    }

    /// Kill a node permanently: its disk (including anything it retained
    /// across an earlier crash) is destroyed, transfers failed, queued
    /// readers retried. Returns the blocks that lost a replica but
    /// survive elsewhere, and the blocks whose last live replica died.
    pub fn kill_node(&mut self, n: NodeId) -> (Vec<BlockId>, Vec<BlockId>) {
        let ni = n.0 as usize;
        // leave service *before* failing transfers: the retried reads
        // re-resolve replicas and must not land back on this node
        self.nodes[ni].clear();
        self.nodes[ni].state = NodeState::Dead;
        let (degraded, lost) = self.blockmap.remove_node(n);
        let stash = self.retained.remove(&n).unwrap_or_default();
        // the disk is destroyed: its latent corruption dies with it
        self.latent_corrupt.retain(|&(_, ln), _| ln != n);
        self.apply_node_capacity(n);
        self.fail_node_transfers(n, true);
        self.resync_flow_events();
        for &b in &lost {
            self.note_zero_replicas(b);
        }
        // blocks that only survived on this node's crashed disk die too
        for (b, _) in stash {
            if self.blockmap.replica_count(b) == 0 && self.namespace.block(b).is_some() {
                self.note_zero_replicas(b);
            }
        }
        for &b in degraded.iter().chain(lost.iter()) {
            self.mark_block_dirty(b);
        }
        (degraded, lost)
    }

    /// Crash a node: it stops serving and its replicas leave the block
    /// map, but the disk contents survive the outage — a later
    /// [`ClusterSim::restart_node`] block-reports them back. This is the
    /// MTBF/MTTR churn path; [`ClusterSim::kill_node`] is the permanent
    /// one. Returns false when the node is already down.
    pub fn crash_node(&mut self, n: NodeId) -> bool {
        let ni = n.0 as usize;
        if self.nodes[ni].state == NodeState::Dead {
            return false;
        }
        let on_disk: Vec<BlockId> = self.nodes[ni].blocks().collect();
        let stash: Vec<(BlockId, Bytes)> = on_disk
            .iter()
            .map(|&b| (b, self.block_len_or_zero(b)))
            .collect();
        // leave service *before* failing transfers (see kill_node)
        self.nodes[ni].clear();
        self.nodes[ni].state = NodeState::Dead;
        if !stash.is_empty() {
            self.retained.insert(n, stash);
        }
        let (degraded, lost) = self.blockmap.remove_node(n);
        self.apply_node_capacity(n);
        self.fail_node_transfers(n, true);
        self.resync_flow_events();
        for &b in &lost {
            self.note_zero_replicas(b);
        }
        for &b in degraded.iter().chain(lost.iter()) {
            self.mark_block_dirty(b);
        }
        true
    }

    /// Restart a crashed node. It rejoins serving immediately and its
    /// block report reconciles the retained replicas: blocks still known
    /// to the namespace re-enter the block map (possibly over-replicating
    /// — [`ClusterSim::trim_over_replicated`] cleans up), stale ones
    /// (deleted while the node was down) are discarded. Returns the
    /// number of replicas re-admitted, or `None` if the node was not
    /// down.
    pub fn restart_node(&mut self, n: NodeId) -> Option<usize> {
        let ni = n.0 as usize;
        if self.nodes[ni].state != NodeState::Dead {
            return None;
        }
        let report = self.retained.remove(&n).unwrap_or_default();
        self.nodes[ni].state = NodeState::Active;
        self.apply_node_capacity(n);
        let mut readmitted = 0;
        for (b, len) in report {
            if self.namespace.block(b).is_none() {
                continue; // stale: deleted during the outage
            }
            let was_dark = self.blockmap.replica_count(b) == 0;
            if self.nodes[ni].add_block(b, len) {
                self.blockmap.add(b, n);
                self.mark_block_dirty(b);
                readmitted += 1;
                if was_dark {
                    self.note_replica_restored(b);
                }
            }
        }
        self.resync_flow_events();
        Some(readmitted)
    }

    /// Fail a rack's shared uplink: every cross-rack flow through it
    /// stalls (rate 0) until [`ClusterSim::restore_rack_uplink`]. Returns
    /// false if it was already down.
    pub fn fail_rack_uplink(&mut self, r: RackId) -> bool {
        let ri = r.0 as usize;
        if self.rack_down[ri] {
            return false;
        }
        self.rack_down[ri] = true;
        let now = self.now();
        self.net
            .set_capacity(now, self.rack_uplink[ri], Bandwidth::ZERO);
        self.resync_flow_events();
        true
    }

    /// Bring a failed rack uplink back at its configured capacity;
    /// stalled flows resume. Returns false if it was not down.
    pub fn restore_rack_uplink(&mut self, r: RackId) -> bool {
        let ri = r.0 as usize;
        if !self.rack_down[ri] {
            return false;
        }
        self.rack_down[ri] = false;
        let now = self.now();
        self.net
            .set_capacity(now, self.rack_uplink[ri], self.cfg.rack_uplink);
        self.resync_flow_events();
        true
    }

    /// Begin a straggler episode: the node keeps serving but its disk
    /// and NIC run at `factor` (clamped to [0.01, 1.0]) of their
    /// configured rates.
    pub fn set_node_slowdown(&mut self, n: NodeId, factor: f64) {
        self.slowdown[n.0 as usize] = factor.clamp(0.01, 1.0);
        self.apply_node_capacity(n);
        self.resync_flow_events();
    }

    /// End a straggler episode (restore full service rate).
    pub fn clear_node_slowdown(&mut self, n: NodeId) {
        self.set_node_slowdown(n, 1.0);
    }

    /// Set a node's disk/NIC capacity from its state and slowdown
    /// factor. All state transitions funnel through this.
    fn apply_node_capacity(&mut self, n: NodeId) {
        let ni = n.0 as usize;
        let now = self.now();
        let (disk, nic) = if self.nodes[ni].is_serving() {
            let f = self.slowdown[ni];
            (
                Bandwidth(self.cfg.disk_bandwidth.bytes_per_sec() * f),
                Bandwidth(self.cfg.nic_bandwidth.bytes_per_sec() * f),
            )
        } else {
            (Bandwidth::ZERO, Bandwidth::ZERO)
        };
        self.net.set_capacity(now, self.node_disk[ni], disk);
        self.net.set_capacity(now, self.node_nic[ni], nic);
    }

    /// The last live replica of `block` is gone: if a crashed disk still
    /// retains a copy (or the block belongs to an encoded file, whose
    /// stripe may be reconstructable) this opens an unavailability
    /// window; otherwise it is a permanent loss. Parity blocks carry no
    /// client-visible data, so they never open windows.
    fn note_zero_replicas(&mut self, block: BlockId) {
        let Some(info) = self.namespace.block(block).copied() else {
            return;
        };
        if info.is_parity {
            return;
        }
        let now = self.now();
        let encoded = self
            .namespace
            .file(info.file)
            .is_some_and(|f| f.is_encoded());
        // a corrupt retained copy cannot bring the data back — only
        // clean stashes count toward recoverability, so loss is declared
        // exactly when every copy is dead-or-corrupt
        let clean_retained = self
            .retained
            .iter()
            .filter(|&(&n, stash)| {
                stash.iter().any(|&(b, _)| b == block)
                    && !self.latent_corrupt.contains_key(&(block, n))
            })
            .count() as u64;
        if encoded || clean_retained > 0 {
            self.durability.mark_unavailable(block.0, now);
        } else if !self.durability.is_lost(block.0) {
            self.durability.mark_lost(block.0, now);
            trace!(
                self.telemetry,
                now,
                Tel::DataLoss {
                    block: block.0,
                    live_replicas: 0,
                    clean_retained,
                }
            );
            self.telemetry.counter_add("hdfs.data_loss_events", 1);
        }
    }

    /// A replica of `block` is live again; closes any open window.
    fn note_replica_restored(&mut self, block: BlockId) {
        let now = self.now();
        self.durability.mark_available(block.0, now);
    }

    // ------------------------------------------------------------------
    // silent corruption: injection, detection, quarantine, scrubbing

    /// Silently corrupt one replica (or parity shard) held by `node`.
    /// `pick` seeds the deterministic victim choice among the node's
    /// blocks; with `prefer_parity` the victim is drawn from the node's
    /// parity shards when it holds any. The copy keeps serving — nothing
    /// notices until a read, a repair copy or the scrubber checksums it.
    /// Returns false when the node is down or holds nothing.
    pub fn corrupt_replica(&mut self, node: NodeId, pick: u64, prefer_parity: bool) -> bool {
        let ni = node.0 as usize;
        if !self.nodes[ni].is_serving() {
            return false;
        }
        let all: Vec<BlockId> = self.nodes[ni].blocks().collect();
        if all.is_empty() {
            return false;
        }
        let parities: Vec<BlockId> = all
            .iter()
            .copied()
            .filter(|&b| {
                self.namespace
                    .block(b)
                    .map(|i| i.is_parity)
                    .unwrap_or(false)
            })
            .collect();
        let pool = if prefer_parity && !parities.is_empty() {
            parities
        } else {
            all
        };
        let victim = pool[(pick % pool.len() as u64) as usize];
        if self.latent_corrupt.contains_key(&(victim, node)) {
            return false; // already rotten; flipping more bits changes nothing
        }
        let now = self.now();
        self.latent_corrupt.insert((victim, node), now);
        let kind = if self
            .namespace
            .block(victim)
            .map(|i| i.is_parity)
            .unwrap_or(false)
        {
            "shard"
        } else {
            "replica"
        };
        trace!(
            self.telemetry,
            now,
            Tel::CorruptionInjected {
                block: victim.0,
                node: node.0,
                kind: kind.to_string(),
            }
        );
        self.telemetry.counter_add("hdfs.corruptions_injected", 1);
        true
    }

    /// Crash `n` mid-write: like [`ClusterSim::crash_node`], but every
    /// block that was landing on the node through an in-flight transfer
    /// (write pipeline, replica copy or reconstruction) is torn — the
    /// partial bytes survive on the crashed disk and block-report back
    /// on restart as a latently corrupt replica. Returns false when the
    /// node is already down.
    pub fn crash_node_torn(&mut self, n: NodeId) -> bool {
        let torn: Vec<(BlockId, Bytes)> = self
            .transfers
            .values()
            .filter_map(|t| match t {
                Transfer::WriteBlock {
                    block,
                    targets,
                    len,
                    ..
                } if targets.contains(&n) => Some((*block, *len)),
                Transfer::Copy {
                    block, target, len, ..
                } if *target == n => Some((*block, *len)),
                Transfer::Reconstruct {
                    block, target, len, ..
                } if *target == n => Some((*block, *len)),
                _ => None,
            })
            .collect();
        if !self.crash_node(n) {
            return false;
        }
        let now = self.now();
        for (b, len) in torn {
            if self.namespace.block(b).is_none() {
                continue;
            }
            let stash = self.retained.entry(n).or_default();
            if !stash.iter().any(|&(sb, _)| sb == b) {
                stash.push((b, len));
            }
            if self.latent_corrupt.insert((b, n), now).is_none() {
                trace!(
                    self.telemetry,
                    now,
                    Tel::CorruptionInjected {
                        block: b.0,
                        node: n.0,
                        kind: "torn_write".to_string(),
                    }
                );
                self.telemetry.counter_add("hdfs.corruptions_injected", 1);
            }
        }
        true
    }

    /// A checksum just failed on `(block, node)` via `via` ("read",
    /// "scrub" or "copy"): report it, quarantine the copy (drop it from
    /// the map so nothing else is served from it) and queue the block
    /// for repair — unless surviving replicas already meet the target,
    /// in which case the quarantine itself is the repair.
    fn detect_corruption(&mut self, block: BlockId, node: NodeId, via: &str) {
        let Some(injected) = self.latent_corrupt.remove(&(block, node)) else {
            return;
        };
        let now = self.now();
        trace!(
            self.telemetry,
            now,
            Tel::CorruptionDetected {
                block: block.0,
                node: node.0,
                via: via.to_string(),
            }
        );
        self.telemetry.counter_add("hdfs.corruptions_detected", 1);
        self.telemetry.observe(
            "hdfs.corruption_detect_secs",
            now.since(injected).as_secs_f64(),
        );
        trace!(
            self.telemetry,
            now,
            Tel::CorruptQuarantined {
                block: block.0,
                node: node.0,
            }
        );
        self.telemetry
            .counter_add("hdfs.corruptions_quarantined", 1);
        self.corrupt_pending_repair.insert(block);
        self.remove_replica(block, node);
        if self.blockmap.replica_count(block) >= self.block_target(block).max(1) {
            // enough healthy copies remain: quarantining was the repair
            self.note_corruption_repaired(block, "spare");
        }
    }

    /// `block` is back at (or above) its target replica count after a
    /// quarantine: close out the corruption incident.
    fn note_corruption_repaired(&mut self, block: BlockId, via: &str) {
        if self.corrupt_pending_repair.remove(&block) {
            let now = self.now();
            trace!(
                self.telemetry,
                now,
                Tel::CorruptRepaired {
                    block: block.0,
                    via: via.to_string(),
                }
            );
            self.telemetry.counter_add("hdfs.corruptions_repaired", 1);
        }
    }

    /// The replica count `block` should be at: the blockmap target when
    /// set, else the owning file's replication (parities target 1).
    pub fn block_target(&self, block: BlockId) -> usize {
        if let Some(t) = self.blockmap.target(block) {
            return t;
        }
        let ns = &self.namespace;
        ns.block(block)
            .and_then(|i| {
                if i.is_parity {
                    Some(1)
                } else {
                    ns.file(i.file).map(|f| f.replication())
                }
            })
            .unwrap_or(self.cfg.default_replication)
    }

    /// Background scrub sweep: checksum up to `budget` blocks, the
    /// `priority` list first (hot data), then the global cursor order —
    /// every live block id ascending, wrapping around, so successive
    /// budgeted calls cover the whole namespace deterministically.
    /// Every corrupt copy found is quarantined via the detection path.
    /// Returns `(blocks scanned, corrupt copies found)`.
    pub fn scrub(&mut self, budget: usize, priority: &[BlockId]) -> (usize, usize) {
        if budget == 0 {
            return (0, 0);
        }
        let mut scanned = 0usize;
        let mut found = 0usize;
        let mut visited: BTreeSet<BlockId> = BTreeSet::new();
        for &b in priority {
            if scanned >= budget {
                break;
            }
            if self.namespace.block(b).is_none() || !visited.insert(b) {
                continue;
            }
            scanned += 1;
            found += self.verify_block_replicas(b);
        }
        if scanned < budget {
            // cursor order: all live block ids ascending, wrap-around
            let mut ids: Vec<BlockId> = Vec::new();
            for meta in self.namespace.files() {
                ids.extend(meta.blocks.iter().copied());
                if let StorageMode::Encoded { parity_blocks } = &meta.mode {
                    ids.extend(parity_blocks.iter().copied());
                }
            }
            ids.sort_unstable();
            if !ids.is_empty() {
                let start = ids.partition_point(|&b| b.0 < self.scrub_cursor);
                for i in 0..ids.len() {
                    if scanned >= budget {
                        break;
                    }
                    let b = ids[(start + i) % ids.len()];
                    self.scrub_cursor = b.0 + 1;
                    if !visited.insert(b) {
                        continue;
                    }
                    scanned += 1;
                    found += self.verify_block_replicas(b);
                }
            }
        }
        let now = self.now();
        trace!(
            self.telemetry,
            now,
            Tel::ScrubProgress {
                scanned: scanned as u64,
                cursor: self.scrub_cursor,
                found: found as u64,
            }
        );
        self.telemetry
            .counter_add("hdfs.scrub_blocks_scanned", scanned as u64);
        (scanned, found)
    }

    /// Checksum every live replica of `block`; quarantine the corrupt
    /// ones. Returns how many were corrupt.
    fn verify_block_replicas(&mut self, block: BlockId) -> usize {
        let bad: Vec<NodeId> = self
            .blockmap
            .replica_nodes(block)
            .iter()
            .copied()
            .filter(|&n| self.latent_corrupt.contains_key(&(block, n)))
            .collect();
        for n in &bad {
            self.detect_corruption(block, *n, "scrub");
        }
        bad.len()
    }

    /// Blocks quarantined for corruption and still below their target
    /// replica count (the scrubber's repair queue).
    pub fn corrupt_blocks_pending_repair(&self) -> Vec<BlockId> {
        self.corrupt_pending_repair.iter().copied().collect()
    }

    /// Undetected corrupt copies currently in the system (test/metrics
    /// visibility; a real namenode could not know this).
    pub fn latent_corrupt_count(&self) -> usize {
        self.latent_corrupt.len()
    }

    /// Whether `(block, node)` is a latently corrupt copy (undetected).
    pub fn is_replica_corrupt(&self, block: BlockId, node: NodeId) -> bool {
        self.latent_corrupt.contains_key(&(block, node))
    }

    /// Where the background scrub sweep will resume.
    pub fn scrub_cursor(&self) -> u64 {
        self.scrub_cursor
    }

    /// Start copies for every under-replicated block (HDFS's namenode
    /// repair loop, invoked explicitly by the driver or the ERMS
    /// self-healing tick). The copies count as repair traffic.
    ///
    /// Reads the block map's deficit index — O(deficient blocks), not a
    /// scan of every live block. Debug builds cross-check the index
    /// against the brute-force namespace-driven scan on every call.
    pub fn repair_under_replicated(&mut self) -> Vec<CopyId> {
        let want = self.blockmap.under_replicated_indexed();
        #[cfg(debug_assertions)]
        self.assert_deficit_index_consistent();
        let mut out = Vec::new();
        for (b, deficit) in want {
            out.extend(self.add_replicas(b, deficit));
        }
        self.repair_copies.extend(out.iter().copied());
        self.telemetry
            .counter_add("hdfs.repair_copies_started", out.len() as u64);
        out
    }

    /// Remove excess replicas of every over-replicated block (the
    /// namenode's excess-replica chooser) — restarted nodes block-report
    /// replicas the repair loop may have replaced in the meantime.
    /// Returns how many replicas were trimmed. Reads the deficit index,
    /// like [`ClusterSim::repair_under_replicated`].
    pub fn trim_over_replicated(&mut self) -> usize {
        let excess = self.blockmap.over_replicated_indexed();
        let mut trimmed = 0;
        for (b, extra) in excess {
            trimmed += self.remove_replicas(b, extra);
        }
        self.telemetry
            .counter_add("hdfs.replicas_trimmed", trimmed as u64);
        trimmed
    }

    /// Debug-build invariant: the incrementally maintained deficit index
    /// answers exactly what the brute-force scan (with targets derived
    /// from the namespace, as the scans historically did) answers.
    #[cfg(debug_assertions)]
    fn assert_deficit_index_consistent(&self) {
        let ns = &self.namespace;
        let under = self.blockmap.under_replicated(|b| {
            ns.block(b)
                .and_then(|i| ns.file(i.file))
                .map(|f| {
                    if i_is_parity(ns, b) {
                        1
                    } else {
                        f.replication()
                    }
                })
                .unwrap_or(0)
        });
        debug_assert_eq!(
            self.blockmap.under_replicated_indexed(),
            under,
            "deficit index diverged from namespace-driven scan"
        );
        let over = self.blockmap.over_replicated(|b| {
            ns.block(b)
                .and_then(|i| ns.file(i.file))
                .map(|f| {
                    if i_is_parity(ns, b) {
                        1
                    } else {
                        f.replication()
                    }
                })
                .unwrap_or(usize::MAX)
        });
        debug_assert_eq!(
            self.blockmap.over_replicated_indexed(),
            over,
            "excess index diverged from namespace-driven scan"
        );
    }

    /// Rebuild `block` onto `target` by streaming one surviving shard
    /// from each of `sources` — the RS reconstruction data path for
    /// encoded files. Unlike [`ClusterSim::add_replica_to`] this is
    /// *immediate*: it bypasses the replication-monitor staging because
    /// a dark block is the namenode's highest-priority queue. Roughly
    /// `sources.len() × len` bytes cross the network. Completion (and
    /// success) surfaces through [`ClusterSim::drain_completed_copies`].
    pub fn reconstruct_block(
        &mut self,
        block: BlockId,
        sources: &[NodeId],
        target: NodeId,
    ) -> Option<CopyId> {
        let len = self.namespace.block(block)?.len;
        let ti = target.0 as usize;
        if sources.is_empty()
            || self.nodes[ti].holds(block)
            || !self.nodes[ti].is_serving()
            || self.nodes[ti].free() < len
            || sources
                .iter()
                .any(|&s| s == target || !self.nodes[s.0 as usize].is_serving())
        {
            return None;
        }
        let id = CopyId(self.next_copy);
        self.next_copy += 1;
        self.copy_load[ti] += 1;
        let mut resources = vec![self.node_nic[ti], self.node_disk[ti]];
        for &s in sources {
            let si = s.0 as usize;
            self.copy_load[si] += 1;
            resources.push(self.node_disk[si]);
            resources.push(self.node_nic[si]);
            if self.topology.crosses_racks(s, target) {
                resources.push(self.rack_uplink[self.topology.rack_of(s).0 as usize]);
                resources.push(self.rack_uplink[self.topology.rack_of(target).0 as usize]);
            }
        }
        resources.sort_unstable();
        resources.dedup();
        let now = self.now();
        let flow = self.net.start(now, len * sources.len() as Bytes, resources);
        trace!(
            self.telemetry,
            now,
            Tel::ReconstructDispatched {
                copy: id.0,
                block: block.0,
                sources: sources.len() as u64,
                target: target.0,
            }
        );
        self.telemetry
            .counter_add("hdfs.reconstructions_dispatched", 1);
        self.transfers.insert(
            flow,
            Transfer::Reconstruct {
                copy: id,
                block,
                sources: sources.to_vec(),
                target,
                len,
                started: now,
            },
        );
        self.resync_flow_events();
        Some(id)
    }

    fn fail_node_transfers(&mut self, n: NodeId, retry_reads: bool) {
        let now = self.now();
        // cancel flows touching the node
        let affected: Vec<(FlowId, Transfer)> = self
            .transfers
            .iter()
            .filter(|(_, t)| match t {
                Transfer::ReadBlock { node, .. } => *node == n,
                Transfer::Copy { source, target, .. } => *source == n || *target == n,
                Transfer::WriteBlock { targets, .. } => targets.contains(&n),
                Transfer::Reconstruct {
                    sources, target, ..
                } => *target == n || sources.contains(&n),
            })
            .map(|(&f, t)| (f, t.clone()))
            .collect();
        for (flow, t) in affected {
            self.net.remove(now, flow);
            if let Some(ev) = self.flow_events.remove(&flow) {
                self.queue.cancel(ev);
            }
            self.transfers.remove(&flow);
            match t {
                Transfer::ReadBlock { read, .. } => {
                    let _ = retry_reads;
                    // re-resolve the block on another replica
                    self.advance_read(read);
                }
                Transfer::WriteBlock { write, targets, .. } => {
                    for t in targets {
                        self.copy_load[t.0 as usize] =
                            self.copy_load[t.0 as usize].saturating_sub(1);
                    }
                    // restart the block's pipeline with fresh targets
                    self.advance_write(write);
                }
                Transfer::Copy {
                    copy,
                    block,
                    source,
                    target,
                    started,
                    ..
                } => {
                    self.copy_streams[source.0 as usize] =
                        self.copy_streams[source.0 as usize].saturating_sub(1);
                    self.copy_load[source.0 as usize] =
                        self.copy_load[source.0 as usize].saturating_sub(1);
                    self.copy_load[target.0 as usize] =
                        self.copy_load[target.0 as usize].saturating_sub(1);
                    self.repair_copies.remove(&copy);
                    self.completed_copies.push(CopyStats {
                        id: copy,
                        block,
                        source,
                        target,
                        started,
                        finished: now,
                        succeeded: false,
                    });
                }
                Transfer::Reconstruct {
                    copy,
                    block,
                    sources,
                    target,
                    started,
                    ..
                } => {
                    for &s in &sources {
                        self.copy_load[s.0 as usize] =
                            self.copy_load[s.0 as usize].saturating_sub(1);
                    }
                    self.copy_load[target.0 as usize] =
                        self.copy_load[target.0 as usize].saturating_sub(1);
                    self.completed_copies.push(CopyStats {
                        id: copy,
                        block,
                        source: sources.first().copied().unwrap_or(target),
                        target,
                        started,
                        finished: now,
                        succeeded: false,
                    });
                }
            }
        }
        // retry queued sessions elsewhere
        let stale = self.nodes[n.0 as usize].drain_queue();
        for t in stale {
            if let Some(ps) = self.tickets.remove(&t) {
                self.advance_read(ps.read);
            }
        }
    }

    // ------------------------------------------------------------------
    // event loop

    /// Run until the event queue drains (all submitted work finished).
    pub fn run_until_quiescent(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Run events up to and including `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.queue.advance_to(deadline);
        self.net.settle(deadline);
        self.now()
    }

    /// Process one event. Returns false when nothing is pending.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        match ev {
            Ev::BeginRead(id) => self.advance_read(id),
            Ev::NodeBooted(n) => {
                let ni = n.0 as usize;
                if self.nodes[ni].state == NodeState::Standby {
                    self.nodes[ni].state = NodeState::Active;
                    self.apply_node_capacity(n);
                    self.resync_flow_events();
                    trace!(
                        self.telemetry,
                        t,
                        Tel::StandbyPower {
                            node: n.0,
                            on: true
                        }
                    );
                }
            }
            Ev::FlowDone(flow) => self.on_flow_done(t, flow),
            Ev::StartCopy(id) => self.start_staged_copy(id),
            Ev::Timer(token) => self.fired_timers.push((t, token)),
        }
        true
    }

    fn on_flow_done(&mut self, now: SimTime, flow: FlowId) {
        self.flow_events.remove(&flow);
        let Some(transfer) = self.transfers.remove(&flow) else {
            return; // already cancelled
        };
        self.net.remove(now, flow);
        match transfer {
            Transfer::ReadBlock { read, block, node } => {
                let len = self.block_len_or_zero(block);
                let path = self
                    .reads
                    .get(&read)
                    .map(|r| r.path.clone())
                    .unwrap_or_default();
                // free the session; maybe admit a queued reader
                self.admit_next(node);
                if self.latent_corrupt.contains_key(&(block, node)) {
                    // checksum mismatch at the client: the bytes never
                    // count, the copy is quarantined, and the read fails
                    // over to the surviving replicas (advance_read
                    // re-resolves; no holders left ⇒ failed read)
                    self.detect_corruption(block, node, "read");
                    if self.reads.contains_key(&read) {
                        self.advance_read(read);
                    }
                } else {
                    self.audit.block_read(now, block, node, &path, len);
                    // the block-read line shifts the owning file's
                    // per-block demand statistics: re-examine it
                    self.mark_block_dirty(block);
                    if let Some(req) = self.reads.get_mut(&read) {
                        req.bytes_done += len;
                        req.pending_blocks.pop_front();
                        if req.pending_blocks.is_empty() {
                            self.finish_read(read, false);
                        } else {
                            self.advance_read(read);
                        }
                    }
                }
            }
            Transfer::WriteBlock {
                write,
                block,
                targets,
                len,
            } => {
                for &t in &targets {
                    self.copy_load[t.0 as usize] = self.copy_load[t.0 as usize].saturating_sub(1);
                }
                for t in targets {
                    if self.nodes[t.0 as usize].is_serving()
                        && self.nodes[t.0 as usize].add_block(block, len)
                    {
                        self.blockmap.add(block, t);
                    }
                }
                self.mark_block_dirty(block);
                if let Some(req) = self.writes.get_mut(&write) {
                    req.bytes_done += len;
                    req.pending_blocks.pop_front();
                    if req.pending_blocks.is_empty() {
                        self.finish_write(write, false);
                    } else {
                        self.advance_write(write);
                    }
                }
            }
            Transfer::Copy {
                copy,
                block,
                source,
                target,
                len,
                started,
            } => {
                self.copy_streams[source.0 as usize] =
                    self.copy_streams[source.0 as usize].saturating_sub(1);
                self.copy_load[source.0 as usize] =
                    self.copy_load[source.0 as usize].saturating_sub(1);
                self.copy_load[target.0 as usize] =
                    self.copy_load[target.0 as usize].saturating_sub(1);
                // verified repair: the target checksums what it received,
                // so a corrupt source is caught here and never propagates
                // — the copy fails and the rotten source is quarantined
                let source_corrupt = self.latent_corrupt.contains_key(&(block, source));
                if source_corrupt {
                    self.detect_corruption(block, source, "copy");
                }
                let ok = !source_corrupt
                    && self.nodes[target.0 as usize].is_serving()
                    && self.nodes[target.0 as usize].add_block(block, len);
                if ok {
                    self.blockmap.add(block, target);
                    self.mark_block_dirty(block);
                    if self.blockmap.replica_count(block) >= self.block_target(block).max(1) {
                        self.note_corruption_repaired(block, "copy");
                    }
                }
                if self.repair_copies.remove(&copy) && ok {
                    self.durability.add_repair_bytes(len);
                }
                if ok {
                    trace!(
                        self.telemetry,
                        now,
                        Tel::CopyCompleted {
                            copy: copy.0,
                            block: block.0,
                            target: target.0,
                        }
                    );
                    self.telemetry
                        .observe("hdfs.copy_secs", now.since(started).as_secs_f64());
                    self.telemetry.counter_add("hdfs.copies_completed", 1);
                    self.telemetry.counter_add("hdfs.bytes_replicated", len);
                }
                self.completed_copies.push(CopyStats {
                    id: copy,
                    block,
                    source,
                    target,
                    started,
                    finished: now,
                    succeeded: ok,
                });
                // the new replica may unblock queued copies as a source
                self.dispatch_replications();
            }
            Transfer::Reconstruct {
                copy,
                block,
                sources,
                target,
                len,
                started,
            } => {
                for &s in &sources {
                    self.copy_load[s.0 as usize] = self.copy_load[s.0 as usize].saturating_sub(1);
                }
                self.copy_load[target.0 as usize] =
                    self.copy_load[target.0 as usize].saturating_sub(1);
                let was_dark = self.blockmap.replica_count(block) == 0;
                // RS decode verifies the stripe: a corrupt shard among
                // the streamed sources fails the reconstruction and is
                // itself detected and quarantined. Each source streams
                // its shard of this block's stripe (= owning file).
                let stripe_file = self.namespace.block(block).map(|i| i.file);
                let bad_shards: Vec<(BlockId, NodeId)> = sources
                    .iter()
                    .flat_map(|&s| {
                        self.nodes[s.0 as usize]
                            .blocks()
                            .filter(|&sb| {
                                self.namespace.block(sb).map(|i| i.file) == stripe_file
                                    && self.latent_corrupt.contains_key(&(sb, s))
                            })
                            .map(move |sb| (sb, s))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let decode_failed = !bad_shards.is_empty();
                for (sb, sn) in bad_shards {
                    self.detect_corruption(sb, sn, "copy");
                }
                let ok = !decode_failed
                    && self.nodes[target.0 as usize].is_serving()
                    && self.nodes[target.0 as usize].add_block(block, len);
                if ok {
                    self.blockmap.add(block, target);
                    self.mark_block_dirty(block);
                    self.note_corruption_repaired(block, "reconstruct");
                    self.durability
                        .add_repair_bytes(len * sources.len() as Bytes);
                    if was_dark {
                        self.note_replica_restored(block);
                    }
                    trace!(
                        self.telemetry,
                        now,
                        Tel::CopyCompleted {
                            copy: copy.0,
                            block: block.0,
                            target: target.0,
                        }
                    );
                    self.telemetry
                        .observe("hdfs.reconstruct_secs", now.since(started).as_secs_f64());
                    self.telemetry
                        .counter_add("hdfs.reconstructions_completed", 1);
                }
                self.completed_copies.push(CopyStats {
                    id: copy,
                    block,
                    source: sources.first().copied().unwrap_or(target),
                    target,
                    started,
                    finished: now,
                    succeeded: ok,
                });
                self.dispatch_replications();
            }
        }
        self.resync_flow_events();
    }

    fn admit_next(&mut self, node: NodeId) {
        loop {
            match self.nodes[node.0 as usize].release_session() {
                None => break,
                Some(t) => {
                    if let Some(ps) = self.tickets.remove(&t) {
                        self.start_block_flow(ps.read, ps.block, ps.node);
                        break;
                    }
                    // stale ticket consumed a slot; release again
                }
            }
        }
    }

    /// Reschedule each active flow's completion event after rates change.
    fn resync_flow_events(&mut self) {
        let now = self.now();
        let flows: Vec<FlowId> = self.transfers.keys().copied().collect();
        for f in flows {
            if let Some(eta) = self.net.eta(f) {
                let at = eta.max(now);
                if let Some(old) = self.flow_events.remove(&f) {
                    self.queue.cancel(old);
                }
                let ev = self.queue.schedule(at, Ev::FlowDone(f));
                self.flow_events.insert(f, ev);
            }
        }
    }
}

#[cfg_attr(not(debug_assertions), allow(dead_code))]
fn i_is_parity(ns: &Namespace, b: BlockId) -> bool {
    ns.block(b).map(|i| i.is_parity).unwrap_or(false)
}

// ----------------------------------------------------------------------
// checkpoint/restore
//
// The cluster's dynamic state — everything above — round-trips through
// the `checkpoint` crate's Value tree. Static wiring (config, topology,
// placement policy, telemetry sink, the constructor-ordered disk/NIC/
// uplink resource ids) is NOT captured: restore hydrates a freshly
// constructed `ClusterSim` built from the same config, then overwrites
// the dynamic fields. Crucially the event queue is restored verbatim
// (ids, seq counter and all) and `resync_flow_events` is NOT run — it
// would cancel and reschedule flow completions under fresh event ids,
// breaking bit-identical resume.

mod ck {
    //! Value codecs for the cluster's private types.
    use super::*;
    use checkpoint::codec::{self as c, MapBuilder};
    use checkpoint::{CheckpointError, Value};

    pub(super) fn endpoint(e: Endpoint) -> Value {
        match e {
            Endpoint::Node(n) => MapBuilder::new()
                .str("k", "node")
                .u64("id", u64::from(n.0))
                .build(),
            Endpoint::Client(cl) => MapBuilder::new()
                .str("k", "client")
                .u64("id", u64::from(cl.0))
                .build(),
        }
    }

    pub(super) fn endpoint_back(v: &Value) -> Result<Endpoint, CheckpointError> {
        match c::get_str(v, "k")? {
            "node" => Ok(Endpoint::Node(NodeId(c::get_u32(v, "id")?))),
            "client" => Ok(Endpoint::Client(ClientId(c::get_u32(v, "id")?))),
            other => Err(CheckpointError::Corrupt(format!(
                "unknown endpoint kind `{other}`"
            ))),
        }
    }

    pub(super) fn ev(e: &Ev) -> Value {
        let (k, id) = match e {
            Ev::BeginRead(r) => ("read", r.0),
            Ev::FlowDone(f) => ("flow", f.0),
            Ev::NodeBooted(n) => ("boot", u64::from(n.0)),
            Ev::StartCopy(cp) => ("copy", cp.0),
            Ev::Timer(t) => ("timer", *t),
        };
        MapBuilder::new().str("k", k).u64("id", id).build()
    }

    pub(super) fn ev_back(v: &Value) -> Result<Ev, CheckpointError> {
        let id = c::get_u64(v, "id")?;
        match c::get_str(v, "k")? {
            "read" => Ok(Ev::BeginRead(ReadId(id))),
            "flow" => Ok(Ev::FlowDone(FlowId(id))),
            "boot" => Ok(Ev::NodeBooted(NodeId(c::get_u32(v, "id")?))),
            "copy" => Ok(Ev::StartCopy(CopyId(id))),
            "timer" => Ok(Ev::Timer(id)),
            other => Err(CheckpointError::Corrupt(format!(
                "unknown event kind `{other}`"
            ))),
        }
    }

    pub(super) fn nodes(ns: &[NodeId]) -> Value {
        Value::Seq(ns.iter().map(|n| Value::U64(u64::from(n.0))).collect())
    }

    pub(super) fn nodes_back(v: &Value, field: &str) -> Result<Vec<NodeId>, CheckpointError> {
        c::as_seq(v, field)?
            .iter()
            .map(|x| c::as_u64(x, field).map(|n| NodeId(n as u32)))
            .collect()
    }

    pub(super) fn transfer(t: &Transfer) -> Value {
        match t {
            Transfer::ReadBlock { read, block, node } => MapBuilder::new()
                .str("k", "read")
                .u64("read", read.0)
                .u64("block", block.0)
                .u64("node", u64::from(node.0))
                .build(),
            Transfer::WriteBlock {
                write,
                block,
                targets,
                len,
            } => MapBuilder::new()
                .str("k", "write")
                .u64("write", write.0)
                .u64("block", block.0)
                .put("targets", nodes(targets))
                .u64("len", *len)
                .build(),
            Transfer::Copy {
                copy,
                block,
                source,
                target,
                len,
                started,
            } => MapBuilder::new()
                .str("k", "copy")
                .u64("copy", copy.0)
                .u64("block", block.0)
                .u64("source", u64::from(source.0))
                .u64("target", u64::from(target.0))
                .u64("len", *len)
                .time("started", *started)
                .build(),
            Transfer::Reconstruct {
                copy,
                block,
                sources,
                target,
                len,
                started,
            } => MapBuilder::new()
                .str("k", "reconstruct")
                .u64("copy", copy.0)
                .u64("block", block.0)
                .put("sources", nodes(sources))
                .u64("target", u64::from(target.0))
                .u64("len", *len)
                .time("started", *started)
                .build(),
        }
    }

    pub(super) fn transfer_back(v: &Value) -> Result<Transfer, CheckpointError> {
        match c::get_str(v, "k")? {
            "read" => Ok(Transfer::ReadBlock {
                read: ReadId(c::get_u64(v, "read")?),
                block: BlockId(c::get_u64(v, "block")?),
                node: NodeId(c::get_u32(v, "node")?),
            }),
            "write" => Ok(Transfer::WriteBlock {
                write: WriteId(c::get_u64(v, "write")?),
                block: BlockId(c::get_u64(v, "block")?),
                targets: nodes_back(c::get(v, "targets")?, "targets")?,
                len: c::get_u64(v, "len")?,
            }),
            "copy" => Ok(Transfer::Copy {
                copy: CopyId(c::get_u64(v, "copy")?),
                block: BlockId(c::get_u64(v, "block")?),
                source: NodeId(c::get_u32(v, "source")?),
                target: NodeId(c::get_u32(v, "target")?),
                len: c::get_u64(v, "len")?,
                started: c::get_time(v, "started")?,
            }),
            "reconstruct" => Ok(Transfer::Reconstruct {
                copy: CopyId(c::get_u64(v, "copy")?),
                block: BlockId(c::get_u64(v, "block")?),
                sources: nodes_back(c::get(v, "sources")?, "sources")?,
                target: NodeId(c::get_u32(v, "target")?),
                len: c::get_u64(v, "len")?,
                started: c::get_time(v, "started")?,
            }),
            other => Err(CheckpointError::Corrupt(format!(
                "unknown transfer kind `{other}`"
            ))),
        }
    }

    pub(super) fn read_req(r: &ReadReq) -> Value {
        MapBuilder::new()
            .u64("id", r.id.0)
            .put("reader", endpoint(r.reader))
            .str("path", &r.path)
            .put(
                "pending_blocks",
                Value::Seq(r.pending_blocks.iter().map(|b| Value::U64(b.0)).collect()),
            )
            .u64("bytes_done", r.bytes_done)
            .time("started", r.started)
            .u64("node_local", u64::from(r.node_local))
            .u64("rack_local", u64::from(r.rack_local))
            .u64("remote", u64::from(r.remote))
            .bool("failed", r.failed)
            .build()
    }

    pub(super) fn read_req_back(v: &Value) -> Result<ReadReq, CheckpointError> {
        Ok(ReadReq {
            id: ReadId(c::get_u64(v, "id")?),
            reader: endpoint_back(c::get(v, "reader")?)?,
            path: c::get_str(v, "path")?.to_string(),
            pending_blocks: c::get_seq(v, "pending_blocks")?
                .iter()
                .map(|x| c::as_u64(x, "pending_blocks[]").map(BlockId))
                .collect::<Result<_, _>>()?,
            bytes_done: c::get_u64(v, "bytes_done")?,
            started: c::get_time(v, "started")?,
            node_local: c::get_u32(v, "node_local")?,
            rack_local: c::get_u32(v, "rack_local")?,
            remote: c::get_u32(v, "remote")?,
            failed: c::get_bool(v, "failed")?,
        })
    }

    pub(super) fn write_req(w: &WriteReq) -> Value {
        MapBuilder::new()
            .u64("id", w.id.0)
            .put("writer", endpoint(w.writer))
            .u64("file", w.file.0)
            .str("path", &w.path)
            .u64("replication", w.replication as u64)
            .put(
                "pending_blocks",
                Value::Seq(w.pending_blocks.iter().map(|b| Value::U64(b.0)).collect()),
            )
            .u64("bytes_done", w.bytes_done)
            .time("started", w.started)
            .bool("failed", w.failed)
            .build()
    }

    pub(super) fn write_req_back(v: &Value) -> Result<WriteReq, CheckpointError> {
        Ok(WriteReq {
            id: WriteId(c::get_u64(v, "id")?),
            writer: endpoint_back(c::get(v, "writer")?)?,
            file: FileId(c::get_u64(v, "file")?),
            path: c::get_str(v, "path")?.to_string(),
            replication: c::get_usize(v, "replication")?,
            pending_blocks: c::get_seq(v, "pending_blocks")?
                .iter()
                .map(|x| c::as_u64(x, "pending_blocks[]").map(BlockId))
                .collect::<Result<_, _>>()?,
            bytes_done: c::get_u64(v, "bytes_done")?,
            started: c::get_time(v, "started")?,
            failed: c::get_bool(v, "failed")?,
        })
    }

    pub(super) fn staged(s: &StagedCopy) -> Value {
        MapBuilder::new()
            .u64("block", s.block.0)
            .u64("target", u64::from(s.target.0))
            .u64("len", s.len)
            .time("requested", s.requested)
            .build()
    }

    pub(super) fn staged_back(v: &Value) -> Result<StagedCopy, CheckpointError> {
        Ok(StagedCopy {
            block: BlockId(c::get_u64(v, "block")?),
            target: NodeId(c::get_u32(v, "target")?),
            len: c::get_u64(v, "len")?,
            requested: c::get_time(v, "requested")?,
        })
    }

    pub(super) fn read_stats(s: &ReadStats) -> Value {
        MapBuilder::new()
            .u64("id", s.id.0)
            .str("path", &s.path)
            .put("reader", endpoint(s.reader))
            .u64("bytes", s.bytes)
            .time("started", s.started)
            .time("finished", s.finished)
            .u64("node_local", u64::from(s.node_local_blocks))
            .u64("rack_local", u64::from(s.rack_local_blocks))
            .u64("remote", u64::from(s.remote_blocks))
            .bool("failed", s.failed)
            .build()
    }

    pub(super) fn read_stats_back(v: &Value) -> Result<ReadStats, CheckpointError> {
        Ok(ReadStats {
            id: ReadId(c::get_u64(v, "id")?),
            path: c::get_str(v, "path")?.to_string(),
            reader: endpoint_back(c::get(v, "reader")?)?,
            bytes: c::get_u64(v, "bytes")?,
            started: c::get_time(v, "started")?,
            finished: c::get_time(v, "finished")?,
            node_local_blocks: c::get_u32(v, "node_local")?,
            rack_local_blocks: c::get_u32(v, "rack_local")?,
            remote_blocks: c::get_u32(v, "remote")?,
            failed: c::get_bool(v, "failed")?,
        })
    }

    pub(super) fn write_stats(s: &WriteStats) -> Value {
        MapBuilder::new()
            .u64("id", s.id.0)
            .str("path", &s.path)
            .u64("bytes", s.bytes)
            .time("started", s.started)
            .time("finished", s.finished)
            .bool("failed", s.failed)
            .build()
    }

    pub(super) fn write_stats_back(v: &Value) -> Result<WriteStats, CheckpointError> {
        Ok(WriteStats {
            id: WriteId(c::get_u64(v, "id")?),
            path: c::get_str(v, "path")?.to_string(),
            bytes: c::get_u64(v, "bytes")?,
            started: c::get_time(v, "started")?,
            finished: c::get_time(v, "finished")?,
            failed: c::get_bool(v, "failed")?,
        })
    }

    pub(super) fn copy_stats(s: &CopyStats) -> Value {
        MapBuilder::new()
            .u64("id", s.id.0)
            .u64("block", s.block.0)
            .u64("source", u64::from(s.source.0))
            .u64("target", u64::from(s.target.0))
            .time("started", s.started)
            .time("finished", s.finished)
            .bool("succeeded", s.succeeded)
            .build()
    }

    pub(super) fn copy_stats_back(v: &Value) -> Result<CopyStats, CheckpointError> {
        Ok(CopyStats {
            id: CopyId(c::get_u64(v, "id")?),
            block: BlockId(c::get_u64(v, "block")?),
            source: NodeId(c::get_u32(v, "source")?),
            target: NodeId(c::get_u32(v, "target")?),
            started: c::get_time(v, "started")?,
            finished: c::get_time(v, "finished")?,
            succeeded: c::get_bool(v, "succeeded")?,
        })
    }

    pub(super) fn durability(d: &simcore::stats::DurabilityState) -> Value {
        MapBuilder::new()
            .put(
                "open",
                Value::Seq(
                    d.open
                        .iter()
                        .map(|&(k, s)| Value::Seq(vec![Value::U64(k), Value::U64(s)]))
                        .collect(),
                ),
            )
            .put(
                "windows",
                Value::Seq(
                    d.windows
                        .iter()
                        .map(|&(k, s, e, u)| {
                            Value::Seq(vec![
                                Value::U64(k),
                                Value::U64(s),
                                Value::U64(e),
                                Value::Bool(u),
                            ])
                        })
                        .collect(),
                ),
            )
            .put(
                "lost",
                Value::Seq(
                    d.lost
                        .iter()
                        .map(|&(k, a)| Value::Seq(vec![Value::U64(k), Value::U64(a)]))
                        .collect(),
                ),
            )
            .u64("repair_bytes", d.repair_bytes)
            .build()
    }

    pub(super) fn durability_back(
        v: &Value,
    ) -> Result<simcore::stats::DurabilityState, CheckpointError> {
        let tuple = |x: &Value, want: usize, field: &str| -> Result<Vec<u64>, CheckpointError> {
            let s = c::as_seq(x, field)?;
            if s.len() != want {
                return Err(CheckpointError::Corrupt(format!(
                    "`{field}` entry has {} elements, expected {want}",
                    s.len()
                )));
            }
            s.iter()
                .map(|e| match e {
                    Value::Bool(b) => Ok(u64::from(*b)),
                    other => c::as_u64(other, field),
                })
                .collect()
        };
        Ok(simcore::stats::DurabilityState {
            open: c::get_seq(v, "open")?
                .iter()
                .map(|x| tuple(x, 2, "open").map(|t| (t[0], t[1])))
                .collect::<Result<_, _>>()?,
            windows: c::get_seq(v, "windows")?
                .iter()
                .map(|x| tuple(x, 4, "windows").map(|t| (t[0], t[1], t[2], t[3] != 0)))
                .collect::<Result<_, _>>()?,
            lost: c::get_seq(v, "lost")?
                .iter()
                .map(|x| tuple(x, 2, "lost").map(|t| (t[0], t[1])))
                .collect::<Result<_, _>>()?,
            repair_bytes: c::get_u64(v, "repair_bytes")?,
        })
    }
}

impl checkpoint::Checkpointable for ClusterSim {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{f64_bits, seq_of, MapBuilder};
        use checkpoint::Value;
        let qs = self.queue.snapshot();
        MapBuilder::new()
            .put("namespace", self.namespace.save_state())
            .put("blockmap", self.blockmap.save_state())
            .put("net", self.net.save_state())
            .put("audit", self.audit.save_state())
            .put("nodes", seq_of(self.nodes.iter(), |n| n.save_state()))
            .put(
                "queue",
                MapBuilder::new()
                    .time("now", qs.now)
                    .u64("next_seq", qs.next_seq)
                    .put(
                        "entries",
                        seq_of(qs.entries.iter(), |(at, seq, ev)| {
                            Value::Seq(vec![
                                Value::U64(at.as_nanos()),
                                Value::U64(*seq),
                                ck::ev(ev),
                            ])
                        }),
                    )
                    .build(),
            )
            .put(
                "client_nic",
                seq_of(self.client_nic.iter(), |(cl, r)| {
                    Value::Seq(vec![Value::U64(u64::from(cl.0)), Value::U64(r.0 as u64)])
                }),
            )
            .put("reads", seq_of(self.reads.values(), ck::read_req))
            .u64("next_read", self.next_read)
            .put("writes", seq_of(self.writes.values(), ck::write_req))
            .u64("next_write", self.next_write)
            .put(
                "completed_writes",
                seq_of(self.completed_writes.iter(), ck::write_stats),
            )
            .put(
                "transfers",
                seq_of(self.transfers.iter(), |(f, t)| {
                    Value::Seq(vec![Value::U64(f.0), ck::transfer(t)])
                }),
            )
            .put(
                "flow_events",
                seq_of(self.flow_events.iter(), |(f, ev)| {
                    Value::Seq(vec![Value::U64(f.0), Value::U64(ev.raw())])
                }),
            )
            .put(
                "tickets",
                seq_of(self.tickets.iter(), |(t, ps)| {
                    Value::Seq(vec![
                        Value::U64(*t),
                        Value::U64(ps.read.0),
                        Value::U64(ps.block.0),
                        Value::U64(u64::from(ps.node.0)),
                    ])
                }),
            )
            .u64("next_ticket", self.next_ticket)
            .u64("next_copy", self.next_copy)
            .put(
                "completed_reads",
                seq_of(self.completed_reads.iter(), ck::read_stats),
            )
            .put(
                "completed_copies",
                seq_of(self.completed_copies.iter(), ck::copy_stats),
            )
            .put(
                "fired_timers",
                seq_of(self.fired_timers.iter(), |(at, tok)| {
                    Value::Seq(vec![Value::U64(at.as_nanos()), Value::U64(*tok)])
                }),
            )
            .put(
                "standby_pool",
                Value::Seq(self.standby_pool.iter().map(|&b| Value::Bool(b)).collect()),
            )
            .put(
                "copy_load",
                Value::Seq(
                    self.copy_load
                        .iter()
                        .map(|&x| Value::U64(u64::from(x)))
                        .collect(),
                ),
            )
            .put(
                "staged_copies",
                seq_of(self.staged_copies.iter(), |(id, s)| {
                    Value::Seq(vec![Value::U64(id.0), ck::staged(s)])
                }),
            )
            .put(
                "ready_copies",
                seq_of(self.ready_copies.iter(), |(id, s)| {
                    Value::Seq(vec![Value::U64(id.0), ck::staged(s)])
                }),
            )
            .put(
                "copy_streams",
                Value::Seq(
                    self.copy_streams
                        .iter()
                        .map(|&x| Value::U64(u64::from(x)))
                        .collect(),
                ),
            )
            .put(
                "retained",
                seq_of(self.retained.iter(), |(n, stash)| {
                    Value::Seq(vec![
                        Value::U64(u64::from(n.0)),
                        Value::Seq(
                            stash
                                .iter()
                                .map(|&(b, len)| Value::Seq(vec![Value::U64(b.0), Value::U64(len)]))
                                .collect(),
                        ),
                    ])
                }),
            )
            .put("slowdown", seq_of(self.slowdown.iter().copied(), f64_bits))
            .put(
                "rack_down",
                Value::Seq(self.rack_down.iter().map(|&b| Value::Bool(b)).collect()),
            )
            .put(
                "repair_copies",
                Value::Seq(self.repair_copies.iter().map(|c| Value::U64(c.0)).collect()),
            )
            .put("durability", ck::durability(&self.durability.state()))
            .put(
                "dirty_files",
                Value::Seq(self.dirty_files.iter().map(|f| Value::U64(f.0)).collect()),
            )
            .put(
                "deleted_paths",
                Value::Seq(
                    self.deleted_paths
                        .iter()
                        .map(|p| Value::Str(p.clone()))
                        .collect(),
                ),
            )
            .put(
                "latent_corrupt",
                Value::Seq(
                    self.latent_corrupt
                        .iter()
                        .map(|(&(b, n), &t)| {
                            Value::Seq(vec![
                                Value::U64(b.0),
                                Value::U64(u64::from(n.0)),
                                Value::U64(t.as_nanos()),
                            ])
                        })
                        .collect(),
                ),
            )
            .put(
                "corrupt_pending_repair",
                Value::Seq(
                    self.corrupt_pending_repair
                        .iter()
                        .map(|b| Value::U64(b.0))
                        .collect(),
                ),
            )
            .put("scrub_cursor", Value::U64(self.scrub_cursor))
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::CheckpointError;
        self.namespace.load_state(c::get(state, "namespace")?)?;
        self.blockmap.load_state(c::get(state, "blockmap")?)?;
        self.net.load_state(c::get(state, "net")?)?;
        self.audit.load_state(c::get(state, "audit")?)?;
        let node_states = c::get_seq(state, "nodes")?;
        if node_states.len() != self.nodes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot has {} nodes, cluster has {} — wrong scenario config?",
                node_states.len(),
                self.nodes.len()
            )));
        }
        for (node, nv) in self.nodes.iter_mut().zip(node_states) {
            node.load_state(nv)?;
        }
        // The event queue is restored verbatim: same entries, same seqs,
        // same id counter — deliberately NOT re-derived from the flow
        // table, so resumed runs replay the identical schedule.
        let qv = c::get(state, "queue")?;
        let entries = c::get_seq(qv, "entries")?
            .iter()
            .map(|e| {
                let t = c::as_seq(e, "queue.entries[]")?;
                if t.len() != 3 {
                    return Err(CheckpointError::Corrupt(
                        "queue entry is not (at, seq, ev)".into(),
                    ));
                }
                Ok((
                    SimTime::from_nanos(c::as_u64(&t[0], "queue.entries[].at")?),
                    c::as_u64(&t[1], "queue.entries[].seq")?,
                    ck::ev_back(&t[2])?,
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.queue = EventQueue::restore(simcore::queue::QueueSnapshot {
            now: c::get_time(qv, "now")?,
            next_seq: c::get_u64(qv, "next_seq")?,
            entries,
        });
        let pair_u64 =
            |x: &checkpoint::Value, field: &str| -> Result<(u64, u64), CheckpointError> {
                let s = c::as_seq(x, field)?;
                if s.len() != 2 {
                    return Err(CheckpointError::Corrupt(format!(
                        "`{field}` entry is not a pair"
                    )));
                }
                Ok((c::as_u64(&s[0], field)?, c::as_u64(&s[1], field)?))
            };
        self.client_nic = c::get_seq(state, "client_nic")?
            .iter()
            .map(|x| {
                pair_u64(x, "client_nic")
                    .map(|(cl, r)| (ClientId(cl as u32), ResourceId(r as usize)))
            })
            .collect::<Result<_, _>>()?;
        self.reads = c::get_seq(state, "reads")?
            .iter()
            .map(|v| ck::read_req_back(v).map(|r| (r.id, r)))
            .collect::<Result<_, _>>()?;
        self.next_read = c::get_u64(state, "next_read")?;
        self.writes = c::get_seq(state, "writes")?
            .iter()
            .map(|v| ck::write_req_back(v).map(|w| (w.id, w)))
            .collect::<Result<_, _>>()?;
        self.next_write = c::get_u64(state, "next_write")?;
        self.completed_writes = c::get_seq(state, "completed_writes")?
            .iter()
            .map(ck::write_stats_back)
            .collect::<Result<_, _>>()?;
        self.transfers = c::get_seq(state, "transfers")?
            .iter()
            .map(|x| {
                let s = c::as_seq(x, "transfers[]")?;
                if s.len() != 2 {
                    return Err(CheckpointError::Corrupt(
                        "transfers entry is not (flow, transfer)".into(),
                    ));
                }
                Ok((
                    FlowId(c::as_u64(&s[0], "transfers[].flow")?),
                    ck::transfer_back(&s[1])?,
                ))
            })
            .collect::<Result<_, _>>()?;
        self.flow_events = c::get_seq(state, "flow_events")?
            .iter()
            .map(|x| pair_u64(x, "flow_events").map(|(f, ev)| (FlowId(f), EventId::from_raw(ev))))
            .collect::<Result<_, _>>()?;
        self.tickets = c::get_seq(state, "tickets")?
            .iter()
            .map(|x| {
                let s = c::as_seq(x, "tickets[]")?;
                if s.len() != 4 {
                    return Err(CheckpointError::Corrupt(
                        "tickets entry is not (ticket, read, block, node)".into(),
                    ));
                }
                Ok((
                    c::as_u64(&s[0], "tickets[].ticket")?,
                    PendingSession {
                        read: ReadId(c::as_u64(&s[1], "tickets[].read")?),
                        block: BlockId(c::as_u64(&s[2], "tickets[].block")?),
                        node: NodeId(c::as_u64(&s[3], "tickets[].node")? as u32),
                    },
                ))
            })
            .collect::<Result<_, _>>()?;
        self.next_ticket = c::get_u64(state, "next_ticket")?;
        self.next_copy = c::get_u64(state, "next_copy")?;
        self.completed_reads = c::get_seq(state, "completed_reads")?
            .iter()
            .map(ck::read_stats_back)
            .collect::<Result<_, _>>()?;
        self.completed_copies = c::get_seq(state, "completed_copies")?
            .iter()
            .map(ck::copy_stats_back)
            .collect::<Result<_, _>>()?;
        self.fired_timers = c::get_seq(state, "fired_timers")?
            .iter()
            .map(|x| pair_u64(x, "fired_timers").map(|(at, tok)| (SimTime::from_nanos(at), tok)))
            .collect::<Result<_, _>>()?;
        self.standby_pool = c::get_seq(state, "standby_pool")?
            .iter()
            .map(|v| c::as_bool(v, "standby_pool[]"))
            .collect::<Result<_, _>>()?;
        self.copy_load = c::get_seq(state, "copy_load")?
            .iter()
            .map(|v| c::as_u64(v, "copy_load[]").map(|x| x as u32))
            .collect::<Result<_, _>>()?;
        let staged_pairs = |field: &'static str,
                            state: &checkpoint::Value|
         -> Result<Vec<(CopyId, StagedCopy)>, CheckpointError> {
            c::get_seq(state, field)?
                .iter()
                .map(|x| {
                    let s = c::as_seq(x, field)?;
                    if s.len() != 2 {
                        return Err(CheckpointError::Corrupt(format!(
                            "`{field}` entry is not (copy, staged)"
                        )));
                    }
                    Ok((CopyId(c::as_u64(&s[0], field)?), ck::staged_back(&s[1])?))
                })
                .collect()
        };
        self.staged_copies = staged_pairs("staged_copies", state)?.into_iter().collect();
        self.ready_copies = staged_pairs("ready_copies", state)?.into_iter().collect();
        self.copy_streams = c::get_seq(state, "copy_streams")?
            .iter()
            .map(|v| c::as_u64(v, "copy_streams[]").map(|x| x as u32))
            .collect::<Result<_, _>>()?;
        self.retained = c::get_seq(state, "retained")?
            .iter()
            .map(|x| {
                let s = c::as_seq(x, "retained[]")?;
                if s.len() != 2 {
                    return Err(CheckpointError::Corrupt(
                        "retained entry is not (node, stash)".into(),
                    ));
                }
                let n = NodeId(c::as_u64(&s[0], "retained[].node")? as u32);
                let stash = c::as_seq(&s[1], "retained[].stash")?
                    .iter()
                    .map(|y| pair_u64(y, "retained[].stash[]").map(|(b, len)| (BlockId(b), len)))
                    .collect::<Result<_, _>>()?;
                Ok((n, stash))
            })
            .collect::<Result<_, _>>()?;
        self.slowdown = c::get_seq(state, "slowdown")?
            .iter()
            .map(|v| c::as_f64_bits(v, "slowdown[]"))
            .collect::<Result<_, _>>()?;
        self.rack_down = c::get_seq(state, "rack_down")?
            .iter()
            .map(|v| c::as_bool(v, "rack_down[]"))
            .collect::<Result<_, _>>()?;
        self.repair_copies = c::get_seq(state, "repair_copies")?
            .iter()
            .map(|v| c::as_u64(v, "repair_copies[]").map(CopyId))
            .collect::<Result<_, _>>()?;
        self.durability
            .set_state(ck::durability_back(c::get(state, "durability")?)?);
        self.dirty_files = c::get_seq(state, "dirty_files")?
            .iter()
            .map(|v| c::as_u64(v, "dirty_files[]").map(FileId))
            .collect::<Result<_, _>>()?;
        self.deleted_paths = c::get_seq(state, "deleted_paths")?
            .iter()
            .map(|v| c::as_str(v, "deleted_paths[]").map(str::to_string))
            .collect::<Result<_, _>>()?;
        self.latent_corrupt = c::get_seq(state, "latent_corrupt")?
            .iter()
            .map(|v| {
                let t = c::as_seq(v, "latent_corrupt[]")?;
                if t.len() != 3 {
                    return Err(checkpoint::CheckpointError::Corrupt(
                        "latent_corrupt[] is not a (block, node, t_ns) triple".into(),
                    ));
                }
                Ok((
                    (
                        BlockId(c::as_u64(&t[0], "latent_corrupt[].block")?),
                        NodeId(c::as_u64(&t[1], "latent_corrupt[].node")? as u32),
                    ),
                    SimTime::from_nanos(c::as_u64(&t[2], "latent_corrupt[].t_ns")?),
                ))
            })
            .collect::<Result<_, _>>()?;
        self.corrupt_pending_repair = c::get_seq(state, "corrupt_pending_repair")?
            .iter()
            .map(|v| c::as_u64(v, "corrupt_pending_repair[]").map(BlockId))
            .collect::<Result<_, _>>()?;
        self.scrub_cursor = c::get_u64(state, "scrub_cursor")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::DefaultRackAware;
    use simcore::units::MB;

    fn sim() -> ClusterSim {
        ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware))
    }

    #[test]
    fn checkpoint_mid_flight_resumes_identically() {
        use checkpoint::Checkpointable;
        // Drive two runs from the same script; checkpoint one mid-read
        // (in-flight flows, queued copies, a killed node) and hydrate a
        // fresh cluster from the JSON round trip of its state.
        let script = |c: &mut ClusterSim| {
            c.create_file("/a", 256 * MB, 3, Some(NodeId(0))).unwrap();
            c.create_file("/b", 64 * MB, 2, Some(NodeId(3))).unwrap();
            for i in 0..5 {
                c.open_read(Endpoint::Client(ClientId(i)), "/a").unwrap();
            }
            c.open_read(Endpoint::Client(ClientId(9)), "/b").unwrap();
            c.run_until(SimTime::from_millis(700));
            c.kill_node(NodeId(1));
            c.repair_under_replicated();
            c.run_until(SimTime::from_millis(900));
        };
        let mut straight = sim();
        script(&mut straight);

        let mut saved = sim();
        script(&mut saved);
        let json = serde_json::to_string(&saved.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut resumed = sim();
        resumed.load_state(&back).unwrap();
        assert_eq!(resumed.now(), saved.now());
        assert_eq!(resumed.storage_used(), saved.storage_used());

        // Both continue to quiescence and must agree exactly.
        straight.run_until_quiescent();
        resumed.run_until_quiescent();
        assert_eq!(resumed.now(), straight.now());
        assert_eq!(resumed.storage_used(), straight.storage_used());
        let a: Vec<_> = straight
            .drain_completed_reads()
            .iter()
            .map(|r| (r.id, r.bytes, r.finished, r.failed))
            .collect();
        let b: Vec<_> = resumed
            .drain_completed_reads()
            .iter()
            .map(|r| (r.id, r.bytes, r.finished, r.failed))
            .collect();
        assert_eq!(a, b, "read completions must match after resume");
        let ca: Vec<_> = straight
            .drain_completed_copies()
            .iter()
            .map(|s| (s.id, s.block, s.target, s.finished, s.succeeded))
            .collect();
        let cb: Vec<_> = resumed
            .drain_completed_copies()
            .iter()
            .map(|s| (s.id, s.block, s.target, s.finished, s.succeeded))
            .collect();
        assert_eq!(ca, cb, "copy completions must match after resume");
        assert_eq!(straight.drain_audit(), resumed.drain_audit());
    }

    #[test]
    fn checkpoint_rejects_wrong_cluster_shape() {
        use checkpoint::Checkpointable;
        let mut big = sim();
        big.create_file("/f", 64 * MB, 3, None).unwrap();
        let state = big.save_state();
        let mut cfg = ClusterConfig::paper_testbed();
        cfg.datanodes = 4;
        let mut small = ClusterSim::new(cfg, Box::new(DefaultRackAware));
        match small.load_state(&state) {
            Err(checkpoint::CheckpointError::Corrupt(msg)) => {
                assert!(msg.contains("nodes"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn create_file_places_replicas() {
        let mut c = sim();
        let f = c
            .create_file("/data/a", 128 * MB, 3, Some(NodeId(0)))
            .unwrap();
        let meta = c.namespace().file(f).unwrap();
        assert_eq!(meta.blocks.len(), 2);
        for &b in &meta.blocks.clone() {
            assert_eq!(c.blockmap().replica_count(b), 3);
        }
        assert_eq!(c.storage_used(), 3 * 128 * MB);
        assert!(c.create_file("/data/a", MB, 3, None).is_none(), "dup path");
    }

    #[test]
    fn single_read_completes_at_disk_rate() {
        let mut c = sim();
        c.create_file("/f", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let r = c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 1);
        let s = &done[0];
        assert_eq!(s.id, r);
        assert!(!s.failed);
        assert_eq!(s.bytes, 64 * MB);
        // 64MB at 80MB/s disk ≈ 0.8s plus overhead
        assert!(
            s.duration() > 0.7 && s.duration() < 1.1,
            "took {}",
            s.duration()
        );
        assert!(s.throughput_mb_s() > 55.0, "tput {}", s.throughput_mb_s());
    }

    #[test]
    fn node_local_read_is_fast_and_local() {
        let mut c = sim();
        c.create_file("/f", 64 * MB, 3, Some(NodeId(2))).unwrap();
        c.open_read(Endpoint::Node(NodeId(2)), "/f").unwrap();
        c.run_until_quiescent();
        let s = &c.drain_completed_reads()[0];
        assert_eq!(s.node_local_blocks, 1);
        assert_eq!(s.remote_blocks + s.rack_local_blocks, 0);
        assert!((s.locality_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contention_degrades_throughput() {
        let mut c = sim();
        c.create_file("/hot", 64 * MB, 1, Some(NodeId(0))).unwrap();
        for i in 0..4 {
            c.open_read(Endpoint::Client(ClientId(i)), "/hot").unwrap();
        }
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 4);
        // 4 concurrent sessions share one 80MB/s disk → ≈ 20MB/s each
        for s in &done {
            assert!(
                s.throughput_mb_s() < 30.0,
                "expected contention, got {}",
                s.throughput_mb_s()
            );
        }
    }

    #[test]
    fn more_replicas_restore_throughput() {
        let mut c = sim();
        c.create_file("/hot", 64 * MB, 4, Some(NodeId(0))).unwrap();
        for i in 0..4 {
            c.open_read(Endpoint::Client(ClientId(i)), "/hot").unwrap();
        }
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        // readers spread across 4 replicas → near-full disk rate each
        for s in &done {
            assert!(
                s.throughput_mb_s() > 50.0,
                "expected spread, got {}",
                s.throughput_mb_s()
            );
        }
    }

    #[test]
    fn session_cap_queues_and_eventually_serves() {
        let mut cfg = ClusterConfig::paper_testbed();
        cfg.max_sessions_per_node = 2;
        let mut c = ClusterSim::new(cfg, Box::new(DefaultRackAware));
        c.create_file("/hot", 64 * MB, 1, Some(NodeId(0))).unwrap();
        for i in 0..6 {
            c.open_read(Endpoint::Client(ClientId(i)), "/hot").unwrap();
        }
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 6, "queued readers are eventually served");
        assert!(done.iter().all(|s| !s.failed));
        assert_eq!(c.peak_sessions(NodeId(0)).max(2), 2, "cap respected");
        // queued readers take much longer than the first two
        let mut durs: Vec<f64> = done.iter().map(ReadStats::duration).collect();
        durs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(durs[5] > durs[0] * 1.8, "{durs:?}");
    }

    #[test]
    fn add_replica_moves_bytes() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        assert_eq!(c.blockmap().replica_count(b), 1);
        let copies = c.add_replicas(b, 2);
        assert_eq!(copies.len(), 2);
        c.run_until_quiescent();
        let stats = c.drain_completed_copies();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.succeeded));
        assert_eq!(c.blockmap().replica_count(b), 3);
        assert!(c.now().as_secs_f64() > 0.5, "copies take simulated time");
    }

    #[test]
    fn set_file_replication_up_and_down() {
        let mut c = sim();
        let f = c.create_file("/f", 128 * MB, 3, Some(NodeId(0))).unwrap();
        let copies = c.set_file_replication(f, 5);
        assert_eq!(copies.len(), 4, "2 blocks × 2 extra");
        c.run_until_quiescent();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        for &b in &blocks {
            assert_eq!(c.blockmap().replica_count(b), 5);
        }
        c.set_file_replication(f, 2);
        for &b in &blocks {
            assert_eq!(c.blockmap().replica_count(b), 2, "removal is instant");
        }
        assert_eq!(c.storage_used(), 2 * 2 * 64 * MB);
    }

    #[test]
    fn delete_file_frees_space() {
        let mut c = sim();
        c.create_file("/f", 64 * MB, 3, None).unwrap();
        assert!(c.storage_used() > 0);
        assert!(c.delete_file("/f"));
        assert_eq!(c.storage_used(), 0);
        assert!(!c.delete_file("/f"));
        assert_eq!(c.blockmap().num_blocks(), 0);
    }

    #[test]
    fn standby_nodes_do_not_take_reads_or_data() {
        let mut c = sim();
        let standby: Vec<NodeId> = (10..18).map(NodeId).collect();
        c.designate_standby(&standby);
        assert_eq!(c.serving_nodes(), 10);
        let f = c.create_file("/f", 64 * MB, 3, None).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        for n in &standby {
            assert!(!c.node_holds(*n, b), "standby must not receive replicas");
        }
        // commission brings a standby node back after boot time
        assert!(c.commission(NodeId(10)));
        c.run_until_quiescent();
        assert_eq!(c.node_state(NodeId(10)), NodeState::Active);
        assert_eq!(c.serving_nodes(), 11);
    }

    #[test]
    fn kill_node_loses_data_and_repair_restores() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        c.kill_node(victim);
        assert_eq!(c.blockmap().replica_count(b), 2);
        let copies = c.repair_under_replicated();
        assert_eq!(copies.len(), 1);
        c.run_until_quiescent();
        assert_eq!(c.blockmap().replica_count(b), 3);
        assert!(!c.blockmap().holds(b, victim));
    }

    #[test]
    fn reads_survive_replica_node_death() {
        let mut c = sim();
        c.create_file("/f", 256 * MB, 3, Some(NodeId(0))).unwrap();
        let r = c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        // let the read get going, then kill the serving node
        c.run_until(SimTime::from_millis(500));
        let serving: Vec<NodeId> = c
            .transfers
            .values()
            .filter_map(|t| match t {
                Transfer::ReadBlock { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert!(!serving.is_empty(), "read should be in flight");
        c.kill_node(serving[0]);
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, r);
        assert!(!done[0].failed, "retried on surviving replicas");
        assert_eq!(done[0].bytes, 256 * MB);
    }

    #[test]
    fn read_of_lost_block_fails() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        c.kill_node(holder);
        c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 1);
        assert!(done[0].failed);
    }

    #[test]
    fn audit_log_covers_reads() {
        let mut c = sim();
        c.create_file("/f", 128 * MB, 3, None).unwrap();
        c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until_quiescent();
        let lines = c.drain_audit();
        let text = lines.join("\n");
        assert!(text.contains("cmd=create"));
        assert!(text.contains("cmd=open"));
        assert_eq!(
            text.matches("cmd=read_block").count(),
            2,
            "one clienttrace line per block"
        );
        let (events, bad) = cep::audit::parse_log(&text);
        assert_eq!(bad, 0);
        assert_eq!(events.len(), lines.len());
    }

    #[test]
    fn parity_placement_and_encoding_mode() {
        let mut c = sim();
        let f = c.create_file("/cold", 128 * MB, 3, None).unwrap();
        let (pb, node) = c.place_parity_block(f, 0, 64 * MB).unwrap();
        assert!(c.node_holds(node, pb));
        assert_eq!(c.blockmap().replica_count(pb), 1);
        c.mark_encoded(f, vec![pb]);
        assert!(c.namespace().file(f).unwrap().is_encoded());
        assert_eq!(c.namespace().file(f).unwrap().replication(), 1);
        // deleting the file also frees the parity block
        assert!(c.delete_file("/cold"));
        assert_eq!(c.storage_used(), 0);
    }

    #[test]
    fn pipelined_write_moves_real_bytes() {
        let mut c = sim();
        let w = c
            .write_file(Endpoint::Client(ClientId(1)), "/w", 128 * MB, 3)
            .unwrap();
        assert_eq!(c.inflight_writes(), 1);
        c.run_until_quiescent();
        let done = c.drain_completed_writes();
        assert_eq!(done.len(), 1);
        let stats = &done[0];
        assert_eq!(stats.id, w);
        assert!(!stats.failed);
        assert_eq!(stats.bytes, 128 * MB);
        // 2 blocks × 64MB at ≤80MB/s pipeline: at least 1.6 s
        assert!(stats.duration() > 1.5, "took {}", stats.duration());
        // the file is fully replicated afterwards
        let f = c.namespace().resolve("/w").unwrap();
        for &b in &c.namespace().file(f).unwrap().blocks.clone() {
            assert_eq!(c.blockmap().replica_count(b), 3);
        }
        assert_eq!(c.storage_used(), 3 * 128 * MB);
    }

    #[test]
    fn duplicate_write_path_rejected() {
        let mut c = sim();
        c.create_file("/w", 64 * MB, 3, None).unwrap();
        assert!(c
            .write_file(Endpoint::Client(ClientId(1)), "/w", 64 * MB, 3)
            .is_none());
    }

    #[test]
    fn writes_contend_with_reads() {
        let mut c = sim();
        c.create_file("/data", 256 * MB, 3, None).unwrap();
        // a solo read baseline
        c.open_read(Endpoint::Client(ClientId(1)), "/data").unwrap();
        c.run_until_quiescent();
        let solo = c.drain_completed_reads()[0].duration();
        // now a read racing enough pipelined writes that every node's
        // disk serves write traffic
        for i in 0..14 {
            c.write_file(
                Endpoint::Client(ClientId(100 + i)),
                &format!("/w{i}"),
                512 * MB,
                3,
            )
            .unwrap();
        }
        c.open_read(Endpoint::Client(ClientId(2)), "/data").unwrap();
        c.run_until_quiescent();
        let busy = c
            .drain_completed_reads()
            .iter()
            .find(|r| r.id.0 > 0)
            .map(ReadStats::duration)
            .unwrap();
        assert!(
            busy > solo,
            "write pipelines must steal read bandwidth: {busy} vs {solo}"
        );
    }

    #[test]
    fn graceful_decommission_preserves_replication() {
        let mut c = sim();
        let f = c.create_file("/f", 128 * MB, 3, None).unwrap();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        let victim = c.blockmap().replica_nodes(blocks[0])[0];
        let held = c.node_block_count(victim);
        assert!(held > 0);
        let copies = c.decommission(victim);
        assert_eq!(copies.len(), held);
        c.run_until_quiescent();
        assert!(c.drain_completed_copies().iter().all(|s| s.succeeded));
        // now powering the node off leaves no block under-replicated
        c.power_off(victim).expect("no last replicas remain");
        for &b in &blocks {
            assert!(
                c.blockmap().replica_count(b) >= 3,
                "block {b} lost redundancy"
            );
        }
        let under = c.blockmap().under_replicated(|_| 3);
        assert!(under.is_empty(), "{under:?}");
    }

    #[test]
    fn is_idle_reflects_inflight_work() {
        let mut c = sim();
        c.create_file("/f", 64 * MB, 3, None).unwrap();
        assert!(c.is_idle());
        c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until(SimTime::from_millis(100));
        assert!(!c.is_idle());
        c.run_until_quiescent();
        assert!(c.is_idle());
    }

    #[test]
    fn crash_then_restart_block_reports_retained_replicas() {
        let mut c = sim();
        let f = c.create_file("/f", 128 * MB, 3, Some(NodeId(0))).unwrap();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        let victim = c.blockmap().replica_nodes(blocks[0])[0];
        let held = c.node_block_count(victim);
        let used_before = c.storage_used();
        assert!(c.crash_node(victim));
        assert!(!c.crash_node(victim), "double crash refused");
        assert_eq!(c.node_state(victim), NodeState::Dead);
        assert_eq!(c.retained_blocks(victim), held);
        assert_eq!(c.blockmap().replica_count(blocks[0]), 2);
        // restart: the block report readmits every retained replica
        assert_eq!(c.restart_node(victim), Some(held));
        assert_eq!(c.node_state(victim), NodeState::Active);
        assert_eq!(c.retained_blocks(victim), 0);
        assert_eq!(c.blockmap().replica_count(blocks[0]), 3);
        assert_eq!(c.storage_used(), used_before);
        assert_eq!(c.restart_node(victim), None, "not down");
    }

    #[test]
    fn restart_drops_stale_blocks_and_trims_over_replication() {
        let mut c = sim();
        let f = c.create_file("/keep", 64 * MB, 3, Some(NodeId(0))).unwrap();
        c.create_file("/gone", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        c.crash_node(victim);
        // while the node is down: the file is deleted and the block repaired
        assert!(c.delete_file("/gone"));
        let copies = c.repair_under_replicated();
        assert!(!copies.is_empty());
        c.run_until_quiescent();
        assert_eq!(c.blockmap().replica_count(b), 3);
        // the restart re-reports only the surviving block -> 4 replicas
        let readmitted = c.restart_node(victim).unwrap();
        assert_eq!(readmitted, 1, "stale replica of /gone dropped");
        assert_eq!(c.blockmap().replica_count(b), 4);
        assert_eq!(c.trim_over_replicated(), 1);
        assert_eq!(c.blockmap().replica_count(b), 3);
        // storage accounting survived the whole episode
        let expected: Bytes = c
            .blockmap()
            .blocks()
            .map(|(blk, locs)| c.namespace().block(blk).unwrap().len * locs.len() as Bytes)
            .sum();
        assert_eq!(c.storage_used(), expected);
    }

    #[test]
    fn crash_opens_window_restart_closes_it() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        c.run_until(SimTime::from_secs(10));
        c.crash_node(holder);
        assert_eq!(c.durability().open_windows(), 1, "sole replica went dark");
        assert!(c.durability().loss_events().is_empty(), "disk retained it");
        c.run_until(SimTime::from_secs(40));
        c.restart_node(holder);
        assert_eq!(c.durability().open_windows(), 0);
        let w = &c.durability().windows()[0];
        assert!(
            (w.duration_secs() - 30.0).abs() < 1e-6,
            "{}",
            w.duration_secs()
        );
        assert!(!w.unresolved);
    }

    #[test]
    fn kill_records_permanent_loss() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        let (degraded, lost) = c.kill_node(holder);
        assert!(degraded.is_empty());
        assert_eq!(lost, vec![b]);
        assert_eq!(c.durability().loss_events().len(), 1);
        assert_eq!(c.durability().loss_events()[0].key, b.0);
    }

    #[test]
    fn kill_after_crash_destroys_retained_copy() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        c.crash_node(holder);
        assert!(c.durability().loss_events().is_empty(), "still on the disk");
        c.kill_node(holder);
        assert_eq!(c.retained_blocks(holder), 0);
        assert_eq!(c.durability().loss_events().len(), 1, "retained copy gone");
        assert_eq!(c.restart_node(holder), Some(0), "nothing to report");
    }

    #[test]
    fn power_off_refuses_last_replica() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        let orphans = c.power_off(holder).unwrap_err();
        assert_eq!(orphans, vec![b]);
        assert_eq!(c.node_state(holder), NodeState::Active, "unchanged");
        assert_eq!(c.blockmap().replica_count(b), 1);
        // decommission first, then the power-off is accepted
        let copies = c.decommission(holder);
        assert_eq!(copies.len(), 1);
        c.run_until_quiescent();
        c.power_off(holder).expect("replica copied away");
        assert_eq!(c.blockmap().replica_count(b), 1);
        assert!(!c.blockmap().holds(b, holder));
    }

    #[test]
    fn designate_standby_skips_last_replica_holders() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        let empty = NodeId(if holder.0 == 17 { 16 } else { 17 });
        c.designate_standby(&[holder, empty]);
        assert_eq!(c.node_state(holder), NodeState::Active, "refused");
        assert_eq!(c.node_state(empty), NodeState::Standby);
        assert_eq!(c.blockmap().replica_count(b), 1, "no data lost");
    }

    #[test]
    fn rack_outage_stalls_and_restore_resumes() {
        let mut c = sim();
        // single remote replica: the client read crosses the rack uplink
        let f = c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holder = c.blockmap().replica_nodes(b)[0];
        let rack = c.topology().rack_of(holder);
        let r = c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until(SimTime::from_millis(100));
        assert!(c.fail_rack_uplink(rack));
        assert!(!c.fail_rack_uplink(rack), "already down");
        assert!(c.rack_uplink_down(rack));
        // with the uplink at zero the read cannot finish in bounded time
        c.run_until(SimTime::from_secs(60));
        assert!(c.drain_completed_reads().is_empty(), "stalled, not failed");
        assert!(c.restore_rack_uplink(rack));
        assert!(!c.restore_rack_uplink(rack), "already up");
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, r);
        assert!(!done[0].failed, "flow resumed after restore");
    }

    #[test]
    fn straggler_slows_reads_and_recovers() {
        let mut c = sim();
        c.create_file("/f", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let holder = {
            let f = c.namespace().resolve("/f").unwrap();
            let b = c.namespace().file(f).unwrap().blocks[0];
            c.blockmap().replica_nodes(b)[0]
        };
        c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until_quiescent();
        let healthy = c.drain_completed_reads()[0].duration();
        c.set_node_slowdown(holder, 0.1);
        assert!((c.node_slowdown(holder) - 0.1).abs() < 1e-12);
        c.open_read(Endpoint::Client(ClientId(2)), "/f").unwrap();
        c.run_until_quiescent();
        let slow = c.drain_completed_reads()[0].duration();
        assert!(slow > healthy * 5.0, "straggler: {slow} vs {healthy}");
        c.clear_node_slowdown(holder);
        c.open_read(Endpoint::Client(ClientId(3)), "/f").unwrap();
        c.run_until_quiescent();
        let recovered = c.drain_completed_reads()[0].duration();
        assert!(recovered < healthy * 1.5, "{recovered} vs {healthy}");
    }

    #[test]
    fn reconstruct_block_rebuilds_a_dark_block() {
        let mut c = sim();
        let f = c.create_file("/cold", 64 * MB, 1, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        // model an encoded file: parities elsewhere, then lose the data block
        let (p0, _) = c.place_parity_block(f, 0, 64 * MB).unwrap();
        let (p1, _) = c.place_parity_block(f, 1, 64 * MB).unwrap();
        c.mark_encoded(f, vec![p0, p1]);
        let holder = c.blockmap().replica_nodes(b)[0];
        c.kill_node(holder);
        assert_eq!(c.blockmap().replica_count(b), 0);
        assert!(
            c.durability().loss_events().is_empty(),
            "encoded file: stripe may still be recoverable"
        );
        assert_eq!(c.durability().open_windows(), 1);
        // rebuild from two surviving shard holders (the ERMS manager
        // derives these from the stripe's recovery plan; the cluster
        // only models the data movement)
        let mut live = (0..18)
            .map(NodeId)
            .filter(|&n| c.node_state(n) == NodeState::Active && !c.node_holds(n, b));
        let sources = [live.next().unwrap(), live.next().unwrap()];
        let target = live.next().unwrap();
        let copy = c.reconstruct_block(b, &sources, target).unwrap();
        c.run_until_quiescent();
        let done = c.drain_completed_copies();
        let stat = done.iter().find(|s| s.id == copy).unwrap();
        assert!(stat.succeeded);
        assert_eq!(c.blockmap().replica_count(b), 1);
        assert!(c.node_holds(target, b));
        assert_eq!(c.durability().open_windows(), 0, "window closed");
        // k shards crossed the network
        assert_eq!(c.durability().repair_bytes(), 2 * 64 * MB);
        // immediate path: no replication-monitor staging was involved
        assert!(
            stat.finished.as_secs_f64() - stat.started.as_secs_f64() < 3.0,
            "reconstruction must not wait out the monitor delay"
        );
    }

    #[test]
    fn reconstruct_rejects_bad_endpoints() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 2, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let locs = c.blockmap().replica_nodes(b).to_vec();
        let target = locs[0];
        assert!(
            c.reconstruct_block(b, &[locs[1]], target).is_none(),
            "target already holds the block"
        );
        let spare = NodeId((0..18).find(|&i| !locs.contains(&NodeId(i))).unwrap());
        assert!(c.reconstruct_block(b, &[], spare).is_none(), "no sources");
        assert!(
            c.reconstruct_block(b, &[spare], spare).is_none(),
            "source == target"
        );
    }

    #[test]
    fn repair_copies_count_repair_bytes() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        c.kill_node(victim);
        let copies = c.repair_under_replicated();
        assert_eq!(copies.len(), 1);
        c.run_until_quiescent();
        assert_eq!(c.durability().repair_bytes(), 64 * MB);
        // ordinary (non-repair) copies do not count
        c.add_replicas(b, 1);
        c.run_until_quiescent();
        assert_eq!(c.durability().repair_bytes(), 64 * MB);
    }

    #[test]
    fn read_detects_corrupt_replica_and_fails_over() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        // corrupt every replica but one: whichever source the read picks
        // first, it can only finish cleanly from the one clean copy
        let locs = c.blockmap().replica_nodes(b).to_vec();
        for &n in &locs[..2] {
            assert!(c.corrupt_replica(n, 0, false));
        }
        assert_eq!(c.latent_corrupt_count(), 2);
        let r = c.open_read(Endpoint::Client(ClientId(1)), "/f").unwrap();
        c.run_until_quiescent();
        let done = c.drain_completed_reads();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, r);
        assert!(!done[0].failed, "read fails over to the clean replica");
        // every corrupt replica the read touched was quarantined; none
        // can still be serving
        for &n in &locs[..2] {
            if c.blockmap().holds(b, n) {
                assert!(!c.is_replica_corrupt(b, n));
            }
        }
        assert!(c.blockmap().replica_count(b) >= 1);
    }

    #[test]
    fn all_replicas_corrupt_means_data_loss_not_silent_success() {
        let mut c = sim();
        let f = c.create_file("/f", 64 * MB, 3, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        for &n in c.blockmap().replica_nodes(b).to_vec().iter() {
            assert!(c.corrupt_replica(n, 0, false));
        }
        // a scrub sweep detects and quarantines all three; with zero
        // clean copies left this is recorded loss, not availability
        let (_, found) = c.scrub(16, &[]);
        assert_eq!(found, 3);
        assert_eq!(c.blockmap().replica_count(b), 0);
        assert!(c.durability().is_lost(b.0), "loss recorded in the ledger");
        let _ = f;
    }

    #[test]
    fn scrub_detects_and_quarantines_with_deterministic_cursor() {
        let mut c = sim();
        let f = c.create_file("/f", 256 * MB, 3, Some(NodeId(0))).unwrap();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        assert_eq!(blocks.len(), 4);
        let last = *blocks.last().unwrap();
        let victim = c.blockmap().replica_nodes(last)[0];
        assert!(c.corrupt_replica(victim, last.0, false));
        let corrupted = blocks
            .iter()
            .copied()
            .find(|&b| c.is_replica_corrupt(b, victim))
            .expect("one replica corrupted");
        let idx = blocks.iter().position(|&b| b == corrupted).unwrap();
        // budget 1: the cursor walks one block per sweep in id order and
        // reaches the corrupt one exactly at its position
        let mut found_at = None;
        for sweep in 0..4 {
            let (scanned, found) = c.scrub(1, &[]);
            assert_eq!(scanned, 1);
            if found == 1 {
                found_at = Some(sweep);
            }
        }
        assert_eq!(found_at, Some(idx), "cursor order is block-id order");
        assert_eq!(c.latent_corrupt_count(), 0);
        assert_eq!(c.blockmap().replica_count(corrupted), 2);
        assert!(c.corrupt_blocks_pending_repair().contains(&corrupted));
        // the cursor wraps: the next sweep starts from the first block
        let cursor_after = c.scrub_cursor();
        let (scanned, _) = c.scrub(1, &[]);
        assert_eq!(scanned, 1);
        assert!(c.scrub_cursor() <= cursor_after, "cursor wrapped around");
    }

    #[test]
    fn scrub_priority_list_checks_hot_blocks_first() {
        let mut c = sim();
        let f = c.create_file("/hot", 256 * MB, 3, Some(NodeId(0))).unwrap();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        let hot = *blocks.last().unwrap();
        let victim = c.blockmap().replica_nodes(hot)[0];
        assert!(c.corrupt_replica(victim, hot.0, false));
        let corrupted = blocks
            .iter()
            .copied()
            .find(|&b| c.is_replica_corrupt(b, victim))
            .expect("one replica corrupted");
        // with the block prioritized, budget 1 finds it immediately, and
        // the priority visit does not advance the background cursor
        let (scanned, found) = c.scrub(1, &[corrupted]);
        assert_eq!((scanned, found), (1, 1));
        assert_eq!(c.latent_corrupt_count(), 0);
        assert_eq!(c.scrub_cursor(), 0, "priority scan leaves the cursor");
    }

    #[test]
    fn torn_crash_marks_inflight_copy_corrupt_until_scrubbed() {
        let mut c = sim();
        let f = c.create_file("/t", 64 * MB, 2, Some(NodeId(0))).unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let holders = c.blockmap().replica_nodes(b).to_vec();
        let copies = c.add_replicas(b, 1);
        assert_eq!(copies.len(), 1);
        // let the replication monitor dispatch the staged copy, then
        // stop mid-transfer (64 MB over gigabit needs ~0.5 s)
        c.run_until(SimTime::from_millis(3050));
        // the copy's landing node is some non-holder: torn-crash
        // candidates until the in-flight transfer registers torn
        let mut hit = None;
        for i in 0..c.config().datanodes {
            let n = NodeId(i);
            if holders.contains(&n) {
                continue;
            }
            assert!(c.crash_node_torn(n));
            if c.latent_corrupt_count() == 1 {
                hit = Some(n);
                break;
            }
        }
        let n = hit.expect("the in-flight copy target was found");
        assert!(c.is_replica_corrupt(b, n));
        c.run_until_quiescent();
        // the node comes back: its block report re-admits the torn
        // replica, which stays suspect until a scrub verifies it
        assert!(c.restart_node(n).is_some());
        if c.blockmap().holds(b, n) {
            let before = c.blockmap().replica_count(b);
            let (_, found) = c.scrub(64, &[b]);
            assert_eq!(found, 1, "scrub catches the torn replica");
            assert_eq!(c.blockmap().replica_count(b), before - 1);
        }
        assert_eq!(c.latent_corrupt_count(), 0);
    }

    #[test]
    fn corruption_state_survives_checkpoint_round_trip() {
        use checkpoint::Checkpointable;
        let mut c = sim();
        let f = c.create_file("/f", 256 * MB, 3, Some(NodeId(0))).unwrap();
        let blocks = c.namespace().file(f).unwrap().blocks.clone();
        let b0 = blocks[0];
        let victim = c.blockmap().replica_nodes(b0)[0];
        assert!(c.corrupt_replica(victim, 0, false));
        let (scanned, _) = c.scrub(2, &[]);
        assert_eq!(scanned, 2);
        let json = serde_json::to_string(&c.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut r = sim();
        r.load_state(&back).unwrap();
        assert_eq!(r.latent_corrupt_count(), c.latent_corrupt_count());
        assert_eq!(r.scrub_cursor(), c.scrub_cursor());
        assert_eq!(
            r.corrupt_blocks_pending_repair(),
            c.corrupt_blocks_pending_repair()
        );
        assert_eq!(
            r.is_replica_corrupt(b0, victim),
            c.is_replica_corrupt(b0, victim)
        );
    }
}
