//! The block → replica-locations map.
//!
//! The namenode side of replication: which datanodes hold each block,
//! plus derived under-/over-replication queries that drive both HDFS's
//! own re-replication after failures and ERMS's elastic actions.
//!
//! Alongside the raw locations the map keeps a **deficit index**: each
//! block's replication *target* (registered by the cluster as files are
//! created, re-replicated, encoded and decoded) plus three derived sets
//! — under-replicated, over-replicated and dark (zero live replicas) —
//! maintained incrementally in [`add`](BlockMap::add),
//! [`remove`](BlockMap::remove) and [`remove_node`](BlockMap::remove_node).
//! The repair scan then visits only deficient blocks instead of walking
//! the whole map; the closure-driven
//! [`under_replicated`](BlockMap::under_replicated) /
//! [`over_replicated`](BlockMap::over_replicated) scans remain as the
//! brute-force reference
//! the property tests compare the index against.

use crate::block::BlockId;
use crate::topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Default)]
pub struct BlockMap {
    locations: BTreeMap<BlockId, BTreeSet<NodeId>>,
    /// Desired replica count per block (absent = untracked: the block
    /// never appears in the derived sets, matching the closure scans'
    /// `unknown → skip` conventions).
    targets: BTreeMap<BlockId, usize>,
    /// Tracked blocks with `0 < replicas < target`.
    under: BTreeSet<BlockId>,
    /// Tracked blocks with `replicas > target`.
    over: BTreeSet<BlockId>,
    /// Tracked blocks with zero live replicas (lost unless parity or a
    /// retained crashed disk can bring them back).
    dark: BTreeSet<BlockId>,
}

impl BlockMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a replica. Returns false if it was already recorded.
    pub fn add(&mut self, block: BlockId, node: NodeId) -> bool {
        let added = self.locations.entry(block).or_default().insert(node);
        if added {
            self.reindex(block);
        }
        added
    }

    /// Remove a replica record. Returns false if it was not present.
    pub fn remove(&mut self, block: BlockId, node: NodeId) -> bool {
        let removed = match self.locations.get_mut(&block) {
            Some(set) => {
                let removed = set.remove(&node);
                if set.is_empty() {
                    self.locations.remove(&block);
                }
                removed
            }
            None => false,
        };
        if removed {
            self.reindex(block);
        }
        removed
    }

    /// Register the desired replica count for a block, entering it into
    /// the deficit index. The cluster calls this wherever a block's
    /// target changes: file create, `setReplication`, parity placement,
    /// encode (data targets drop to 1) and decode.
    pub fn set_target(&mut self, block: BlockId, target: usize) {
        self.targets.insert(block, target);
        self.reindex(block);
    }

    /// The registered replication target for a block, if any.
    pub fn target(&self, block: BlockId) -> Option<usize> {
        self.targets.get(&block).copied()
    }

    /// Forget a block entirely (file deleted).
    pub fn drop_block(&mut self, block: BlockId) {
        self.locations.remove(&block);
        self.targets.remove(&block);
        self.under.remove(&block);
        self.over.remove(&block);
        self.dark.remove(&block);
    }

    /// Recompute one block's membership in the derived sets after its
    /// replica count or target changed. O(log n).
    fn reindex(&mut self, block: BlockId) {
        let Some(&target) = self.targets.get(&block) else {
            self.under.remove(&block);
            self.over.remove(&block);
            self.dark.remove(&block);
            return;
        };
        let count = self.locations.get(&block).map_or(0, BTreeSet::len);
        set_membership(&mut self.dark, block, count == 0);
        set_membership(&mut self.under, block, count > 0 && count < target);
        set_membership(&mut self.over, block, count > target);
    }

    /// Nodes currently holding `block`, in id order.
    pub fn locations(&self, block: BlockId) -> Vec<NodeId> {
        self.locations
            .get(&block)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    pub fn replica_count(&self, block: BlockId) -> usize {
        self.locations.get(&block).map_or(0, BTreeSet::len)
    }

    /// Iterate every (block, replica locations) pair in id order. Blocks
    /// with zero live replicas have no entry — finding those requires
    /// the namespace.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BTreeSet<NodeId>)> + '_ {
        self.locations.iter().map(|(&b, locs)| (b, locs))
    }

    pub fn holds(&self, block: BlockId, node: NodeId) -> bool {
        self.locations
            .get(&block)
            .is_some_and(|s| s.contains(&node))
    }

    /// Every (block, deficit) with fewer than `want(block)` replicas.
    ///
    /// Brute-force scan of every live block; the deficit index
    /// ([`under_replicated_indexed`](Self::under_replicated_indexed))
    /// answers the same question in O(deficient) and the property tests
    /// pin the two against each other.
    pub fn under_replicated(
        &self,
        mut want: impl FnMut(BlockId) -> usize,
    ) -> Vec<(BlockId, usize)> {
        self.locations
            .iter()
            .filter_map(|(&b, locs)| {
                let target = want(b);
                (locs.len() < target).then(|| (b, target - locs.len()))
            })
            .collect()
    }

    /// Every (block, excess) with more than `want(block)` replicas.
    /// Brute-force counterpart of
    /// [`over_replicated_indexed`](Self::over_replicated_indexed).
    pub fn over_replicated(&self, mut want: impl FnMut(BlockId) -> usize) -> Vec<(BlockId, usize)> {
        self.locations
            .iter()
            .filter_map(|(&b, locs)| {
                let target = want(b);
                (locs.len() > target).then(|| (b, locs.len() - target))
            })
            .collect()
    }

    /// Every (block, deficit) from the index: tracked blocks with at
    /// least one live replica but fewer than their registered target.
    /// O(deficient), id order — identical order and contents to the
    /// brute-force scan driven by the registered targets.
    pub fn under_replicated_indexed(&self) -> Vec<(BlockId, usize)> {
        self.under
            .iter()
            .map(|&b| {
                let count = self.locations.get(&b).map_or(0, BTreeSet::len);
                (b, self.targets[&b] - count)
            })
            .collect()
    }

    /// Every (block, excess) from the index. O(excess), id order.
    pub fn over_replicated_indexed(&self) -> Vec<(BlockId, usize)> {
        self.over
            .iter()
            .map(|&b| {
                let count = self.locations.get(&b).map_or(0, BTreeSet::len);
                (b, count - self.targets[&b])
            })
            .collect()
    }

    /// Tracked blocks with zero live replicas, in id order. Fuels dark
    /// RS-shard reconstruction without a namespace walk.
    pub fn dark_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.dark.iter().copied()
    }

    /// Blocks that lost *all* replicas after removing `node` (data loss
    /// unless parity can recover them).
    pub fn remove_node(&mut self, node: NodeId) -> (Vec<BlockId>, Vec<BlockId>) {
        let mut degraded = Vec::new();
        let mut lost = Vec::new();
        let affected: Vec<BlockId> = self
            .locations
            .iter()
            .filter(|(_, locs)| locs.contains(&node))
            .map(|(&b, _)| b)
            .collect();
        for b in affected {
            self.remove(b, node);
            if self.replica_count(b) == 0 {
                lost.push(b);
            } else {
                degraded.push(b);
            }
        }
        (degraded, lost)
    }

    pub fn num_blocks(&self) -> usize {
        self.locations.len()
    }

    /// Total replica records (Σ per-block locations).
    pub fn total_replicas(&self) -> usize {
        self.locations.values().map(BTreeSet::len).sum()
    }
}

impl checkpoint::Checkpointable for BlockMap {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{seq_of, MapBuilder};
        use checkpoint::Value;
        // Only the raw facts are stored; the under/over/dark derived
        // sets are recomputed on load via the same `reindex` path the
        // live mutations use.
        MapBuilder::new()
            .put(
                "locations",
                seq_of(self.locations.iter(), |(b, locs)| {
                    Value::Seq(vec![
                        Value::U64(b.0),
                        Value::Seq(locs.iter().map(|n| Value::U64(u64::from(n.0))).collect()),
                    ])
                }),
            )
            .put(
                "targets",
                seq_of(self.targets.iter(), |(b, t)| {
                    Value::Seq(vec![Value::U64(b.0), Value::U64(*t as u64)])
                }),
            )
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.locations.clear();
        self.targets.clear();
        self.under.clear();
        self.over.clear();
        self.dark.clear();
        for pair in c::get_seq(state, "locations")? {
            let items = c::as_seq(pair, "locations[]")?;
            if items.len() != 2 {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "locations entry is not a (block, nodes) pair".into(),
                ));
            }
            let b = BlockId(c::as_u64(&items[0], "locations[].block")?);
            let nodes = c::as_seq(&items[1], "locations[].nodes")?
                .iter()
                .map(|v| c::as_u64(v, "locations[].nodes[]").map(|n| NodeId(n as u32)))
                .collect::<Result<BTreeSet<_>, _>>()?;
            self.locations.insert(b, nodes);
        }
        for pair in c::get_seq(state, "targets")? {
            let items = c::as_seq(pair, "targets[]")?;
            if items.len() != 2 {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "targets entry is not a (block, target) pair".into(),
                ));
            }
            let b = BlockId(c::as_u64(&items[0], "targets[].block")?);
            let t = c::as_u64(&items[1], "targets[].target")? as usize;
            self.targets.insert(b, t);
        }
        let tracked: Vec<BlockId> = self.targets.keys().copied().collect();
        for b in tracked {
            self.reindex(b);
        }
        Ok(())
    }
}

/// Insert or remove `block` from `set` so membership equals `wanted`.
fn set_membership(set: &mut BTreeSet<BlockId>, block: BlockId, wanted: bool) {
    if wanted {
        set.insert(block);
    } else {
        set.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_locations() {
        let mut bm = BlockMap::new();
        assert!(bm.add(BlockId(1), NodeId(0)));
        assert!(!bm.add(BlockId(1), NodeId(0)), "duplicate");
        bm.add(BlockId(1), NodeId(2));
        assert_eq!(bm.locations(BlockId(1)), vec![NodeId(0), NodeId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 2);
        assert!(bm.holds(BlockId(1), NodeId(2)));
        assert!(bm.remove(BlockId(1), NodeId(0)));
        assert!(!bm.remove(BlockId(1), NodeId(0)));
        assert_eq!(bm.replica_count(BlockId(1)), 1);
    }

    #[test]
    fn under_and_over_replication() {
        let mut bm = BlockMap::new();
        for n in 0..2 {
            bm.add(BlockId(1), NodeId(n));
        }
        for n in 0..5 {
            bm.add(BlockId(2), NodeId(n));
        }
        let under = bm.under_replicated(|_| 3);
        assert_eq!(under, vec![(BlockId(1), 1)]);
        let over = bm.over_replicated(|_| 3);
        assert_eq!(over, vec![(BlockId(2), 2)]);
    }

    #[test]
    fn node_removal_classifies_loss() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0)); // only replica
        let (degraded, lost) = bm.remove_node(NodeId(0));
        assert_eq!(degraded, vec![BlockId(1)]);
        assert_eq!(lost, vec![BlockId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 1);
        assert_eq!(bm.replica_count(BlockId(2)), 0);
    }

    #[test]
    fn totals() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        assert_eq!(bm.num_blocks(), 2);
        assert_eq!(bm.total_replicas(), 3);
        bm.drop_block(BlockId(1));
        assert_eq!(bm.num_blocks(), 1);
        assert_eq!(bm.total_replicas(), 1);
    }

    #[test]
    fn empty_block_queries() {
        let bm = BlockMap::new();
        assert!(bm.locations(BlockId(9)).is_empty());
        assert_eq!(bm.replica_count(BlockId(9)), 0);
        assert!(!bm.holds(BlockId(9), NodeId(0)));
    }

    #[test]
    fn index_tracks_add_remove_and_target_changes() {
        let mut bm = BlockMap::new();
        bm.set_target(BlockId(1), 3);
        // No replicas yet: dark, not under.
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(1)]);
        assert!(bm.under_replicated_indexed().is_empty());

        bm.add(BlockId(1), NodeId(0));
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 2)]);
        assert_eq!(bm.dark_blocks().count(), 0);

        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(1), NodeId(2));
        assert!(bm.under_replicated_indexed().is_empty());
        assert!(bm.over_replicated_indexed().is_empty());

        bm.add(BlockId(1), NodeId(3));
        assert_eq!(bm.over_replicated_indexed(), vec![(BlockId(1), 1)]);

        // Target raised: over turns into under.
        bm.set_target(BlockId(1), 6);
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 2)]);
        assert!(bm.over_replicated_indexed().is_empty());

        // Lose everything: dark again.
        for n in 0..4 {
            bm.remove(BlockId(1), NodeId(n));
        }
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(1)]);
        assert!(bm.under_replicated_indexed().is_empty());

        bm.drop_block(BlockId(1));
        assert_eq!(bm.dark_blocks().count(), 0);
        assert_eq!(bm.target(BlockId(1)), None);
    }

    #[test]
    fn untracked_blocks_stay_out_of_the_index() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(7), NodeId(0));
        assert!(bm.under_replicated_indexed().is_empty());
        assert!(bm.over_replicated_indexed().is_empty());
        assert_eq!(bm.dark_blocks().count(), 0);
        // The brute-force scan still sees it through its closure.
        assert_eq!(bm.under_replicated(|_| 2), vec![(BlockId(7), 1)]);
    }

    #[test]
    fn remove_node_updates_index() {
        let mut bm = BlockMap::new();
        for b in [1u64, 2] {
            bm.set_target(BlockId(b), 2);
        }
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        let (degraded, lost) = bm.remove_node(NodeId(0));
        assert_eq!(degraded, vec![BlockId(1)]);
        assert_eq!(lost, vec![BlockId(2)]);
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 1)]);
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(2)]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One mutation against the map: (kind, block, node, target).
        fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u32, usize)>> {
            prop::collection::vec((0u8..5, 0u64..10, 0u32..6, 0usize..5), 1..80)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The deficit index agrees with a brute-force scan after any
            /// sequence of add / remove / set_target / remove_node /
            /// drop_block operations.
            #[test]
            fn index_matches_brute_force_scan(ops in arb_ops()) {
                let mut bm = BlockMap::new();
                for (kind, b, n, t) in ops {
                    match kind {
                        0 => {
                            bm.add(BlockId(b), NodeId(n));
                        }
                        1 => {
                            bm.remove(BlockId(b), NodeId(n));
                        }
                        2 => bm.set_target(BlockId(b), t),
                        3 => {
                            bm.remove_node(NodeId(n));
                        }
                        _ => bm.drop_block(BlockId(b)),
                    }

                    // untracked blocks are outside the index by design:
                    // the reference scan treats them as "never deficient"
                    let under_ref = bm.under_replicated(|b| bm.target(b).unwrap_or(0));
                    let over_ref = bm.over_replicated(|b| bm.target(b).unwrap_or(usize::MAX));
                    prop_assert_eq!(bm.under_replicated_indexed(), under_ref);
                    prop_assert_eq!(bm.over_replicated_indexed(), over_ref);

                    let dark_ref: Vec<BlockId> = (0..10)
                        .map(BlockId)
                        .filter(|&b| bm.target(b).is_some() && bm.replica_count(b) == 0)
                        .collect();
                    prop_assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), dark_ref);
                }
            }
        }
    }

    #[test]
    fn indexed_matches_brute_force_against_targets() {
        let mut bm = BlockMap::new();
        for b in 0..10u64 {
            bm.set_target(BlockId(b), (b % 4) as usize + 1);
            for n in 0..(b % 5) as u32 {
                bm.add(BlockId(b), NodeId(n));
            }
        }
        let want = |bm: &BlockMap, b: BlockId| bm.target(b).unwrap_or(0);
        assert_eq!(
            bm.under_replicated_indexed(),
            bm.under_replicated(|b| want(&bm, b))
        );
        assert_eq!(
            bm.over_replicated_indexed(),
            bm.over_replicated(|b| want(&bm, b))
        );
    }
}
