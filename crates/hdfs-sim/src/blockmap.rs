//! The block → replica-locations map, in columnar layout.
//!
//! The namenode side of replication: which datanodes hold each block,
//! plus derived under-/over-replication queries that drive both HDFS's
//! own re-replication after failures and ERMS's elastic actions.
//!
//! Block ids are minted from the namespace's monotone counter, so they
//! are **dense** — the map stores its state as columns indexed by
//! `BlockId.0` (a sorted replica list per block, a target per block)
//! instead of hash- or tree-keyed records. Lookups are O(1) array
//! loads, scans walk contiguous memory in id order, and the checkpoint
//! section serializes the columns as parallel arrays.
//!
//! Alongside the raw locations the map keeps a **deficit index**: each
//! block's replication *target* (registered by the cluster as files are
//! created, re-replicated, encoded and decoded) plus three derived sets
//! — under-replicated, over-replicated and dark (zero live replicas) —
//! maintained incrementally in [`add`](BlockMap::add),
//! [`remove`](BlockMap::remove) and [`remove_node`](BlockMap::remove_node).
//! The repair scan then visits only deficient blocks instead of walking
//! the whole map; the closure-driven
//! [`under_replicated`](BlockMap::under_replicated) /
//! [`over_replicated`](BlockMap::over_replicated) scans remain as the
//! brute-force reference the property tests compare the index against.

use crate::block::BlockId;
use crate::topology::NodeId;
use std::collections::BTreeSet;

#[derive(Debug, Default)]
pub struct BlockMap {
    /// Column: replica holders per block, sorted by node id, indexed by
    /// `BlockId.0`. An empty row means zero live replicas.
    locations: Vec<Vec<NodeId>>,
    /// Column: desired replica count per block, indexed by `BlockId.0`
    /// (`None` = untracked: the block never appears in the derived
    /// sets, matching the closure scans' `unknown → skip` conventions).
    targets: Vec<Option<u32>>,
    /// Tracked blocks with `0 < replicas < target`.
    under: BTreeSet<BlockId>,
    /// Tracked blocks with `replicas > target`.
    over: BTreeSet<BlockId>,
    /// Tracked blocks with zero live replicas (lost unless parity or a
    /// retained crashed disk can bring them back).
    dark: BTreeSet<BlockId>,
    /// Blocks with at least one live replica.
    live_blocks: usize,
    /// Total replica records (Σ per-block row lengths).
    replicas: usize,
}

const NO_NODES: &[NodeId] = &[];

impl BlockMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the columns to cover `block`.
    fn ensure(&mut self, block: BlockId) -> usize {
        let i = block.0 as usize;
        if i >= self.locations.len() {
            self.locations.resize_with(i + 1, Vec::new);
            self.targets.resize(i + 1, None);
        }
        i
    }

    /// Record a replica. Returns false if it was already recorded.
    pub fn add(&mut self, block: BlockId, node: NodeId) -> bool {
        let i = self.ensure(block);
        let row = &mut self.locations[i];
        match row.binary_search(&node) {
            Ok(_) => false,
            Err(pos) => {
                if row.is_empty() {
                    self.live_blocks += 1;
                }
                row.insert(pos, node);
                self.replicas += 1;
                self.reindex(block);
                true
            }
        }
    }

    /// Remove a replica record. Returns false if it was not present.
    pub fn remove(&mut self, block: BlockId, node: NodeId) -> bool {
        let Some(row) = self.locations.get_mut(block.0 as usize) else {
            return false;
        };
        match row.binary_search(&node) {
            Ok(pos) => {
                row.remove(pos);
                self.replicas -= 1;
                if row.is_empty() {
                    self.live_blocks -= 1;
                }
                self.reindex(block);
                true
            }
            Err(_) => false,
        }
    }

    /// Register the desired replica count for a block, entering it into
    /// the deficit index. The cluster calls this wherever a block's
    /// target changes: file create, `setReplication`, parity placement,
    /// encode (data targets drop to 1) and decode.
    pub fn set_target(&mut self, block: BlockId, target: usize) {
        let i = self.ensure(block);
        self.targets[i] = Some(target as u32);
        self.reindex(block);
    }

    /// The registered replication target for a block, if any.
    pub fn target(&self, block: BlockId) -> Option<usize> {
        self.targets
            .get(block.0 as usize)
            .copied()
            .flatten()
            .map(|t| t as usize)
    }

    /// Forget a block entirely (file deleted).
    pub fn drop_block(&mut self, block: BlockId) {
        if let Some(row) = self.locations.get_mut(block.0 as usize) {
            if !row.is_empty() {
                self.live_blocks -= 1;
                self.replicas -= row.len();
                row.clear();
            }
        }
        if let Some(t) = self.targets.get_mut(block.0 as usize) {
            *t = None;
        }
        self.under.remove(&block);
        self.over.remove(&block);
        self.dark.remove(&block);
    }

    /// Recompute one block's membership in the derived sets after its
    /// replica count or target changed. O(log deficient).
    fn reindex(&mut self, block: BlockId) {
        let Some(target) = self.target(block) else {
            self.under.remove(&block);
            self.over.remove(&block);
            self.dark.remove(&block);
            return;
        };
        let count = self.replica_count(block);
        set_membership(&mut self.dark, block, count == 0);
        set_membership(&mut self.under, block, count > 0 && count < target);
        set_membership(&mut self.over, block, count > target);
    }

    /// Nodes currently holding `block`, in id order — a borrowed view
    /// straight into the column, no allocation.
    pub fn replica_nodes(&self, block: BlockId) -> &[NodeId] {
        self.locations
            .get(block.0 as usize)
            .map_or(NO_NODES, Vec::as_slice)
    }

    pub fn replica_count(&self, block: BlockId) -> usize {
        self.locations.get(block.0 as usize).map_or(0, Vec::len)
    }

    /// Iterate every (block, replica locations) pair in id order. Blocks
    /// with zero live replicas have no entry — finding those requires
    /// the namespace.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &[NodeId])> + '_ {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.is_empty())
            .map(|(i, row)| (BlockId(i as u64), row.as_slice()))
    }

    pub fn holds(&self, block: BlockId, node: NodeId) -> bool {
        self.replica_nodes(block).binary_search(&node).is_ok()
    }

    /// Every (block, deficit) with fewer than `want(block)` replicas.
    ///
    /// Brute-force scan of every live block; the deficit index
    /// ([`under_replicated_indexed`](Self::under_replicated_indexed))
    /// answers the same question in O(deficient) and the property tests
    /// pin the two against each other.
    pub fn under_replicated(
        &self,
        mut want: impl FnMut(BlockId) -> usize,
    ) -> Vec<(BlockId, usize)> {
        self.blocks()
            .filter_map(|(b, locs)| {
                let target = want(b);
                (locs.len() < target).then(|| (b, target - locs.len()))
            })
            .collect()
    }

    /// Every (block, excess) with more than `want(block)` replicas.
    /// Brute-force counterpart of
    /// [`over_replicated_indexed`](Self::over_replicated_indexed).
    pub fn over_replicated(&self, mut want: impl FnMut(BlockId) -> usize) -> Vec<(BlockId, usize)> {
        self.blocks()
            .filter_map(|(b, locs)| {
                let target = want(b);
                (locs.len() > target).then(|| (b, locs.len() - target))
            })
            .collect()
    }

    /// Every (block, deficit) from the index: tracked blocks with at
    /// least one live replica but fewer than their registered target.
    /// O(deficient), id order — identical order and contents to the
    /// brute-force scan driven by the registered targets.
    pub fn under_replicated_indexed(&self) -> Vec<(BlockId, usize)> {
        self.under
            .iter()
            .map(|&b| {
                let target = self.target(b).unwrap_or(0);
                (b, target - self.replica_count(b))
            })
            .collect()
    }

    /// Every (block, excess) from the index. O(excess), id order.
    pub fn over_replicated_indexed(&self) -> Vec<(BlockId, usize)> {
        self.over
            .iter()
            .map(|&b| {
                let target = self.target(b).unwrap_or(0);
                (b, self.replica_count(b) - target)
            })
            .collect()
    }

    /// Tracked blocks with zero live replicas, in id order. Fuels dark
    /// RS-shard reconstruction without a namespace walk.
    pub fn dark_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.dark.iter().copied()
    }

    /// Blocks that lost *all* replicas after removing `node` (data loss
    /// unless parity can recover them).
    pub fn remove_node(&mut self, node: NodeId) -> (Vec<BlockId>, Vec<BlockId>) {
        let mut degraded = Vec::new();
        let mut lost = Vec::new();
        let affected: Vec<BlockId> = self
            .locations
            .iter()
            .enumerate()
            .filter(|(_, row)| row.binary_search(&node).is_ok())
            .map(|(i, _)| BlockId(i as u64))
            .collect();
        for b in affected {
            self.remove(b, node);
            if self.replica_count(b) == 0 {
                lost.push(b);
            } else {
                degraded.push(b);
            }
        }
        (degraded, lost)
    }

    /// Blocks with at least one live replica.
    pub fn num_blocks(&self) -> usize {
        self.live_blocks
    }

    /// Total replica records (Σ per-block locations).
    pub fn total_replicas(&self) -> usize {
        self.replicas
    }
}

impl checkpoint::Checkpointable for BlockMap {
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::MapBuilder;
        use checkpoint::Value;
        // Only the raw facts are stored — the under/over/dark derived
        // sets are recomputed on load via the same `reindex` path the
        // live mutations use — and they go on the wire **columnar**:
        // the replica lists as (block ids, row ends, flat node column),
        // the targets as two parallel arrays.
        let mut blocks = Vec::with_capacity(self.live_blocks);
        let mut row_ends = Vec::with_capacity(self.live_blocks);
        let mut nodes = Vec::with_capacity(self.replicas);
        let mut end = 0u64;
        for (b, row) in self.blocks() {
            blocks.push(Value::U64(b.0));
            end += row.len() as u64;
            row_ends.push(Value::U64(end));
            nodes.extend(row.iter().map(|n| Value::U64(u64::from(n.0))));
        }
        let mut target_blocks = Vec::new();
        let mut target_values = Vec::new();
        for (i, t) in self.targets.iter().enumerate() {
            if let Some(t) = t {
                target_blocks.push(Value::U64(i as u64));
                target_values.push(Value::U64(u64::from(*t)));
            }
        }
        MapBuilder::new()
            .put("blocks", Value::Seq(blocks))
            .put("row_ends", Value::Seq(row_ends))
            .put("nodes", Value::Seq(nodes))
            .put("target_blocks", Value::Seq(target_blocks))
            .put("target_values", Value::Seq(target_values))
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.locations.clear();
        self.targets.clear();
        self.under.clear();
        self.over.clear();
        self.dark.clear();
        self.live_blocks = 0;
        self.replicas = 0;
        let blocks = c::get_seq(state, "blocks")?;
        let row_ends = c::get_seq(state, "row_ends")?;
        let nodes = c::get_seq(state, "nodes")?;
        if blocks.len() != row_ends.len() {
            return Err(checkpoint::CheckpointError::Corrupt(
                "blocks and row_ends columns differ in length".into(),
            ));
        }
        let mut start = 0usize;
        for (bv, ev) in blocks.iter().zip(row_ends) {
            let b = BlockId(c::as_u64(bv, "blocks[]")?);
            let end = c::as_u64(ev, "row_ends[]")? as usize;
            if end < start || end > nodes.len() {
                return Err(checkpoint::CheckpointError::Corrupt(
                    "row_ends column is not a monotone prefix sum".into(),
                ));
            }
            for nv in &nodes[start..end] {
                let n = NodeId(c::as_u64(nv, "nodes[]")? as u32);
                self.add(b, n);
            }
            start = end;
        }
        let target_blocks = c::get_seq(state, "target_blocks")?;
        let target_values = c::get_seq(state, "target_values")?;
        if target_blocks.len() != target_values.len() {
            return Err(checkpoint::CheckpointError::Corrupt(
                "target columns differ in length".into(),
            ));
        }
        for (bv, tv) in target_blocks.iter().zip(target_values) {
            let b = BlockId(c::as_u64(bv, "target_blocks[]")?);
            let t = c::as_u64(tv, "target_values[]")? as usize;
            self.set_target(b, t);
        }
        Ok(())
    }
}

/// Insert or remove `block` from `set` so membership equals `wanted`.
fn set_membership(set: &mut BTreeSet<BlockId>, block: BlockId, wanted: bool) {
    if wanted {
        set.insert(block);
    } else {
        set.remove(&block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_locations() {
        let mut bm = BlockMap::new();
        assert!(bm.add(BlockId(1), NodeId(0)));
        assert!(!bm.add(BlockId(1), NodeId(0)), "duplicate");
        bm.add(BlockId(1), NodeId(2));
        assert_eq!(bm.replica_nodes(BlockId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 2);
        assert!(bm.holds(BlockId(1), NodeId(2)));
        assert!(bm.remove(BlockId(1), NodeId(0)));
        assert!(!bm.remove(BlockId(1), NodeId(0)));
        assert_eq!(bm.replica_count(BlockId(1)), 1);
    }

    #[test]
    fn under_and_over_replication() {
        let mut bm = BlockMap::new();
        for n in 0..2 {
            bm.add(BlockId(1), NodeId(n));
        }
        for n in 0..5 {
            bm.add(BlockId(2), NodeId(n));
        }
        let under = bm.under_replicated(|_| 3);
        assert_eq!(under, vec![(BlockId(1), 1)]);
        let over = bm.over_replicated(|_| 3);
        assert_eq!(over, vec![(BlockId(2), 2)]);
    }

    #[test]
    fn node_removal_classifies_loss() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0)); // only replica
        let (degraded, lost) = bm.remove_node(NodeId(0));
        assert_eq!(degraded, vec![BlockId(1)]);
        assert_eq!(lost, vec![BlockId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 1);
        assert_eq!(bm.replica_count(BlockId(2)), 0);
    }

    #[test]
    fn totals() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        assert_eq!(bm.num_blocks(), 2);
        assert_eq!(bm.total_replicas(), 3);
        bm.drop_block(BlockId(1));
        assert_eq!(bm.num_blocks(), 1);
        assert_eq!(bm.total_replicas(), 1);
    }

    #[test]
    fn empty_block_queries() {
        let bm = BlockMap::new();
        assert!(bm.replica_nodes(BlockId(9)).is_empty());
        assert_eq!(bm.replica_count(BlockId(9)), 0);
        assert!(!bm.holds(BlockId(9), NodeId(0)));
    }

    #[test]
    fn blocks_iterates_live_rows_in_id_order() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(5), NodeId(0));
        bm.add(BlockId(2), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        bm.set_target(BlockId(7), 3); // tracked but dark: no row
        let rows: Vec<(BlockId, Vec<NodeId>)> =
            bm.blocks().map(|(b, locs)| (b, locs.to_vec())).collect();
        assert_eq!(
            rows,
            vec![
                (BlockId(2), vec![NodeId(0), NodeId(1)]),
                (BlockId(5), vec![NodeId(0)]),
            ]
        );
    }

    #[test]
    fn index_tracks_add_remove_and_target_changes() {
        let mut bm = BlockMap::new();
        bm.set_target(BlockId(1), 3);
        // No replicas yet: dark, not under.
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(1)]);
        assert!(bm.under_replicated_indexed().is_empty());

        bm.add(BlockId(1), NodeId(0));
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 2)]);
        assert_eq!(bm.dark_blocks().count(), 0);

        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(1), NodeId(2));
        assert!(bm.under_replicated_indexed().is_empty());
        assert!(bm.over_replicated_indexed().is_empty());

        bm.add(BlockId(1), NodeId(3));
        assert_eq!(bm.over_replicated_indexed(), vec![(BlockId(1), 1)]);

        // Target raised: over turns into under.
        bm.set_target(BlockId(1), 6);
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 2)]);
        assert!(bm.over_replicated_indexed().is_empty());

        // Lose everything: dark again.
        for n in 0..4 {
            bm.remove(BlockId(1), NodeId(n));
        }
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(1)]);
        assert!(bm.under_replicated_indexed().is_empty());

        bm.drop_block(BlockId(1));
        assert_eq!(bm.dark_blocks().count(), 0);
        assert_eq!(bm.target(BlockId(1)), None);
    }

    #[test]
    fn untracked_blocks_stay_out_of_the_index() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(7), NodeId(0));
        assert!(bm.under_replicated_indexed().is_empty());
        assert!(bm.over_replicated_indexed().is_empty());
        assert_eq!(bm.dark_blocks().count(), 0);
        // The brute-force scan still sees it through its closure.
        assert_eq!(bm.under_replicated(|_| 2), vec![(BlockId(7), 1)]);
    }

    #[test]
    fn remove_node_updates_index() {
        let mut bm = BlockMap::new();
        for b in [1u64, 2] {
            bm.set_target(BlockId(b), 2);
        }
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        let (degraded, lost) = bm.remove_node(NodeId(0));
        assert_eq!(degraded, vec![BlockId(1)]);
        assert_eq!(lost, vec![BlockId(2)]);
        assert_eq!(bm.under_replicated_indexed(), vec![(BlockId(1), 1)]);
        assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), vec![BlockId(2)]);
    }

    #[test]
    fn columnar_checkpoint_roundtrip() {
        use checkpoint::Checkpointable;
        let mut bm = BlockMap::new();
        bm.set_target(BlockId(0), 2);
        bm.set_target(BlockId(3), 1);
        bm.add(BlockId(0), NodeId(1));
        bm.add(BlockId(3), NodeId(0));
        bm.add(BlockId(3), NodeId(2));
        bm.add(BlockId(5), NodeId(4)); // untracked but live
        let wire = bm.save_state();
        let mut back = BlockMap::new();
        back.load_state(&wire).unwrap();
        assert_eq!(back.num_blocks(), bm.num_blocks());
        assert_eq!(back.total_replicas(), bm.total_replicas());
        assert_eq!(back.replica_nodes(BlockId(3)), bm.replica_nodes(BlockId(3)));
        assert_eq!(back.target(BlockId(0)), Some(2));
        assert_eq!(
            back.under_replicated_indexed(),
            bm.under_replicated_indexed()
        );
        assert_eq!(back.save_state(), wire, "re-save is bit-identical");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One mutation against the map: (kind, block, node, target).
        fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64, u32, usize)>> {
            prop::collection::vec((0u8..5, 0u64..10, 0u32..6, 0usize..5), 1..80)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The deficit index agrees with a brute-force scan after any
            /// sequence of add / remove / set_target / remove_node /
            /// drop_block operations.
            #[test]
            fn index_matches_brute_force_scan(ops in arb_ops()) {
                let mut bm = BlockMap::new();
                for (kind, b, n, t) in ops {
                    match kind {
                        0 => {
                            bm.add(BlockId(b), NodeId(n));
                        }
                        1 => {
                            bm.remove(BlockId(b), NodeId(n));
                        }
                        2 => bm.set_target(BlockId(b), t),
                        3 => {
                            bm.remove_node(NodeId(n));
                        }
                        _ => bm.drop_block(BlockId(b)),
                    }

                    // untracked blocks are outside the index by design:
                    // the reference scan treats them as "never deficient"
                    let under_ref = bm.under_replicated(|b| bm.target(b).unwrap_or(0));
                    let over_ref = bm.over_replicated(|b| bm.target(b).unwrap_or(usize::MAX));
                    prop_assert_eq!(bm.under_replicated_indexed(), under_ref);
                    prop_assert_eq!(bm.over_replicated_indexed(), over_ref);

                    let dark_ref: Vec<BlockId> = (0..10)
                        .map(BlockId)
                        .filter(|&b| bm.target(b).is_some() && bm.replica_count(b) == 0)
                        .collect();
                    prop_assert_eq!(bm.dark_blocks().collect::<Vec<_>>(), dark_ref);

                    let live = bm.blocks().count();
                    prop_assert_eq!(bm.num_blocks(), live);
                    let total: usize = bm.blocks().map(|(_, locs)| locs.len()).sum();
                    prop_assert_eq!(bm.total_replicas(), total);
                }
            }
        }
    }

    #[test]
    fn indexed_matches_brute_force_against_targets() {
        let mut bm = BlockMap::new();
        for b in 0..10u64 {
            bm.set_target(BlockId(b), (b % 4) as usize + 1);
            for n in 0..(b % 5) as u32 {
                bm.add(BlockId(b), NodeId(n));
            }
        }
        let want = |bm: &BlockMap, b: BlockId| bm.target(b).unwrap_or(0);
        assert_eq!(
            bm.under_replicated_indexed(),
            bm.under_replicated(|b| want(&bm, b))
        );
        assert_eq!(
            bm.over_replicated_indexed(),
            bm.over_replicated(|b| want(&bm, b))
        );
    }
}
