//! The block → replica-locations map.
//!
//! The namenode side of replication: which datanodes hold each block,
//! plus derived under-/over-replication queries that drive both HDFS's
//! own re-replication after failures and ERMS's elastic actions.

use crate::block::BlockId;
use crate::topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Default)]
pub struct BlockMap {
    locations: BTreeMap<BlockId, BTreeSet<NodeId>>,
}

impl BlockMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a replica. Returns false if it was already recorded.
    pub fn add(&mut self, block: BlockId, node: NodeId) -> bool {
        self.locations.entry(block).or_default().insert(node)
    }

    /// Remove a replica record. Returns false if it was not present.
    pub fn remove(&mut self, block: BlockId, node: NodeId) -> bool {
        match self.locations.get_mut(&block) {
            Some(set) => {
                let removed = set.remove(&node);
                if set.is_empty() {
                    self.locations.remove(&block);
                }
                removed
            }
            None => false,
        }
    }

    /// Forget a block entirely (file deleted).
    pub fn drop_block(&mut self, block: BlockId) {
        self.locations.remove(&block);
    }

    /// Nodes currently holding `block`, in id order.
    pub fn locations(&self, block: BlockId) -> Vec<NodeId> {
        self.locations
            .get(&block)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    pub fn replica_count(&self, block: BlockId) -> usize {
        self.locations.get(&block).map_or(0, BTreeSet::len)
    }

    /// Iterate every (block, replica locations) pair in id order. Blocks
    /// with zero live replicas have no entry — finding those requires
    /// the namespace.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BTreeSet<NodeId>)> + '_ {
        self.locations.iter().map(|(&b, locs)| (b, locs))
    }

    pub fn holds(&self, block: BlockId, node: NodeId) -> bool {
        self.locations
            .get(&block)
            .is_some_and(|s| s.contains(&node))
    }

    /// Every (block, deficit) with fewer than `want(block)` replicas.
    pub fn under_replicated(
        &self,
        mut want: impl FnMut(BlockId) -> usize,
    ) -> Vec<(BlockId, usize)> {
        self.locations
            .iter()
            .filter_map(|(&b, locs)| {
                let target = want(b);
                (locs.len() < target).then(|| (b, target - locs.len()))
            })
            .collect()
    }

    /// Every (block, excess) with more than `want(block)` replicas.
    pub fn over_replicated(&self, mut want: impl FnMut(BlockId) -> usize) -> Vec<(BlockId, usize)> {
        self.locations
            .iter()
            .filter_map(|(&b, locs)| {
                let target = want(b);
                (locs.len() > target).then(|| (b, locs.len() - target))
            })
            .collect()
    }

    /// Blocks that lost *all* replicas after removing `node` (data loss
    /// unless parity can recover them).
    pub fn remove_node(&mut self, node: NodeId) -> (Vec<BlockId>, Vec<BlockId>) {
        let mut degraded = Vec::new();
        let mut lost = Vec::new();
        let affected: Vec<BlockId> = self
            .locations
            .iter()
            .filter(|(_, locs)| locs.contains(&node))
            .map(|(&b, _)| b)
            .collect();
        for b in affected {
            self.remove(b, node);
            if self.replica_count(b) == 0 {
                lost.push(b);
            } else {
                degraded.push(b);
            }
        }
        (degraded, lost)
    }

    pub fn num_blocks(&self) -> usize {
        self.locations.len()
    }

    /// Total replica records (Σ per-block locations).
    pub fn total_replicas(&self) -> usize {
        self.locations.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_locations() {
        let mut bm = BlockMap::new();
        assert!(bm.add(BlockId(1), NodeId(0)));
        assert!(!bm.add(BlockId(1), NodeId(0)), "duplicate");
        bm.add(BlockId(1), NodeId(2));
        assert_eq!(bm.locations(BlockId(1)), vec![NodeId(0), NodeId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 2);
        assert!(bm.holds(BlockId(1), NodeId(2)));
        assert!(bm.remove(BlockId(1), NodeId(0)));
        assert!(!bm.remove(BlockId(1), NodeId(0)));
        assert_eq!(bm.replica_count(BlockId(1)), 1);
    }

    #[test]
    fn under_and_over_replication() {
        let mut bm = BlockMap::new();
        for n in 0..2 {
            bm.add(BlockId(1), NodeId(n));
        }
        for n in 0..5 {
            bm.add(BlockId(2), NodeId(n));
        }
        let under = bm.under_replicated(|_| 3);
        assert_eq!(under, vec![(BlockId(1), 1)]);
        let over = bm.over_replicated(|_| 3);
        assert_eq!(over, vec![(BlockId(2), 2)]);
    }

    #[test]
    fn node_removal_classifies_loss() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0)); // only replica
        let (degraded, lost) = bm.remove_node(NodeId(0));
        assert_eq!(degraded, vec![BlockId(1)]);
        assert_eq!(lost, vec![BlockId(2)]);
        assert_eq!(bm.replica_count(BlockId(1)), 1);
        assert_eq!(bm.replica_count(BlockId(2)), 0);
    }

    #[test]
    fn totals() {
        let mut bm = BlockMap::new();
        bm.add(BlockId(1), NodeId(0));
        bm.add(BlockId(1), NodeId(1));
        bm.add(BlockId(2), NodeId(0));
        assert_eq!(bm.num_blocks(), 2);
        assert_eq!(bm.total_replicas(), 3);
        bm.drop_block(BlockId(1));
        assert_eq!(bm.num_blocks(), 1);
        assert_eq!(bm.total_replicas(), 1);
    }

    #[test]
    fn empty_block_queries() {
        let bm = BlockMap::new();
        assert!(bm.locations(BlockId(9)).is_empty());
        assert_eq!(bm.replica_count(BlockId(9)), 0);
        assert!(!bm.holds(BlockId(9), NodeId(0)));
    }
}
