//! Component micro-benchmarks: the hot paths of every substrate.

use condor::parser::parse_expr;
use condor::{ClassAd, Matchmaker};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use erasure::gf256;
use erasure::ReedSolomon;
use hdfs_sim::flow::FlowNet;
use hdfs_sim::placement::{DefaultRackAware, NodeView, PlacementContext, PlacementPolicy};
use hdfs_sim::{NodeId, RackId};
use simcore::units::Bandwidth;
use simcore::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_gf256(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256");
    let src: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; src.len()];
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("mul_acc_slice_64k", |b| {
        b.iter(|| gf256::mul_acc_slice(black_box(&mut dst), black_box(&src), 0x57));
    });
    g.bench_function("xor_slice_64k", |b| {
        b.iter(|| gf256::mul_acc_slice(black_box(&mut dst), black_box(&src), 1));
    });
    g.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut g = c.benchmark_group("reed_solomon");
    let rs = ReedSolomon::paper_cold_code(); // RS(10,4)
    let shard = 256 * 1024;
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| (0..shard).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    g.throughput(Throughput::Bytes((shard * 10) as u64));
    g.bench_function("encode_rs_10_4_2.5MB", |b| {
        b.iter(|| rs.encode(black_box(&data)).expect("encode"));
    });
    let parity = rs.encode(&data).expect("encode");
    let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
    g.bench_function("verify_rs_10_4_2.5MB", |b| {
        b.iter(|| rs.verify(black_box(&full)).expect("verify"));
    });
    g.bench_function("reconstruct_4_erasures", |b| {
        b.iter_batched(
            || {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for i in [0usize, 3, 7, 11] {
                    shards[i] = None;
                }
                shards
            },
            |mut shards| rs.reconstruct(black_box(&mut shards)).expect("decode"),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_cep(c: &mut Criterion) {
    let mut g = c.benchmark_group("cep");
    // the judge's pipeline: 4 registered queries, audit-shaped events
    let lines: Vec<String> = (0..1000)
        .map(|i| {
            cep::audit::format_audit_line(
                SimTime::from_millis(i),
                "hadoop",
                "/10.0.0.9",
                "open",
                &format!("/data/file_{}", i % 40),
                None,
            )
        })
        .collect();
    g.throughput(Throughput::Elements(lines.len() as u64));
    g.bench_function("parse_1k_audit_lines", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for l in &lines {
                if cep::audit::parse_line(black_box(l)).is_ok() {
                    n += 1;
                }
            }
            n
        });
    });
    g.bench_function("engine_push_1k_events", |b| {
        b.iter_batched(
            || {
                let mut eng = cep::CepEngine::new();
                for field in ["src", "ugi", "ip"] {
                    eng.register(cep::QuerySpec::count_per_group(
                        "audit",
                        field,
                        SimDuration::from_secs(300),
                    ));
                }
                let events: Vec<cep::Event> = lines
                    .iter()
                    .map(|l| cep::audit::parse_line(l).expect("valid"))
                    .collect();
                (eng, events)
            },
            |(mut eng, events)| {
                for e in &events {
                    eng.push(black_box(e));
                }
                eng.events_seen()
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_classads(c: &mut Criterion) {
    let mut g = c.benchmark_group("classads");
    let expr = parse_expr(
        "target.Standby == true && target.FreeDisk > my.Need * 10 && target.Rack == my.Rack",
    )
    .expect("parses");
    let mut mm = Matchmaker::new();
    for i in 0..100 {
        mm.advertise(
            format!("dn{i}"),
            ClassAd::new()
                .with("Rack", i64::from(i % 3))
                .with("FreeDisk", 1000 - i64::from(i) * 7)
                .with("Standby", i % 2 == 0),
            None,
        );
    }
    let request = ClassAd::new().with("Need", 5i64).with("Rack", 1i64);
    g.bench_function("parse_requirements", |b| {
        b.iter(|| {
            parse_expr(black_box(
                "target.Standby == true && target.FreeDisk > my.Need * 10",
            ))
            .expect("parses")
        });
    });
    g.bench_function("match_100_ads", |b| {
        b.iter(|| mm.matches(black_box(&request), &expr, None).len());
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    let views: Vec<NodeView> = (0..18u32)
        .map(|i| NodeView {
            id: NodeId(i),
            rack: RackId((i % 3) as u16),
            serving: true,
            standby_pool: i >= 10,
            free: (1u64 << 37) - u64::from(i) * (1 << 30),
            load: (i % 5) as usize,
            holds_block: i % 7 == 0,
            file_block_count: (i % 4) as usize,
        })
        .collect();
    let locs = [NodeId(0), NodeId(7), NodeId(14)];
    let racks = [RackId(0), RackId(1), RackId(2)];
    let ctx = PlacementContext {
        views: &views,
        replica_locations: &locs,
        replica_racks: &racks,
        default_replication: 3,
        writer: None,
        block_len: 64 << 20,
    };
    g.bench_function("default_rack_aware_5_targets", |b| {
        b.iter(|| DefaultRackAware.choose_targets(black_box(&ctx), 5));
    });
    let erms = erms::ErmsPlacement::new();
    g.bench_function("erms_algorithm1_5_targets", |b| {
        b.iter(|| erms.choose_targets(black_box(&ctx), 5));
    });
    g.finish();
}

fn bench_flownet(c: &mut Criterion) {
    let mut g = c.benchmark_group("flownet");
    g.bench_function("start_remove_100_flows", |b| {
        b.iter_batched(
            || {
                let mut net = FlowNet::new();
                let res: Vec<_> = (0..40)
                    .map(|_| net.add_resource(Bandwidth::from_mb_per_sec(100.0)))
                    .collect();
                (net, res)
            },
            |(mut net, res)| {
                let mut flows = Vec::with_capacity(100);
                for i in 0..100usize {
                    let path = vec![res[i % 40], res[(i * 7 + 1) % 40]];
                    flows.push(net.start(SimTime::ZERO, 1 << 20, path));
                }
                for f in flows {
                    net.remove(SimTime::from_millis(1), f);
                }
                net.active_flows()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_gf256,
    bench_reed_solomon,
    bench_cep,
    bench_classads,
    bench_placement,
    bench_flownet
);
criterion_main!(micro);
