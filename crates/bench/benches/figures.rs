//! One Criterion bench per paper figure, at reduced scale.
//!
//! These wrap the same experiment functions the `figures` binary runs at
//! full scale, so `cargo bench` exercises every figure's code path and
//! tracks the simulator's own performance over time. The scientific
//! output (the tables) comes from `cargo run -p bench --release --bin
//! figures -- all`.

use bench::capacity::{self, CapacityConfig, NodeModel};
use bench::dfsio::{self, DfsIoConfig};
use bench::increase;
use bench::replay::{self, ReplayConfig};
use bench::Mode;
use criterion::{criterion_group, criterion_main, Criterion};
use erms::IncreaseStrategy;
use simcore::units::MB;
use std::hint::black_box;

fn fig3_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_replay");
    g.sample_size(10);
    let mut cfg = ReplayConfig::small();
    cfg.trace.num_jobs = 40;
    cfg.cooldown = simcore::SimDuration::from_secs(600);
    g.bench_function("vanilla_fifo", |b| {
        b.iter(|| replay::run(black_box(Mode::Vanilla), "fifo", &cfg).jobs_completed);
    });
    g.bench_function("erms_tau8_fair", |b| {
        b.iter(|| replay::run(black_box(Mode::Erms { tau_hot: 8.0 }), "fair", &cfg).jobs_completed);
    });
    g.finish();
}

fn fig6_dfsio(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_dfsio");
    g.sample_size(10);
    let cfg = DfsIoConfig {
        replications: vec![1, 3],
        thread_counts: vec![7, 21],
        file_size: 256 * MB,
    };
    g.bench_function("matrix_2x2", |b| {
        b.iter(|| dfsio::run(black_box(&cfg)).len());
    });
    g.finish();
}

fn fig7_increase(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_increase");
    g.sample_size(10);
    g.bench_function("direct_256mb", |b| {
        b.iter(|| increase::time_increase(256 * MB, 3, 8, IncreaseStrategy::Direct).seconds);
    });
    g.bench_function("one_by_one_256mb", |b| {
        b.iter(|| increase::time_increase(256 * MB, 3, 8, IncreaseStrategy::OneByOne).seconds);
    });
    g.finish();
}

fn fig8_fig9_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fig9_capacity");
    g.sample_size(10);
    let cfg = CapacityConfig::small();
    g.bench_function("trial_all_active_r3_n20", |b| {
        b.iter(|| capacity::trial(NodeModel::AllActive, 3, 20, &cfg).mean_throughput_mb_s);
    });
    g.bench_function("trial_active_standby_r6_n20", |b| {
        b.iter(|| capacity::trial(NodeModel::ActiveStandby, 6, 20, &cfg).mean_throughput_mb_s);
    });
    g.finish();
}

criterion_group!(
    figures,
    fig3_replay,
    fig6_dfsio,
    fig7_increase,
    fig8_fig9_capacity
);
criterion_main!(figures);
