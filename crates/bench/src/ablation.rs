//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each ablation isolates one mechanism and measures what it buys:
//!
//! * [`placement_rebalance`] — Algorithm 1's standby parking vs placing
//!   extras anywhere: rebalance bytes owed after a boost/shed cycle
//!   (Section III.B: "does not need to re-balance when increasing and
//!   decreasing the replication factor");
//! * [`judge_rules`] — Formula (1) alone vs (1)+(2)+(3): detection of a
//!   file whose *blocks* are hot while its file-level count stays low;
//! * [`hysteresis`] — cooled-patience 1 vs 3 on a bursty replay:
//!   boost/shed thrash (completed ERMS tasks) and delivered throughput;
//! * [`predictor`] — reactive thresholding vs the EWMA pre-boost
//!   (the paper's future work): control-loop ticks until a ramping file
//!   is flagged;
//! * [`energy`] — active/standby vs all-active deployment on the same
//!   replay: standby node-hours actually burned;
//! * [`judge_backends`] — the paper's rule judge vs the learned
//!   [`erms::JudgePolicy`] backends (tabular Q-learning, HMM forward
//!   filter) on the production-traffic matrix: read tails, storage
//!   overhead, energy, and trace-oracle violations per backend.

use crate::checkpointing::Scenario;
use crate::common::{paper_standby_pool, Mode};
use crate::replay::{self, ReplayConfig};
use crate::scorecard::{run_case, Case};
use erms::{ErmsConfig, ErmsPlacement, JudgeBackend, Thresholds};
use hdfs_sim::placement::DefaultRackAware;
use hdfs_sim::{balancer, ClusterConfig, ClusterSim};
use serde::Serialize;
use simcore::units::{Bytes, MB};

/// Result of the placement ablation.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementAblation {
    /// Rebalance bytes owed after boost+shed under Algorithm 1.
    pub erms_rebalance_bytes: Bytes,
    /// Same cycle with the default policy placing extras anywhere.
    pub default_rebalance_bytes: Bytes,
    /// Active-node replica churn (copies that landed on active nodes).
    pub erms_active_copies: usize,
    pub default_active_copies: usize,
}

/// Boost a hot file 3→8 and shed back to 3 under `erms_policy`; measure
/// the disturbance left on the *active* nodes.
fn boost_shed_cycle(erms_policy: bool) -> (Bytes, usize) {
    let policy: Box<dyn hdfs_sim::PlacementPolicy> = if erms_policy {
        Box::new(ErmsPlacement::new())
    } else {
        Box::new(DefaultRackAware)
    };
    let mut c = ClusterSim::new(ClusterConfig::paper_testbed(), policy);

    let standby = paper_standby_pool();
    c.designate_standby(&standby);
    // a balanced base load on the 10 active nodes
    for i in 0..10 {
        c.create_file(&format!("/base/f{i}"), 320 * MB, 3, None)
            .expect("fits");
    }
    let file = c.create_file("/hot", 256 * MB, 3, None).expect("fits");
    for &n in &standby {
        c.commission(n);
    }
    c.run_until_quiescent();
    let baseline = balancer::plan_bytes(&balancer::plan_moves(&c, 0.02));

    // boost to 8, wait for the copies, then shed back to 3
    c.set_file_replication(file, 8);
    c.run_until_quiescent();
    let active_copies = c
        .drain_completed_copies()
        .iter()
        .filter(|s| s.succeeded && s.target.0 < 10)
        .count();
    c.set_file_replication(file, 3);
    c.run_until_quiescent();
    // power the (now drained or not) standby nodes back off, as ERMS
    // would; a node still holding a last replica refuses and stays on
    for &n in &standby {
        let _ = c.power_off(n);
    }
    let after = balancer::plan_bytes(&balancer::plan_moves(&c, 0.02));
    (after.saturating_sub(baseline), active_copies)
}

pub fn placement_rebalance() -> PlacementAblation {
    let (erms_bytes, erms_copies) = boost_shed_cycle(true);
    let (default_bytes, default_copies) = boost_shed_cycle(false);
    PlacementAblation {
        erms_rebalance_bytes: erms_bytes,
        default_rebalance_bytes: default_bytes,
        erms_active_copies: erms_copies,
        default_active_copies: default_copies,
    }
}

/// Result of the judge-rules ablation.
#[derive(Debug, Clone, Serialize)]
pub struct JudgeRulesAblation {
    /// Did Formula (1) alone flag the block-skewed file?
    pub rule1_detects: bool,
    /// Did the full rule set flag it?
    pub full_detects: bool,
    /// Which rule fired in the full set (2 or 3 expected).
    pub full_rule: u8,
}

pub fn judge_rules() -> JudgeRulesAblation {
    use cep::audit::format_block_line;
    use erms::{DataClass, DataJudge, FileSnapshot};
    use simcore::SimTime;

    // a 20-block file where ONE block takes a burst of direct reads
    // (an index header everyone probes): file-level N_d stays low.
    let blocks: Vec<hdfs_sim::BlockId> = (0..20).map(hdfs_sim::BlockId).collect();
    let mut lines = Vec::new();
    for i in 0..30u64 {
        lines.push(format_block_line(
            SimTime::from_secs(1 + i),
            &blocks[0].to_string(),
            "dn3",
            "/skewed",
            64 << 20,
        ));
    }
    let snap = FileSnapshot {
        id: hdfs_sim::FileId(0),
        path: "/skewed".into(),
        replication: 3,
        blocks,
        last_access: SimTime::from_secs(30),
        boosted: false,
        encoded: false,
    };

    let full_thresholds = Thresholds::calibrate(4.0);
    let mut rule1_only = full_thresholds.clone();
    rule1_only.block_burst = f64::MAX / 4.0;
    rule1_only.block_warm = f64::MAX / 8.0;

    let mut j_full = DataJudge::new(full_thresholds);
    j_full.observe_lines(lines.iter().map(String::as_str));
    let full = j_full.classify(SimTime::from_secs(31), &snap);

    let mut j1 = DataJudge::new(rule1_only);
    j1.observe_lines(lines.iter().map(String::as_str));
    let r1 = j1.classify(SimTime::from_secs(31), &snap);

    JudgeRulesAblation {
        rule1_detects: r1.class == DataClass::Hot,
        full_detects: full.class == DataClass::Hot,
        full_rule: full.rule.code(),
    }
}

/// Result of the hysteresis ablation.
#[derive(Debug, Clone, Serialize)]
pub struct HysteresisAblation {
    pub patient_tasks: u64,
    pub impatient_tasks: u64,
    pub patient_throughput: f64,
    pub impatient_throughput: f64,
}

pub fn hysteresis(cfg: &ReplayConfig) -> HysteresisAblation {
    let make = |patience: u32| -> ErmsConfig {
        let mut thresholds = Thresholds::default().with_tau_hot(4.0);
        thresholds.window = cfg.window;
        thresholds.cold_age = cfg.cold_age;
        ErmsConfig::builder()
            .thresholds(thresholds)
            .standby([])
            .cooled_patience(patience)
            .build()
            .expect("valid ablation config")
    };
    let mode = Mode::Erms { tau_hot: 4.0 };
    let patient = replay::run_with(mode, "fair", cfg, Some(make(3)));
    let impatient = replay::run_with(mode, "fair", cfg, Some(make(1)));
    HysteresisAblation {
        patient_tasks: patient.erms_tasks_completed,
        impatient_tasks: impatient.erms_tasks_completed,
        patient_throughput: patient.read_throughput_mb_s,
        impatient_throughput: impatient.read_throughput_mb_s,
    }
}

/// Result of the predictor ablation.
#[derive(Debug, Clone, Serialize)]
pub struct PredictorAblation {
    /// Tick at which the reactive threshold (demand > τ_M·r) fires.
    pub reactive_tick: Option<u32>,
    /// Tick at which the EWMA forecast (3 ticks ahead) fires.
    pub predictive_tick: Option<u32>,
}

pub fn predictor() -> PredictorAblation {
    // a linear demand ramp: 2 more whole-file accesses per tick
    let tau = 8.0;
    let r = 3.0;
    let mut p = erms::predict::DemandPredictor::default_params();
    let mut reactive = None;
    let mut predictive = None;
    for tick in 0..40u32 {
        let demand = 2.0 * f64::from(tick);
        p.observe(demand);
        if reactive.is_none() && demand / r > tau {
            reactive = Some(tick);
        }
        if predictive.is_none() && p.forecast(3) / r > tau {
            predictive = Some(tick);
        }
    }
    PredictorAblation {
        reactive_tick: reactive,
        predictive_tick: predictive,
    }
}

/// Result of the energy ablation.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyAblation {
    pub standby_node_hours: f64,
    pub all_active_node_hours: f64,
    pub savings_fraction: f64,
}

pub fn energy(cfg: &ReplayConfig) -> EnergyAblation {
    let mut c = cfg.clone();
    c.use_standby_pool = true;
    let r = replay::run(Mode::Erms { tau_hot: 8.0 }, "fair", &c);
    let saved = if r.all_active_node_hours > 0.0 {
        1.0 - r.standby_node_hours / r.all_active_node_hours
    } else {
        0.0
    };
    EnergyAblation {
        standby_node_hours: r.standby_node_hours,
        all_active_node_hours: r.all_active_node_hours,
        savings_fraction: saved,
    }
}

/// One (scenario, backend) cell of the judge-backend A/B.
#[derive(Debug, Clone, Serialize)]
pub struct JudgeBackendRow {
    pub scenario: String,
    pub backend: String,
    pub read_p95_s: f64,
    pub read_p99_s: f64,
    pub storage_overhead_x: f64,
    pub energy_saved_pct: f64,
    pub oracle_violations: u64,
}

/// The full judge-backend A/B: every requested scenario run under every
/// backend at the same seed, plus the scenarios where a learned backend
/// matched or beat the rules.
#[derive(Debug, Clone, Serialize)]
pub struct JudgeBackendAblation {
    pub seed: u64,
    pub rows: Vec<JudgeBackendRow>,
    /// `"scenario/backend"` entries where a learned backend held read
    /// p95 at or below the rules' at equal-or-lower storage overhead
    /// with a clean oracle — the acceptance bar for shipping a learner.
    pub learned_wins: Vec<String>,
}

/// Run `scenarios` (checkpointing-registry names) under each judge
/// backend at `seed` and distil the per-backend scorecard rows. The
/// scenario's own `judge_backend` is overridden per run; everything
/// else about the shape is shared, so rows differ only by policy.
pub fn judge_backends(scenarios: &[&str], seed: u64) -> JudgeBackendAblation {
    const BACKENDS: [JudgeBackend; 3] = [
        JudgeBackend::Rules,
        JudgeBackend::QLearning,
        JudgeBackend::Hmm,
    ];
    let mut rows = Vec::new();
    for name in scenarios {
        let base = Scenario::by_name(name)
            .unwrap_or_else(|| panic!("unknown scenario {name:?} in judge ablation"));
        for backend in BACKENDS {
            let mut s = base.clone();
            s.judge_backend = backend;
            let card = run_case(&Case::Churn(Box::new(s)), seed);
            let get = |k: &str| *card.deterministic.get(k).unwrap_or(&0.0);
            rows.push(JudgeBackendRow {
                scenario: (*name).to_string(),
                backend: backend.as_str().to_string(),
                read_p95_s: get("read_p95_s"),
                read_p99_s: get("read_p99_s"),
                storage_overhead_x: get("storage_overhead_x"),
                energy_saved_pct: get("energy_saved_pct"),
                oracle_violations: get("oracle_violations") as u64,
            });
        }
    }
    let learned_wins = rows
        .iter()
        .filter(|r| r.backend != "rules" && r.oracle_violations == 0)
        .filter(|r| {
            rows.iter()
                .find(|b| b.backend == "rules" && b.scenario == r.scenario)
                .is_some_and(|b| {
                    r.read_p95_s <= b.read_p95_s && r.storage_overhead_x <= b.storage_overhead_x
                })
        })
        .map(|r| format!("{}/{}", r.scenario, r.backend))
        .collect();
    JudgeBackendAblation {
        seed,
        rows,
        learned_wins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn algorithm1_avoids_rebalancing() {
        let a = placement_rebalance();
        // standby parking leaves active nodes undisturbed: shedding the
        // extras owes no more balancer traffic than before the boost
        assert!(
            a.erms_rebalance_bytes <= a.default_rebalance_bytes,
            "erms {} vs default {}",
            a.erms_rebalance_bytes,
            a.default_rebalance_bytes
        );
        assert!(
            a.erms_active_copies < a.default_active_copies,
            "Algorithm 1 must park extras off the active set: {} vs {}",
            a.erms_active_copies,
            a.default_active_copies
        );
    }

    #[test]
    fn block_rules_catch_what_rule1_misses() {
        let a = judge_rules();
        assert!(
            !a.rule1_detects,
            "file-level count alone must miss block skew"
        );
        assert!(a.full_detects);
        assert!(a.full_rule == 2 || a.full_rule == 3);
    }

    #[test]
    fn predictor_fires_earlier_than_reactive() {
        let a = predictor();
        let (r, p) = (a.reactive_tick.unwrap(), a.predictive_tick.unwrap());
        assert!(p < r, "forecast {p} should precede threshold {r}");
    }

    #[test]
    fn judge_ab_runs_every_backend_with_a_clean_oracle() {
        let a = judge_backends(&["churn-tiny"], 42);
        assert_eq!(a.rows.len(), 3);
        let backends: Vec<&str> = a.rows.iter().map(|r| r.backend.as_str()).collect();
        assert_eq!(backends, ["rules", "qlearning", "hmm"]);
        for r in &a.rows {
            assert_eq!(
                r.oracle_violations, 0,
                "{}/{} violated the trace oracle",
                r.scenario, r.backend
            );
            assert!(r.storage_overhead_x > 0.0);
        }
    }

    #[test]
    fn hysteresis_reduces_thrash() {
        let mut cfg = ReplayConfig::small();
        cfg.trace.num_jobs = 60;
        cfg.cooldown = SimDuration::from_secs(600);
        let a = hysteresis(&cfg);
        assert!(
            a.patient_tasks <= a.impatient_tasks,
            "patience must not increase task churn: {} vs {}",
            a.patient_tasks,
            a.impatient_tasks
        );
    }
}
