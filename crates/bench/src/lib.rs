//! `bench` — the experiment harness regenerating every figure of the
//! paper's evaluation (Section IV).
//!
//! Each module implements one experiment family as a pure function from
//! a (scalable) configuration to a serialisable result; the `figures`
//! binary prints the same rows/series the paper plots and archives JSON
//! under `results/`. Criterion benches wrap scaled-down variants of the
//! same functions plus component micro-benchmarks.
//!
//! | paper figure | module | what it shows |
//! |---|---|---|
//! | Fig. 3(a)(b) | [`replay`] | SWIM replay: read throughput & job locality, FIFO/Fair × {vanilla, ERMS τ_M=8,6,4} |
//! | Fig. 4       | [`replay`] | CDF of data accesses over time |
//! | Fig. 5       | [`replay`] | storage utilisation over time, vanilla vs ERMS |
//! | Fig. 6       | [`dfsio`]  | TestDFSIO read time vs replication × thread count |
//! | Fig. 7       | [`increase`] | direct vs one-by-one replica increase |
//! | Fig. 8       | [`capacity`] | max sustainable concurrency vs replicas, all-active vs active/standby |
//! | Fig. 9(a)(b) | [`capacity`] | throughput & exec time at 70 readers vs replicas |
//! | (robustness) | [`faults`] | durability under seeded churn: self-healing ERMS vs vanilla |

pub mod ablation;
pub mod capacity;
pub mod checkpointing;
pub mod common;
pub mod corruption;
pub mod dfsio;
pub mod faults;
pub mod increase;
pub mod replay;
pub mod scale;
pub mod scorecard;
pub mod soak;

pub use common::Mode;
