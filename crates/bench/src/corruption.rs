//! Corruption storm: silent bit-rot under a background scrubber vs
//! detection-on-use only.
//!
//! Two variants run the *same* seeded fault schedule (light crash/restart
//! churn with torn writes, plus per-node silent-corruption arrivals)
//! against byte-identical clusters, both with self-healing on:
//!
//! * `no_scrubber` — corruption is only ever caught when a read or a
//!   repair copy happens to checksum the rotten replica;
//! * `scrubber` — the budgeted background scrub sweeps the block space
//!   every tick and schedules verified repair for what it finds.
//!
//! The output is a machine-readable *scrub scorecard* per variant —
//! injected/detected/repaired counts, mean time-to-detect, scan volume,
//! leftover latent rot — and is a pure function of the seed.

use erms::{ErmsConfig, ErmsManager};
use hdfs_sim::faults::{FaultConfig, FaultInjector, FaultPlan};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
use serde::Serialize;
use simcore::telemetry::TelemetrySink;
use simcore::units::{Bytes, MB};
use simcore::{SimDuration, SimTime};

/// Scenario shape.
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    pub seed: u64,
    pub fault: FaultConfig,
    /// Files created before the storm starts (all default replication).
    pub num_files: usize,
    pub file_size: Bytes,
    /// Control-loop / injection cadence.
    pub tick: SimDuration,
    /// Extra quiet ticks after the horizon for scrub + repairs to drain.
    pub settle_ticks: usize,
    /// Scrub budget handed to the `scrubber` variant.
    pub scrub_blocks_per_tick: u32,
    /// Steady read load against `/storm/f0` on each of the first
    /// `read_ticks` ticks, so the read path gets its share of
    /// detections in both variants.
    pub read_ticks: usize,
    pub reads_per_tick: u32,
}

impl CorruptionConfig {
    pub fn default_scenario() -> Self {
        let fault = FaultConfig::churn_only(
            SimDuration::from_hours(3),
            SimDuration::from_secs(15 * 60),
            SimDuration::from_hours(6),
        )
        .with_corruption(SimDuration::from_hours(2), 0.0, 0.5);
        CorruptionConfig {
            seed: 11,
            fault,
            num_files: 24,
            file_size: 256 * MB,
            tick: SimDuration::from_secs(30),
            settle_ticks: 60,
            scrub_blocks_per_tick: 16,
            read_ticks: 10,
            reads_per_tick: 4,
        }
    }

    /// Reduced-scale variant for `--small` and the test suite.
    pub fn small() -> Self {
        let mut cfg = Self::default_scenario();
        cfg.num_files = 8;
        cfg.fault.horizon = SimDuration::from_hours(2);
        cfg.fault.node_mtbf = SimDuration::from_hours(2);
        cfg.fault.corrupt_mtbf = SimDuration::from_mins(45);
        cfg.settle_ticks = 40;
        cfg
    }
}

/// Per-variant scrub scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct CorruptionVariant {
    pub variant: String,
    pub seed: u64,
    /// Fault-plan shape (identical across variants by construction).
    pub planned_events: usize,
    pub events_applied: usize,
    /// Corruption pipeline counters at the end of the run.
    pub corruptions_injected: u64,
    pub corruptions_detected: u64,
    pub corruptions_quarantined: u64,
    pub corruptions_repaired: u64,
    /// Detection latency (injection → checksum failure), seconds.
    pub mean_detect_secs: f64,
    pub p95_detect_secs: f64,
    /// Detection latency expressed in control-loop ticks.
    pub mean_detect_ticks: f64,
    /// Scrub sweep volume (zero for `no_scrubber`).
    pub scrub_blocks_scanned: u64,
    /// Rot nobody ever noticed (still latent when the run ends).
    pub latent_remaining: usize,
    /// Quarantined blocks still waiting on a verified repair.
    pub pending_repair_final: usize,
    pub data_loss_events: usize,
    pub under_replicated_final: usize,
    pub tasks_timed_out: usize,
}

/// The whole scenario result.
#[derive(Debug, Clone, Serialize)]
pub struct CorruptionResult {
    pub seed: u64,
    pub horizon_hours: f64,
    pub num_files: usize,
    pub file_size_mb: u64,
    pub scrub_blocks_per_tick: u32,
    pub variants: Vec<CorruptionVariant>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    NoScrubber,
    Scrubber,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::NoScrubber => "no_scrubber",
            Variant::Scrubber => "scrubber",
        }
    }
}

/// Run both variants under the same seed.
pub fn run(cfg: &CorruptionConfig) -> CorruptionResult {
    run_captured(cfg, false).0
}

/// Like [`run`], optionally keeping the `scrubber` variant's structured
/// event trace (byte-identical across same-seed runs).
pub fn run_captured(cfg: &CorruptionConfig, capture: bool) -> (CorruptionResult, String) {
    let mut trace = String::new();
    let variants = [Variant::NoScrubber, Variant::Scrubber]
        .into_iter()
        .map(|v| {
            let keep = capture && v == Variant::Scrubber;
            let (scorecard, jsonl) = run_variant(cfg, v, keep);
            if keep {
                trace = jsonl;
            }
            scorecard
        })
        .collect();
    let result = CorruptionResult {
        seed: cfg.seed,
        horizon_hours: cfg.fault.horizon.as_secs_f64() / 3600.0,
        num_files: cfg.num_files,
        file_size_mb: cfg.file_size / (1 << 20),
        scrub_blocks_per_tick: cfg.scrub_blocks_per_tick,
        variants,
    };
    (result, trace)
}

fn run_variant(
    cfg: &CorruptionConfig,
    variant: Variant,
    capture: bool,
) -> (CorruptionVariant, String) {
    let ccfg = ClusterConfig::paper_testbed();
    let nodes = ccfg.datanodes as usize;
    let racks = ccfg.racks as usize;
    let mut c = ClusterSim::new(ccfg, Box::new(DefaultRackAware));
    // always a recording sink: the scorecard reads the metric registry;
    // events are dropped per tick unless a trace was requested
    let sink = TelemetrySink::recording();
    c.set_telemetry(sink.clone());
    for i in 0..cfg.num_files {
        c.create_file(&format!("/storm/f{i}"), cfg.file_size, 3, None)
            .expect("base data fits");
    }
    c.run_until_quiescent();

    let ecfg = ErmsConfig::builder()
        .standby([]) // all-active: the comparison isolates the scrubber
        .encode(false)
        .self_healing(true)
        .scrubber(variant == Variant::Scrubber)
        .scrub_blocks_per_tick(cfg.scrub_blocks_per_tick)
        .build()
        .expect("valid corruption config");
    let mut m = ErmsManager::new(ecfg, &mut c).expect("valid corruption manager");
    m.set_telemetry(sink.clone());

    let plan = FaultPlan::generate(&cfg.fault, nodes, racks, cfg.seed);
    let planned_events = plan.len();
    let mut injector = FaultInjector::new(plan, cfg.fault.straggler_slowdown);

    let mut applied = 0usize;
    let mut tasks_timed_out = 0usize;
    let total_ticks = (cfg.fault.horizon.as_secs_f64() / cfg.tick.as_secs_f64()).ceil() as usize
        + cfg.settle_ticks;
    let mut deadline = SimTime::ZERO;
    for tick_idx in 0..total_ticks {
        deadline += cfg.tick;
        c.run_until(deadline);
        if tick_idx < cfg.read_ticks {
            for r in 0..cfg.reads_per_tick {
                let _ = c.open_read(
                    Endpoint::Client(ClientId(tick_idx as u32 * cfg.reads_per_tick + r)),
                    "/storm/f0",
                );
            }
        }
        applied += injector.apply_due(&mut c, deadline);
        let now = c.now();
        let r = m.tick(&mut c, now);
        tasks_timed_out += r.tasks_timed_out;
        if !capture {
            // scorecards only need the metric registry, not the events
            let _ = sink.drain_events();
        }
    }
    c.run_until_quiescent();
    let end = c.now();
    c.durability_mut().finalize(end);
    let trace = if capture {
        sink.drain_jsonl()
    } else {
        let _ = sink.drain_events();
        String::new()
    };

    let counter = |name: &str| sink.with_metrics(|m| m.counter(name)).unwrap_or(0);
    let (mean_detect, p95_detect) = sink
        .with_metrics(|m| {
            m.histogram("hdfs.corruption_detect_secs")
                .map(|h| (h.mean(), h.percentile(0.95)))
                .unwrap_or((0.0, 0.0))
        })
        .unwrap_or((0.0, 0.0));
    let scorecard = CorruptionVariant {
        variant: variant.label().to_string(),
        seed: cfg.seed,
        planned_events,
        events_applied: applied,
        corruptions_injected: counter("hdfs.corruptions_injected"),
        corruptions_detected: counter("hdfs.corruptions_detected"),
        corruptions_quarantined: counter("hdfs.corruptions_quarantined"),
        corruptions_repaired: counter("hdfs.corruptions_repaired"),
        mean_detect_secs: mean_detect,
        p95_detect_secs: p95_detect,
        mean_detect_ticks: mean_detect / cfg.tick.as_secs_f64(),
        scrub_blocks_scanned: counter("hdfs.scrub_blocks_scanned"),
        latent_remaining: c.latent_corrupt_count(),
        pending_repair_final: c.corrupt_blocks_pending_repair().len(),
        data_loss_events: c.durability().summary().data_loss_events,
        under_replicated_final: count_under_replicated(&c),
        tasks_timed_out,
    };
    (scorecard, trace)
}

/// Blocks currently short of their file's target replication.
fn count_under_replicated(c: &ClusterSim) -> usize {
    let mut short = 0usize;
    for meta in c.namespace().files() {
        let want = meta.replication();
        for &b in &meta.blocks {
            if c.blockmap().replica_count(b) < want {
                short += 1;
            }
        }
    }
    short
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CorruptionConfig {
        let mut cfg = CorruptionConfig::small();
        cfg.num_files = 5;
        cfg.fault.horizon = SimDuration::from_hours(1);
        cfg.settle_ticks = 30;
        cfg
    }

    #[test]
    fn same_seed_is_reproducible() {
        let cfg = quick_cfg();
        let a = serde_json::to_string(&run(&cfg)).unwrap();
        let b = serde_json::to_string(&run(&cfg)).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical scorecards");
    }

    #[test]
    fn scrubbing_repairs_every_injected_corruption() {
        let cfg = CorruptionConfig::small();
        let r = run(&cfg);
        let bare = &r.variants[0];
        let scrub = &r.variants[1];
        assert_eq!(bare.variant, "no_scrubber");
        assert_eq!(scrub.variant, "scrubber");
        assert!(scrub.corruptions_injected > 0, "the storm injected rot");
        // the scrubber finds and repairs everything that survived to be
        // found; nothing stays latent or quarantined at the end
        assert_eq!(
            scrub.corruptions_detected, scrub.corruptions_quarantined,
            "every detection quarantines: {scrub:?}"
        );
        assert_eq!(scrub.latent_remaining, 0, "no silent rot left: {scrub:?}");
        assert_eq!(
            scrub.pending_repair_final, 0,
            "every quarantine repaired: {scrub:?}"
        );
        assert_eq!(scrub.under_replicated_final, 0, "{scrub:?}");
        assert_eq!(scrub.data_loss_events, 0, "{scrub:?}");
        assert!(scrub.scrub_blocks_scanned > 0);
        // without the scrubber, rot is only found on use — some of it is
        // never noticed at all
        assert_eq!(bare.scrub_blocks_scanned, 0);
        assert!(
            bare.latent_remaining > 0,
            "detection-on-use misses rot the scrubber would catch: {bare:?}"
        );
        assert!(scrub.corruptions_detected > bare.corruptions_detected);
    }

    #[test]
    fn scrubber_trace_passes_the_oracle() {
        let cfg = quick_cfg();
        let (_, trace) = run_captured(&cfg, true);
        assert!(!trace.is_empty());
        assert!(
            trace.contains("\"ev\":\"corruption_injected\""),
            "storm traced"
        );
        assert!(trace.contains("\"ev\":\"corruption_detected\""));
        assert!(trace.contains("\"ev\":\"corrupt_repaired\""));
        assert!(trace.contains("\"ev\":\"scrub_progress\""));
    }
}
