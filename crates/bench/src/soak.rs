//! Segmented long-horizon soaks on top of [`ResumableRun`].
//!
//! A soak executes a multi-day scenario in `K` checkpointed segments so
//! CI shards (or interrupted local runs) can split the horizon: segment
//! 0 starts fresh and saves a snapshot at its boundary; segment `i`
//! resumes that snapshot, runs to the next boundary, saves again; the
//! last segment finishes the run (quiescent drain + durability
//! finalize, exactly like a straight-through [`ResumableRun::finish`]).
//! Each segment drains its telemetry chunk, and the resume-equivalence
//! contract generalises from one split to many: the concatenated chunks
//! are byte-identical to the straight-through trace, and the final
//! snapshots compare equal. `tests/integration_soak.rs` and the CI
//! `soak` job both assert exactly that via [`run_straight`] /
//! [`run_segment`].

use crate::checkpointing::{ResumableRun, Scenario};
use checkpoint::{CheckpointError, Snapshot};

/// Cumulative segment end ticks: `total_ticks` split into `segments`
/// near-equal parts (earlier segments take the remainder), last entry
/// always `total_ticks`.
pub fn boundaries(total_ticks: u64, segments: u64) -> Vec<u64> {
    assert!(segments > 0, "a soak needs at least one segment");
    let base = total_ticks / segments;
    let rem = total_ticks % segments;
    let mut out = Vec::with_capacity(segments as usize);
    let mut acc = 0;
    for i in 0..segments {
        acc += base + u64::from(i < rem);
        out.push(acc);
    }
    out
}

/// What one segment produced.
pub struct SegmentOutcome {
    /// Telemetry chunk drained from this segment only.
    pub trace: String,
    /// State at the segment's end boundary (for the final segment:
    /// after `finish`, i.e. the same snapshot a straight-through run
    /// saves at the end).
    pub snapshot: Snapshot,
    /// True for the final segment.
    pub is_last: bool,
}

/// Run segment `index` of a `segments`-way soak. Segment 0 starts
/// fresh; later segments resume `prior` (the previous segment's
/// snapshot), which is validated against the expected scenario, seed
/// and boundary tick so shards can't silently mix runs.
pub fn run_segment(
    scenario: Scenario,
    seed: u64,
    segments: u64,
    index: u64,
    prior: Option<&Snapshot>,
) -> Result<SegmentOutcome, CheckpointError> {
    let bounds = boundaries(scenario.total_ticks, segments);
    if index >= segments {
        return Err(CheckpointError::Corrupt(format!(
            "segment {index} of a {segments}-segment soak"
        )));
    }
    let mut run = if index == 0 {
        if prior.is_some() {
            return Err(CheckpointError::Corrupt(
                "segment 0 starts fresh, not from a snapshot".into(),
            ));
        }
        ResumableRun::new(scenario, seed)
    } else {
        let snap = prior.ok_or_else(|| {
            CheckpointError::Corrupt(format!("segment {index} needs the prior snapshot"))
        })?;
        let expect_tick = bounds[index as usize - 1];
        if snap.meta.scenario != scenario.name
            || snap.meta.seed != seed
            || snap.meta.tick != expect_tick
        {
            return Err(CheckpointError::Corrupt(format!(
                "snapshot is {}/seed {}/tick {}, segment {index} expects {}/seed {seed}/tick {expect_tick}",
                snap.meta.scenario, snap.meta.seed, snap.meta.tick, scenario.name
            )));
        }
        ResumableRun::resume(snap)?
    };

    let is_last = index == segments - 1;
    if is_last {
        run.finish();
    } else {
        run.run_to_tick(bounds[index as usize]);
    }
    let trace = run.drain_trace();
    let snapshot = run.save();
    Ok(SegmentOutcome {
        trace,
        snapshot,
        is_last,
    })
}

/// Straight-through reference run: full trace + final snapshot.
pub fn run_straight(scenario: Scenario, seed: u64) -> (String, Snapshot) {
    let mut run = ResumableRun::new(scenario, seed);
    run.finish();
    let trace = run.drain_trace();
    let snap = run.save();
    (trace, snap)
}

/// Run all `segments` in-process, pushing every hand-off snapshot
/// through its JSON wire format (what the CI shards actually exchange).
/// Returns the concatenated trace and the final snapshot.
pub fn run_segmented(scenario: Scenario, seed: u64, segments: u64) -> (String, Snapshot) {
    let mut trace = String::new();
    let mut carry: Option<Snapshot> = None;
    for index in 0..segments {
        let out = run_segment(scenario.clone(), seed, segments, index, carry.as_ref())
            .expect("segment runs");
        trace.push_str(&out.trace);
        let wire = out.snapshot.to_json();
        carry = Some(Snapshot::from_json(&wire).expect("snapshot round-trips"));
    }
    (trace, carry.expect("at least one segment"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_partition_the_horizon() {
        assert_eq!(boundaries(70, 2), [35, 70]);
        assert_eq!(boundaries(70, 3), [24, 47, 70]);
        assert_eq!(boundaries(5, 8), [1, 2, 3, 4, 5, 5, 5, 5]);
        assert_eq!(boundaries(136, 1), [136]);
    }

    #[test]
    fn segment_rejects_mismatched_handoffs() {
        let s = Scenario::churn_tiny();
        let out = run_segment(s.clone(), 7, 2, 0, None).unwrap();
        assert!(!out.is_last);
        // wrong seed
        assert!(run_segment(s.clone(), 8, 2, 1, Some(&out.snapshot)).is_err());
        // wrong segment index (boundary tick mismatch)
        assert!(run_segment(s.clone(), 7, 3, 1, Some(&out.snapshot)).is_err());
        // missing snapshot
        assert!(run_segment(s.clone(), 7, 2, 1, None).is_err());
        // segment 0 with a snapshot
        assert!(run_segment(s.clone(), 7, 2, 0, Some(&out.snapshot)).is_err());
        // out of range
        assert!(run_segment(s, 7, 2, 2, Some(&out.snapshot)).is_err());
    }

    #[test]
    fn three_segments_match_straight_through() {
        let (straight, final_a) = run_straight(Scenario::churn_tiny(), 11);
        let (segmented, final_b) = run_segmented(Scenario::churn_tiny(), 11, 3);
        assert!(!straight.is_empty());
        assert_eq!(straight, segmented, "segment chunks must concatenate");
        assert_eq!(final_a.to_json(), final_b.to_json());
    }
}
