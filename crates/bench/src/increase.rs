//! Figure 7 — direct vs one-by-one replica increase.
//!
//! "There are two ways to increase replicas: increasing the replica
//! directly to the optimal one or increasing replica one by one...
//! It is clear that increasing the replica directly to the optimal one
//! is a better choice." The harness raises a file from the default
//! factor to the optimum under both strategies across the paper's file
//! sizes (64 MB – 8 GB) and reports the wall-clock each takes.

use erms::IncreaseStrategy;
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
use serde::Serialize;
use simcore::units::{Bytes, GB, MB};

#[derive(Debug, Clone)]
pub struct IncreaseConfig {
    pub file_sizes: Vec<Bytes>,
    pub from_replication: usize,
    pub to_replication: usize,
}

impl Default for IncreaseConfig {
    fn default() -> Self {
        IncreaseConfig {
            file_sizes: vec![
                64 * MB,
                128 * MB,
                256 * MB,
                512 * MB,
                GB,
                2 * GB,
                4 * GB,
                8 * GB,
            ],
            from_replication: 3,
            to_replication: 8,
        }
    }
}

impl IncreaseConfig {
    pub fn small() -> Self {
        IncreaseConfig {
            file_sizes: vec![64 * MB, 256 * MB],
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Serialize)]
pub struct IncreaseCell {
    pub file_size_mb: u64,
    pub strategy: String,
    pub seconds: f64,
    pub copies: usize,
}

/// Time one increase of `size` bytes under `strategy`.
pub fn time_increase(
    size: Bytes,
    from: usize,
    to: usize,
    strategy: IncreaseStrategy,
) -> IncreaseCell {
    let mut cluster = ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
    let file = cluster
        .create_file("/fig7/data", size, from, None)
        .expect("fresh cluster");
    let t0 = cluster.now();
    let mut copies = 0usize;
    for step in strategy.steps(from, to) {
        copies += cluster.set_file_replication(file, step).len();
        // one-by-one waits for each step to land before requesting the
        // next, which is precisely what makes it slow
        cluster.run_until_quiescent();
    }
    let seconds = (cluster.now() - t0).as_secs_f64();
    // verify the end state really reached the target
    for &b in &cluster
        .namespace()
        .file(file)
        .expect("file exists")
        .blocks
        .clone()
    {
        assert_eq!(cluster.blockmap().replica_count(b), to);
    }
    IncreaseCell {
        file_size_mb: size / MB,
        strategy: match strategy {
            IncreaseStrategy::Direct => "whole".to_string(),
            IncreaseStrategy::OneByOne => "one_by_one".to_string(),
        },
        seconds,
        copies,
    }
}

/// Run the full Fig. 7 sweep.
pub fn run(cfg: &IncreaseConfig) -> Vec<IncreaseCell> {
    let mut out = Vec::new();
    for &size in &cfg.file_sizes {
        for strategy in [IncreaseStrategy::Direct, IncreaseStrategy::OneByOne] {
            out.push(time_increase(
                size,
                cfg.from_replication,
                cfg.to_replication,
                strategy,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_beats_one_by_one() {
        for &size in &[64 * MB, 512 * MB] {
            let direct = time_increase(size, 3, 8, IncreaseStrategy::Direct);
            let stepwise = time_increase(size, 3, 8, IncreaseStrategy::OneByOne);
            assert_eq!(direct.copies, stepwise.copies, "same replicas moved");
            assert!(
                direct.seconds < stepwise.seconds,
                "size {size}: direct {} vs one-by-one {}",
                direct.seconds,
                stepwise.seconds
            );
        }
    }

    #[test]
    fn bigger_files_take_longer() {
        let small = time_increase(64 * MB, 3, 8, IncreaseStrategy::Direct);
        let large = time_increase(GB, 3, 8, IncreaseStrategy::Direct);
        assert!(large.seconds > small.seconds * 2.0);
    }
}
