//! Figures 3, 4 and 5 — the SWIM-like trace replay.
//!
//! A synthesised Facebook-style trace is replayed through the MapReduce
//! runner on the simulated cluster, once per (scheduler × system
//! variant) cell. ERMS runs as the runner's periodic controller,
//! consuming the audit stream and steering replication live. After the
//! last job the replay keeps ticking through a cooldown so cooled files
//! shed replicas and cold files get erasure-encoded — the storage-curve
//! tail of Figure 5.

use crate::common::{build_cluster, build_manager, Mode};
use erms::ErmsManager;
use mapred::{FairScheduler, FifoScheduler, JobSpec, MapReduceRunner, RunnerConfig, TaskScheduler};
use serde::Serialize;
use simcore::stats::{OnlineStats, TimeSeries};
use simcore::units::GB;
use simcore::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use workload::{Trace, TraceConfig};

/// Replay parameters.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    pub trace: TraceConfig,
    pub seed: u64,
    /// ERMS control-loop interval.
    pub control_interval: SimDuration,
    /// Post-trace period during which ERMS keeps managing (Fig. 5 tail).
    pub cooldown: SimDuration,
    /// CEP window t_w.
    pub window: SimDuration,
    /// Cold-age threshold.
    pub cold_age: SimDuration,
    /// Run ERMS over the 10+8 active/standby split instead of all-active
    /// (an ablation; the Fig. 3 cells use all-active so vanilla and ERMS
    /// have identical serving capacity).
    pub use_standby_pool: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            // calibrated so vanilla triplication visibly suffers on hot
            // data: hot small files, flash-crowd job trains, heavy tail
            trace: TraceConfig {
                num_files: 20,
                num_jobs: 600,
                creation_window_secs: 1200.0,
                mean_interarrival_secs: 4.0,
                file_size_mu: 5.0,
                max_file_mb: 1024,
                zipf_exponent: 1.3,
                popularity_tau_secs: 3600.0,
                compute_per_block_secs: 0.5,
                ..TraceConfig::default()
            },
            seed: 42,
            control_interval: SimDuration::from_secs(60),
            cooldown: SimDuration::from_secs(10800),
            window: SimDuration::from_secs(300),
            cold_age: SimDuration::from_secs(7200),
            use_standby_pool: false,
        }
    }
}

impl ReplayConfig {
    /// A shrunken variant for unit tests and criterion.
    pub fn small() -> Self {
        let base = Self::default();
        ReplayConfig {
            trace: TraceConfig {
                num_files: 12,
                num_jobs: 120,
                creation_window_secs: 600.0,
                ..base.trace
            },
            cooldown: SimDuration::from_secs(3600),
            cold_age: SimDuration::from_secs(1200),
            ..base
        }
    }
}

/// One cell of Figure 3 plus the Figure 4/5 series from the same run.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayResult {
    pub mode: String,
    pub scheduler: String,
    pub jobs_completed: usize,
    /// Fig. 3(a): mean per-job read throughput, MB/s.
    pub read_throughput_mb_s: f64,
    /// Fig. 3(b): mean fraction of node-local map tasks.
    pub data_locality: f64,
    pub mean_job_duration_secs: f64,
    /// Fig. 4: cumulative fraction of accesses by time (hours).
    pub access_cdf: Vec<(f64, f64)>,
    /// Fig. 5: storage utilisation over time (hours, GB).
    pub storage_gb: Vec<(f64, f64)>,
    pub peak_storage_gb: f64,
    pub final_storage_gb: f64,
    /// Standby-pool energy actually burned vs the all-active baseline
    /// (node-hours); zero for vanilla.
    pub standby_node_hours: f64,
    pub all_active_node_hours: f64,
    pub erms_tasks_completed: u64,
}

/// Run one replay cell.
pub fn run(mode: Mode, scheduler: &str, cfg: &ReplayConfig) -> ReplayResult {
    run_with(mode, scheduler, cfg, None)
}

/// Run one replay cell with an explicit ERMS configuration (ablations).
pub fn run_with(
    mode: Mode,
    scheduler: &str,
    cfg: &ReplayConfig,
    erms_override: Option<erms::ErmsConfig>,
) -> ReplayResult {
    let trace = Trace::synthesize(&cfg.trace, cfg.seed);
    let mut cluster = build_cluster(mode);
    let manager: Rc<RefCell<Option<ErmsManager>>> =
        Rc::new(RefCell::new(match (erms_override, mode) {
            (Some(c), Mode::Erms { .. }) => {
                Some(ErmsManager::new(c, &mut cluster).expect("valid replay manager"))
            }
            (Some(_), Mode::Vanilla) => None,
            (None, _) => build_manager(
                mode,
                &mut cluster,
                cfg.window,
                cfg.cold_age,
                cfg.use_standby_pool,
            ),
        }));
    let storage: Rc<RefCell<TimeSeries>> = Rc::new(RefCell::new(TimeSeries::new()));

    // load the trace's files at r = 3 before the replay starts
    for f in &trace.files {
        cluster
            .create_file(&f.path, f.size, cluster.config().default_replication, None)
            .expect("trace paths are unique");
    }
    cluster.drain_audit(); // bulk-load noise is not workload signal

    let sched: Box<dyn TaskScheduler> = match scheduler {
        "fifo" => Box::new(FifoScheduler),
        "fair" => Box::new(FairScheduler::default()),
        other => panic!("unknown scheduler '{other}'"),
    };
    let mut runner = MapReduceRunner::new(
        cluster,
        sched,
        RunnerConfig {
            controller_interval: cfg.control_interval,
            ..RunnerConfig::default()
        },
    );
    {
        let manager = manager.clone();
        let storage = storage.clone();
        runner.set_controller(Box::new(move |cluster, now| {
            if let Some(m) = manager.borrow_mut().as_mut() {
                m.tick(cluster, now);
            }
            storage
                .borrow_mut()
                .record(now, cluster.storage_used() as f64 / GB as f64);
        }));
    }
    for j in &trace.jobs {
        runner.submit(JobSpec {
            name: j.name.clone(),
            input: j.input.clone(),
            submit_at: SimTime::from_secs_f64(j.submit_at_secs),
            compute_per_block: SimDuration::from_secs_f64(j.compute_per_block_secs),
            reduce_duration: SimDuration::from_secs_f64(j.reduce_secs),
        });
    }
    let (job_stats, mut cluster) = runner.run();

    // cooldown: keep the control loop alive so demotions/encodes land
    let end = cluster.now() + cfg.cooldown;
    while cluster.now() < end {
        let next = cluster.now() + cfg.control_interval;
        cluster.run_until(next);
        let now = cluster.now();
        if let Some(m) = manager.borrow_mut().as_mut() {
            m.tick(&mut cluster, now);
        }
        storage
            .borrow_mut()
            .record(now, cluster.storage_used() as f64 / GB as f64);
        cluster.run_until_quiescent();
    }

    // aggregate
    let mut tput = OnlineStats::new();
    let mut locality = OnlineStats::new();
    let mut duration = OnlineStats::new();
    for s in &job_stats {
        if s.map_tasks == 0 {
            continue;
        }
        tput.push(s.read_throughput_mb_s());
        locality.push(s.locality());
        duration.push(s.duration_secs());
    }
    let series = storage.borrow();
    let storage_points = series.resample(120.min(series.len().max(1)));
    let storage_gb: Vec<(f64, f64)> = storage_points
        .iter()
        .map(|&(t, v)| (t / 3600.0, v))
        .collect();

    // Fig. 4: cumulative accesses over time, from the trace itself
    let n = trace.jobs.len().max(1) as f64;
    let access_cdf: Vec<(f64, f64)> = trace
        .jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.submit_at_secs / 3600.0, (i + 1) as f64 / n))
        .collect();

    let (standby_h, allactive_h, tasks) = {
        let m = manager.borrow();
        match m.as_ref() {
            Some(m) => {
                let now = cluster.now();
                (
                    m.model().standby_node_seconds(now) / 3600.0,
                    m.model().all_active_node_seconds(now) / 3600.0,
                    m.total_completed,
                )
            }
            None => (0.0, 0.0, 0),
        }
    };

    ReplayResult {
        mode: mode.label(),
        scheduler: scheduler.to_string(),
        jobs_completed: job_stats.len(),
        read_throughput_mb_s: tput.mean(),
        data_locality: locality.mean(),
        mean_job_duration_secs: duration.mean(),
        access_cdf,
        peak_storage_gb: series.max_value().unwrap_or(0.0),
        final_storage_gb: series.last_value().unwrap_or(0.0),
        storage_gb,
        standby_node_hours: standby_h,
        all_active_node_hours: allactive_h,
        erms_tasks_completed: tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_replay_completes_vanilla() {
        let cfg = ReplayConfig::small();
        let r = run(Mode::Vanilla, "fifo", &cfg);
        assert_eq!(r.jobs_completed, cfg.trace.num_jobs);
        assert!(r.read_throughput_mb_s > 0.0);
        assert!(!r.storage_gb.is_empty());
        assert_eq!(r.standby_node_hours, 0.0);
        // vanilla storage stays at 3x the dataset forever
        assert!((r.final_storage_gb - r.peak_storage_gb).abs() < 1e-6);
    }

    #[test]
    fn small_replay_completes_erms_and_manages() {
        let cfg = ReplayConfig::small();
        let r = run(Mode::Erms { tau_hot: 4.0 }, "fair", &cfg);
        assert_eq!(r.jobs_completed, cfg.trace.num_jobs);
        assert!(r.erms_tasks_completed > 0, "ERMS must have acted");
        // cooldown encodes cold data → final storage below peak
        assert!(
            r.final_storage_gb < r.peak_storage_gb,
            "final {} < peak {}",
            r.final_storage_gb,
            r.peak_storage_gb
        );
    }

    #[test]
    fn access_cdf_is_monotone_to_one() {
        let cfg = ReplayConfig::small();
        let r = run(Mode::Vanilla, "fair", &cfg);
        for w in r.access_cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((r.access_cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
