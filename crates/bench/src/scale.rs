//! `bench scale` — how the control loop's cost grows with the namespace.
//!
//! The scenario is N one-block files on an M-node cluster with a
//! flash-crowd audit storm on a small hot subset: a few ticks of heavy
//! reading, then a long idle tail. That shape is exactly where the
//! incremental visit set pays off — after the storm settles, almost
//! every file is stable and a tick should cost O(dirty + active), not
//! O(namespace). Each size runs twice, incremental and forced full
//! rescan, timing only the `ErmsManager::tick` calls; a CEP push
//! micro-measurement rides along so the events/sec of the audit→window
//! path lands in the same artifact.
//!
//! The `scale` binary wraps these functions with a counting global
//! allocator (the allocations proxy) and archives everything as
//! `BENCH_scale.json`.

use erms::{DataJudge, ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim};
use serde::Serialize;
use simcore::units::MB;
use simcore::SimDuration;
use std::time::Instant;

/// One scenario size.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    pub label: &'static str,
    pub files: usize,
    pub nodes: u32,
    pub racks: u16,
    /// Files the flash crowd hammers.
    pub hot_files: usize,
    /// Concurrent readers per hot file per storm tick.
    pub readers_per_hot: u32,
    /// Ticks with the storm running.
    pub storm_ticks: usize,
    /// Quiet ticks after the storm — the incremental win lives here.
    pub idle_ticks: usize,
    /// Simulated time between ticks.
    pub tick_step: SimDuration,
    /// CEP window — the idle tail must outlast it (plus the shed/encode
    /// wave's own audit traffic) for files to go stable at all.
    pub window: SimDuration,
}

impl ScaleConfig {
    pub fn small() -> Self {
        ScaleConfig {
            label: "small",
            files: 150,
            nodes: 18,
            racks: 3,
            hot_files: 6,
            readers_per_hot: 20,
            storm_ticks: 6,
            idle_ticks: 30,
            tick_step: SimDuration::from_secs(60),
            window: SimDuration::from_secs(600),
        }
    }

    pub fn medium() -> Self {
        ScaleConfig {
            files: 600,
            nodes: 36,
            racks: 6,
            label: "medium",
            ..Self::small()
        }
    }

    pub fn large() -> Self {
        ScaleConfig {
            files: 2400,
            nodes: 72,
            racks: 12,
            label: "large",
            ..Self::small()
        }
    }

    /// The columnar-state stress size: a ~100k-file namespace on a
    /// 1000-node fleet. Fewer ticks than the smaller sizes — the point
    /// is per-tick cost at scale (the acceptance bar is a ≤50 ms mean),
    /// not a long steady-state tail.
    pub fn xlarge() -> Self {
        ScaleConfig {
            files: 100_000,
            nodes: 1000,
            racks: 50,
            hot_files: 12,
            storm_ticks: 3,
            idle_ticks: 12,
            label: "xlarge",
            ..Self::small()
        }
    }

    /// Look a size up by name.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            "large" => Some(Self::large()),
            "xlarge" => Some(Self::xlarge()),
            _ => None,
        }
    }

    pub fn ticks(&self) -> usize {
        self.storm_ticks + self.idle_ticks
    }
}

/// Tick timings of one (size, mode) run.
#[derive(Debug, Clone, Serialize)]
pub struct ModeStats {
    pub full_rescan: bool,
    pub ticks: usize,
    /// Sum of `TickReport::files_judged` over the run.
    pub files_judged: usize,
    pub total_tick_ms: f64,
    pub mean_tick_ms: f64,
    pub max_tick_ms: f64,
    /// Mean over the idle tail only — the steady-state cost.
    pub idle_mean_tick_ms: f64,
}

/// Mid-run snapshot accounting when `scale --checkpoint-every N` is on.
///
/// Every Nth tick the cluster + manager are snapshotted into the
/// checkpoint wire format (outside the timed tick region, so
/// [`ModeStats`] stay comparable), re-hydrated into a freshly built
/// cluster/manager pair and re-saved; `verified` stays true only if
/// every re-save produced byte-identical JSON.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointStats {
    pub every: usize,
    pub snapshots: usize,
    pub total_bytes: usize,
    pub mean_save_ms: f64,
    pub verified: bool,
}

/// The zero-cost-when-disabled claim for the self-profiler, measured.
///
/// A disabled `prof_scope!` is a thread-local flag check; this model
/// prices that check (`per_scope_ns_disabled`, the *minimum* over
/// several multi-million-iteration batches, so scheduler noise can only
/// inflate, never deflate, the floor), counts how many scopes a manager
/// tick actually enters (`scopes_per_tick`, from an enabled probe run —
/// the count is a function of the manager config, not the namespace
/// size), and charges the product against the disabled-mode mean tick.
/// The scale binary fails the run when `overhead_pct` reaches 1%.
#[derive(Debug, Clone, Serialize)]
pub struct ProfilerOverhead {
    /// Cost of one disabled `prof_scope!` check, nanoseconds.
    pub per_scope_ns_disabled: f64,
    /// Mean scopes entered per `ErmsManager::tick`.
    pub scopes_per_tick: f64,
    /// The disabled-profiler mean tick the overhead is charged against.
    pub mean_tick_ms: f64,
    /// Estimated disabled-profiler share of a mean tick, percent.
    pub overhead_pct: f64,
}

/// Measure [`ProfilerOverhead`] against `mean_tick_ms` (a
/// disabled-profiler tick time from [`ModeStats`]).
pub fn profiler_overhead(mean_tick_ms: f64) -> ProfilerOverhead {
    use simcore::profiler;
    assert!(
        !profiler::is_enabled(),
        "overhead is priced with the profiler off"
    );
    const BATCH: u64 = 4_000_000;
    let mut per_scope_ns = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..BATCH {
            simcore::prof_scope!("overhead_probe");
            std::hint::black_box(i);
        }
        per_scope_ns = per_scope_ns.min(start.elapsed().as_nanos() as f64 / BATCH as f64);
    }

    // scopes per tick from an enabled probe storm on a small namespace
    let probe = ScaleConfig {
        label: "probe",
        files: 60,
        nodes: 9,
        racks: 3,
        hot_files: 4,
        readers_per_hot: 10,
        storm_ticks: 3,
        idle_ticks: 8,
        ..ScaleConfig::small()
    };
    profiler::reset();
    profiler::set_enabled(true);
    let _ = run_mode(&probe, false);
    profiler::set_enabled(false);
    let snap = profiler::snapshot();
    profiler::reset();
    let ticks = snap.find("tick").map(|t| t.calls).unwrap_or(0).max(1);
    let scopes_per_tick = snap.total_calls() as f64 / ticks as f64;

    let overhead_ns = per_scope_ns * scopes_per_tick;
    let overhead_pct = if mean_tick_ms > 0.0 {
        100.0 * overhead_ns / (mean_tick_ms * 1e6)
    } else {
        0.0
    };
    ProfilerOverhead {
        per_scope_ns_disabled: per_scope_ns,
        scopes_per_tick,
        mean_tick_ms,
        overhead_pct,
    }
}

/// Build the cluster for one scale size (shared with the dev probes).
pub fn scale_cluster(cfg: &ScaleConfig) -> ClusterSim {
    let cluster_cfg = ClusterConfig {
        datanodes: cfg.nodes,
        racks: cfg.racks,
        ..ClusterConfig::default()
    };
    ClusterSim::new(cluster_cfg, Box::new(ErmsPlacement::new()))
}

/// Build the manager config for one scale size.
pub fn scale_erms_config(cfg: &ScaleConfig, full_rescan: bool) -> ErmsConfig {
    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = cfg.window;
    thresholds.cold_age = SimDuration::from_hours(4);
    ErmsConfig::builder()
        .thresholds(thresholds)
        .standby([])
        .self_healing(true)
        .full_rescan(full_rescan)
        .build()
        .expect("valid scale config")
}

/// Settle the bulk-create transient before the measured region.
///
/// Creating the namespace emits one `create` audit event per file, so
/// straight after bootstrap *every* file has windowed demand and sits
/// in the incremental visit set — the first window's worth of ticks
/// would measure namespace bootstrap, not the storm the scenario
/// describes. Advance the clock one full CEP window (plus a step, the
/// eviction rule keeps the boundary) so those events age out, then let
/// one untimed tick drain the creation dirty set. Both modes get the
/// identical warm-up, so the incremental/full comparison is unskewed.
fn settle_bootstrap(cfg: &ScaleConfig, c: &mut ClusterSim, m: &mut ErmsManager) {
    c.run_until(c.now() + cfg.window + cfg.tick_step);
    c.run_until_quiescent();
    let now = c.now();
    let _ = m.tick(c, now);
    c.run_until(c.now() + cfg.tick_step);
    c.run_until_quiescent();
}

/// Drive one mode through the scenario, timing only the tick calls.
pub fn run_mode(cfg: &ScaleConfig, full_rescan: bool) -> ModeStats {
    run_mode_checkpointed(cfg, full_rescan, None).0
}

/// [`run_mode`], optionally snapshotting every `checkpoint_every` ticks.
pub fn run_mode_checkpointed(
    cfg: &ScaleConfig,
    full_rescan: bool,
    checkpoint_every: Option<usize>,
) -> (ModeStats, Option<CheckpointStats>) {
    use checkpoint::{Checkpointable, Snapshot, SnapshotMeta};

    let mut c = scale_cluster(cfg);
    let mut m =
        ErmsManager::new(scale_erms_config(cfg, full_rescan), &mut c).expect("valid scale manager");

    for i in 0..cfg.files {
        c.create_file(&format!("/scale/f{i}"), 64 * MB, 3, None)
            .expect("cluster sized to hold the namespace");
    }
    c.run_until_quiescent();
    settle_bootstrap(cfg, &mut c, &mut m);

    let mut ck = checkpoint_every.map(|every| CheckpointStats {
        every: every.max(1),
        snapshots: 0,
        total_bytes: 0,
        mean_save_ms: 0.0,
        verified: true,
    });
    let mut save_ms_total = 0.0f64;

    let mut total = 0.0f64;
    let mut max = 0.0f64;
    let mut idle_total = 0.0f64;
    let mut judged = 0usize;
    for tick in 0..cfg.ticks() {
        if tick < cfg.storm_ticks {
            for h in 0..cfg.hot_files.min(cfg.files) {
                for r in 0..cfg.readers_per_hot {
                    let id = (tick as u32) * 100_000 + (h as u32) * 1_000 + r;
                    let _ = c.open_read(Endpoint::Client(ClientId(id)), &format!("/scale/f{h}"));
                }
            }
            c.run_until_quiescent();
        }
        let now = c.now();
        let start = Instant::now();
        let report = m.tick(&mut c, now);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        total += ms;
        max = max.max(ms);
        if tick >= cfg.storm_ticks {
            idle_total += ms;
        }
        judged += report.files_judged;

        if let Some(stats) = ck.as_mut() {
            if (tick + 1) % stats.every == 0 {
                let start = Instant::now();
                let mut snap = Snapshot::new(SnapshotMeta {
                    scenario: format!("scale-{}", cfg.label),
                    seed: 0,
                    tick: tick as u64 + 1,
                });
                snap.insert_section("cluster", c.save_state());
                snap.insert_section("manager", m.save_state());
                let wire = snap.to_json();
                save_ms_total += start.elapsed().as_secs_f64() * 1e3;
                stats.snapshots += 1;
                stats.total_bytes += wire.len();

                // hydrate a fresh pair from the wire bytes and re-save:
                // the round trip must reproduce the snapshot exactly
                let back = Snapshot::from_json(&wire).expect("own snapshot parses");
                let mut c2 = scale_cluster(cfg);
                let mut m2 = ErmsManager::new(scale_erms_config(cfg, full_rescan), &mut c2)
                    .expect("valid scale manager");
                let hydrated = c2
                    .load_state(back.section("cluster").expect("cluster section"))
                    .and_then(|()| {
                        m2.load_state(back.section("manager").expect("manager section"))
                    });
                let mut resnap = Snapshot::new(back.meta.clone());
                resnap.insert_section("cluster", c2.save_state());
                resnap.insert_section("manager", m2.save_state());
                stats.verified &= hydrated.is_ok() && resnap.to_json() == wire;
            }
        }

        c.run_until(c.now() + cfg.tick_step);
        c.run_until_quiescent();
    }
    if let Some(stats) = ck.as_mut() {
        if stats.snapshots > 0 {
            stats.mean_save_ms = save_ms_total / stats.snapshots as f64;
        }
    }

    let mode = ModeStats {
        full_rescan,
        ticks: cfg.ticks(),
        files_judged: judged,
        total_tick_ms: total,
        mean_tick_ms: total / cfg.ticks() as f64,
        max_tick_ms: max,
        idle_mean_tick_ms: if cfg.idle_ticks > 0 {
            idle_total / cfg.idle_ticks as f64
        } else {
            0.0
        },
    };
    (mode, ck)
}

/// Throughput of the audit-line → CEP window path.
#[derive(Debug, Clone, Serialize)]
pub struct CepPushStats {
    pub events: u64,
    pub elapsed_ms: f64,
    pub events_per_sec: f64,
}

/// Synthesize the audit stream the scale scenario's storm produces:
/// seven of every eight opens land on the `hot_paths`-file flash-crowd
/// set (the paper's premise — ERMS reacts to concentrated heat), the
/// eighth walks the full `paths`-file namespace on a scrambled stride
/// (background scans: mostly-cold keys that churn the intern pool and
/// group maps). Deterministic, so every run times the same byte stream.
pub fn synth_audit_lines(events: u64, paths: usize, hot_paths: usize) -> Vec<String> {
    let paths = paths.max(1);
    let hot = hot_paths.clamp(1, paths);
    (0..events)
        .map(|i| {
            let idx = if i % 8 == 7 {
                // Fibonacci scramble spreads the tail over the namespace.
                (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % paths
            } else {
                i as usize % hot
            };
            cep::audit::format_audit_line(
                simcore::SimTime::from_secs(i / 50),
                "bench",
                "10.0.0.1",
                "open",
                &format!("/scale/f{idx}"),
                None,
            )
        })
        .collect()
}

/// Push `events` synthetic audit opens (the storm-shaped stream from
/// [`synth_audit_lines`]) through a [`DataJudge`]'s full query set and
/// measure the rate.
pub fn cep_push_rate(events: u64, paths: usize, hot_paths: usize) -> CepPushStats {
    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = SimDuration::from_secs(600);
    let mut judge = DataJudge::new(thresholds);
    let lines = synth_audit_lines(events, paths, hot_paths);
    let start = Instant::now();
    judge.observe_lines(lines.iter().map(String::as_str));
    let elapsed = start.elapsed().as_secs_f64();
    CepPushStats {
        events,
        elapsed_ms: elapsed * 1e3,
        events_per_sec: if elapsed > 0.0 {
            events as f64 / elapsed
        } else {
            0.0
        },
    }
}

/// Allocation counts sampled by the `scale` binary's counting
/// allocator around each mode run (a proxy, not a profile: it counts
/// every allocation on the thread, tick loop and simulator alike).
#[derive(Debug, Clone, Serialize)]
pub struct AllocStats {
    pub incremental_allocs: u64,
    pub full_allocs: u64,
    /// Phase attribution (judge vs CEP vs telemetry) when the binary
    /// ran the dedicated probe runs; `null` otherwise.
    pub phases: Option<PhaseAllocs>,
}

/// Where the allocations go, one counting-allocator sample per phase.
///
/// * `judge_allocs` — the control-loop ticks of a telemetry-off run:
///   snapshotting, classification, task submission and execution.
/// * `cep_allocs` — pushing one synthetic audit storm through a bare
///   [`DataJudge`]'s query set (`observe_lines` only).
/// * `telemetry_allocs` — the *extra* allocations the identical tick
///   run costs once a recording sink is attached. The simulation is
///   deterministic, so the telemetry-on minus telemetry-off delta is
///   attributable to event emission and trace buffering alone.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseAllocs {
    pub judge_allocs: u64,
    pub cep_allocs: u64,
    pub telemetry_allocs: u64,
}

/// Allocations of the tick loop alone (file creation and inter-tick
/// simulation excluded), with or without a recording telemetry sink.
fn tick_allocs(cfg: &ScaleConfig, telemetry: bool, sample: &dyn Fn() -> u64) -> u64 {
    let mut c = scale_cluster(cfg);
    let mut m =
        ErmsManager::new(scale_erms_config(cfg, false), &mut c).expect("valid scale manager");
    let sink = telemetry.then(simcore::telemetry::TelemetrySink::recording);
    if let Some(sink) = &sink {
        c.set_telemetry(sink.clone());
        m.set_telemetry(sink.clone());
    }
    for i in 0..cfg.files {
        c.create_file(&format!("/scale/f{i}"), 64 * MB, 3, None)
            .expect("cluster sized to hold the namespace");
    }
    c.run_until_quiescent();
    settle_bootstrap(cfg, &mut c, &mut m);

    let mut total = 0u64;
    for tick in 0..cfg.ticks() {
        if tick < cfg.storm_ticks {
            for h in 0..cfg.hot_files.min(cfg.files) {
                for r in 0..cfg.readers_per_hot {
                    let id = (tick as u32) * 100_000 + (h as u32) * 1_000 + r;
                    let _ = c.open_read(Endpoint::Client(ClientId(id)), &format!("/scale/f{h}"));
                }
            }
            c.run_until_quiescent();
        }
        let now = c.now();
        let a0 = sample();
        let _ = m.tick(&mut c, now);
        total += sample() - a0;
        if let Some(sink) = &sink {
            // keep the trace buffer bounded; the emission cost already
            // landed inside the sampled window above
            let _ = sink.drain_events();
        }
        c.run_until(c.now() + cfg.tick_step);
        c.run_until_quiescent();
    }
    total
}

/// Run the phase-attribution probes for one size. `sample` reads the
/// binary's counting allocator (the library stays allocator-agnostic).
pub fn phase_allocs(cfg: &ScaleConfig, sample: &dyn Fn() -> u64) -> PhaseAllocs {
    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = cfg.window;
    let mut judge = DataJudge::new(thresholds);
    let lines = synth_audit_lines(20_000, cfg.files, cfg.hot_files);
    let a0 = sample();
    judge.observe_lines(lines.iter().map(String::as_str));
    let cep_allocs = sample() - a0;

    let judge_allocs = tick_allocs(cfg, false, sample);
    let traced = tick_allocs(cfg, true, sample);
    PhaseAllocs {
        judge_allocs,
        cep_allocs,
        telemetry_allocs: traced.saturating_sub(judge_allocs),
    }
}

/// Everything `BENCH_scale.json` records for one size.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleResult {
    pub size: &'static str,
    pub files: usize,
    pub nodes: u32,
    pub ticks: usize,
    pub incremental: ModeStats,
    pub full: ModeStats,
    /// full / incremental mean tick time (>1 means incremental wins).
    pub tick_speedup: f64,
    /// incremental / full files judged (<1 means work was skipped).
    pub judged_ratio: f64,
    pub cep: CepPushStats,
    /// `None` (→ `null`) when run without the counting allocator.
    pub allocations: Option<AllocStats>,
    /// `None` (→ `null`) unless run with `--checkpoint-every N`; taken
    /// from the incremental-mode run.
    pub checkpoints: Option<CheckpointStats>,
    /// `None` (→ `null`) when the binary skips the overhead probe.
    pub profiler: Option<ProfilerOverhead>,
}

/// Combine the two mode runs and the CEP measurement for one size.
pub fn assemble(
    cfg: &ScaleConfig,
    incremental: ModeStats,
    full: ModeStats,
    cep: CepPushStats,
) -> ScaleResult {
    let tick_speedup = if incremental.mean_tick_ms > 0.0 {
        full.mean_tick_ms / incremental.mean_tick_ms
    } else {
        1.0
    };
    let judged_ratio = if full.files_judged > 0 {
        incremental.files_judged as f64 / full.files_judged as f64
    } else {
        1.0
    };
    ScaleResult {
        size: cfg.label,
        files: cfg.files,
        nodes: cfg.nodes,
        ticks: cfg.ticks(),
        incremental,
        full,
        tick_speedup,
        judged_ratio,
        cep,
        allocations: None,
        checkpoints: None,
        profiler: None,
    }
}

/// Run one size end to end (both modes + CEP rate), without the
/// allocation proxy — the binary layers that on top.
pub fn run(cfg: &ScaleConfig) -> ScaleResult {
    let incremental = run_mode(cfg, false);
    let full = run_mode(cfg, true);
    let cep = cep_push_rate(50_000, cfg.files, cfg.hot_files);
    assemble(cfg, incremental, full, cep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> ScaleConfig {
        ScaleConfig {
            label: "mini",
            files: 24,
            nodes: 6,
            racks: 2,
            hot_files: 2,
            readers_per_hot: 8,
            storm_ticks: 2,
            idle_ticks: 10,
            tick_step: SimDuration::from_secs(60),
            window: SimDuration::from_secs(180),
        }
    }

    #[test]
    fn incremental_mode_judges_fewer_files() {
        let cfg = mini();
        let inc = run_mode(&cfg, false);
        let full = run_mode(&cfg, true);
        assert_eq!(full.files_judged, cfg.files * cfg.ticks());
        assert!(
            inc.files_judged < full.files_judged,
            "incremental {} vs full {}",
            inc.files_judged,
            full.files_judged
        );
    }

    #[test]
    fn cep_rate_is_positive_and_result_serialises() {
        let cfg = mini();
        let r = assemble(
            &cfg,
            run_mode(&cfg, false),
            run_mode(&cfg, true),
            cep_push_rate(2_000, cfg.files, cfg.hot_files),
        );
        assert!(r.cep.events_per_sec > 0.0);
        assert!(r.judged_ratio < 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"size\":\"mini\""));
        assert!(json.contains("\"allocations\":null"));
    }

    #[test]
    fn checkpoint_every_snapshots_and_verifies() {
        let cfg = mini();
        let (mode, ck) = run_mode_checkpointed(&cfg, false, Some(4));
        let ck = ck.expect("stats requested");
        assert_eq!(mode.ticks, cfg.ticks());
        assert_eq!(ck.snapshots, cfg.ticks() / 4);
        assert!(ck.total_bytes > 0);
        assert!(
            ck.verified,
            "every mid-run snapshot must re-save to identical bytes"
        );
        let json = serde_json::to_string(&ck).unwrap();
        assert!(json.contains("\"verified\":true"));
    }

    #[test]
    fn sizes_resolve_by_name() {
        for name in ["small", "medium", "large", "xlarge"] {
            let cfg = ScaleConfig::named(name).unwrap();
            assert_eq!(cfg.label, name);
            assert!(cfg.ticks() > 0);
        }
        assert!(ScaleConfig::named("galactic").is_none());
        let xl = ScaleConfig::xlarge();
        assert!(xl.files >= 100_000 && xl.nodes >= 1000);
    }

    #[test]
    fn phase_probe_attributes_allocations() {
        use std::cell::Cell;
        // deterministic fake "allocator": monotonically advancing
        // counter, bumped by the probe's own work via a closure the
        // binary normally wires to its global allocator
        let counter = Cell::new(0u64);
        let sample = || {
            counter.set(counter.get() + 1);
            counter.get()
        };
        let p = phase_allocs(&mini(), &sample);
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("judge_allocs"));
        assert!(json.contains("cep_allocs"));
        assert!(json.contains("telemetry_allocs"));
    }
}
