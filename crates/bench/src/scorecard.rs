//! `bench scorecard` — the per-scenario SLO scorecard behind the
//! perf-regression gate.
//!
//! Runs a fixed matrix of named scenarios (the checkpointing suite's
//! churn family, the production-traffic family — diurnal multi-tenant,
//! flash crowds, ingest+scan, tiered pressure — plus the scale storm)
//! under the self-profiler, and
//! distils each run into one [`ScenarioCard`]: a flat map of
//! *deterministic* metrics (read-latency percentiles from span
//! reconstruction, storage overhead vs the replication ideal, energy
//! node-seconds, durability and oracle-violation counts, corruption
//! MTTD/MTTR — all pure functions of the seed) and a flat map of
//! *wall-clock* metrics (mean/max tick cost, CEP parse rate, run wall
//! time — host-dependent, never compared exactly). The split mirrors
//! `trace-tools regress`: deterministic metrics must match a baseline
//! bit for bit, wall-clock metrics only within a tolerance, and
//! explicit budgets put hard ceilings/floors on either kind.
//!
//! The scorecard binary serialises the matrix to `results/SCORECARD.json`
//! and the merged profiler tree to `results/profile.json`;
//! [`baseline_value`] derives the checked-in `results/slo_baseline.json`
//! the CI gate diffs candidates against.

use std::collections::BTreeMap;
use std::time::Instant;

use erms::ErmsManager;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::ClusterSim;
use serde::Value;
use simcore::profiler::{self, ProfileNode};
use simcore::spans::oracle::{OracleConfig, TraceOracle};
use simcore::spans::{parse_jsonl, SpanCollector, SpanKind};
use simcore::telemetry::TelemetrySink;
use simcore::units::MB;
use simcore::TelemetryEvent;

use crate::checkpointing::{ResumableRun, Scenario};
use crate::scale::{scale_cluster, scale_erms_config, ScaleConfig};

/// Schema version stamped into every emitted document.
pub const FORMAT: u64 = 1;

/// Seed every scorecard run uses — the deterministic metrics are a pure
/// function of it, so the baseline pins it.
pub const DEFAULT_SEED: u64 = 42;

/// Wall-clock tolerance the generated baseline records. Generous on
/// purpose: CI machines vary wildly, and the budgets (not the
/// tolerance) carry the hard ceilings.
pub const DEFAULT_WALLCLOCK_TOLERANCE_PCT: f64 = 400.0;

/// One entry of the scenario matrix.
#[derive(Debug, Clone)]
pub enum Case {
    /// A churn scenario from the checkpointing registry, run through
    /// [`ResumableRun`] to its horizon.
    Churn(Box<Scenario>),
    /// A scale-bench flash-crowd storm, driven with a recording sink.
    Scale(ScaleConfig),
}

impl Case {
    pub fn name(&self) -> String {
        match self {
            Case::Churn(s) => s.name.to_string(),
            Case::Scale(c) => format!("scale-{}", c.label),
        }
    }

    /// Look a case up by scorecard name (any checkpointing-registry
    /// scenario — `churn-*`, `prod-*`, `soak-*` — or `scale-*`).
    pub fn by_name(name: &str) -> Option<Case> {
        if let Some(s) = Scenario::by_name(name) {
            return Some(Case::Churn(Box::new(s)));
        }
        name.strip_prefix("scale-")
            .and_then(ScaleConfig::named)
            .map(Case::Scale)
    }
}

/// The default matrix: every churn and production-traffic scenario plus
/// the small scale storm. The `soak-*` family is excluded — multi-day
/// horizons belong to `bench soak` and its sharded CI job, not the
/// per-commit scorecard. Learned-judge scenarios are excluded too: the
/// checked-in baseline doubles as the rules backend's byte-identity
/// regression guard, and must not churn when the learners are retuned —
/// `bench ablation judge` covers those. `scale-xlarge` is opt-in via
/// the binary's `--xlarge` flag — it runs minutes, not seconds.
pub fn default_matrix() -> Vec<Case> {
    let mut cases: Vec<Case> = Scenario::names()
        .iter()
        .filter(|n| !n.starts_with("soak-"))
        .map(|n| Scenario::by_name(n).expect("registry name"))
        .filter(|s| s.judge_backend == erms::JudgeBackend::Rules)
        .map(|s| Case::Churn(Box::new(s)))
        .collect();
    cases.push(Case::Scale(ScaleConfig::small()));
    cases
}

/// One scenario's distilled scorecard row.
#[derive(Debug, Clone)]
pub struct ScenarioCard {
    pub name: String,
    pub seed: u64,
    /// Pure functions of the seed: compared *exactly* against a baseline.
    pub deterministic: BTreeMap<String, f64>,
    /// Host-dependent timings: compared only within a tolerance.
    pub wallclock: BTreeMap<String, f64>,
    /// The scenario's profiler snapshot (tree shape deterministic,
    /// weights host-dependent).
    pub profile: ProfileNode,
}

/// The whole matrix, ready to serialise.
#[derive(Debug, Clone, Default)]
pub struct Scorecard {
    pub scenarios: Vec<ScenarioCard>,
}

/// Run one case under the profiler and distil its card.
pub fn run_case(case: &Case, seed: u64) -> ScenarioCard {
    match case {
        Case::Churn(s) => run_churn((**s).clone(), seed),
        Case::Scale(c) => run_scale(c, seed),
    }
}

/// Run the full matrix.
pub fn run_matrix(cases: &[Case], seed: u64) -> Scorecard {
    Scorecard {
        scenarios: cases.iter().map(|c| run_case(c, seed)).collect(),
    }
}

fn run_churn(scenario: Scenario, seed: u64) -> ScenarioCard {
    let ticks = scenario.total_ticks;
    profiler::reset();
    profiler::set_enabled(true);
    let wall = Instant::now();
    let mut run = ResumableRun::new(scenario, seed);
    run.finish();
    let run_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    profiler::set_enabled(false);
    let profile = profiler::snapshot();
    profiler::reset();

    let trace = run.drain_trace();
    build_card(CardParts {
        name: run.scenario().name.to_string(),
        seed,
        trace: &trace,
        cluster: run.cluster(),
        manager: run.manager(),
        ticks,
        run_wall_ms,
        profile,
    })
}

/// The scale storm, re-driven with a recording sink (the scale bench
/// proper runs telemetry-off to time bare ticks; the scorecard wants
/// the trace). Bootstrap noise is drained before the measured region so
/// the span metrics cover the storm, not the bulk create.
fn run_scale(cfg: &ScaleConfig, seed: u64) -> ScenarioCard {
    profiler::reset();
    profiler::set_enabled(true);
    let wall = Instant::now();

    let mut c = scale_cluster(cfg);
    let sink = TelemetrySink::recording();
    c.set_telemetry(sink.clone());
    let mut m =
        ErmsManager::new(scale_erms_config(cfg, false), &mut c).expect("valid scale manager");
    m.set_telemetry(sink.clone());
    for i in 0..cfg.files {
        c.create_file(&format!("/scale/f{i}"), 64 * MB, 3, None)
            .expect("cluster sized to hold the namespace");
    }
    c.run_until_quiescent();
    // settle the bulk-create transient exactly like the scale bench:
    // age the creation audit events out of the CEP window, drain the
    // dirty set with one untimed tick, then discard the bootstrap trace
    c.run_until(c.now() + cfg.window + cfg.tick_step);
    c.run_until_quiescent();
    let now = c.now();
    let _ = m.tick(&mut c, now);
    c.run_until(c.now() + cfg.tick_step);
    c.run_until_quiescent();
    let _ = sink.drain_jsonl();

    for tick in 0..cfg.ticks() {
        if tick < cfg.storm_ticks {
            for h in 0..cfg.hot_files.min(cfg.files) {
                for r in 0..cfg.readers_per_hot {
                    let id = (tick as u32) * 100_000 + (h as u32) * 1_000 + r;
                    let _ = c.open_read(Endpoint::Client(ClientId(id)), &format!("/scale/f{h}"));
                }
            }
            c.run_until_quiescent();
        }
        let now = c.now();
        let _ = m.tick(&mut c, now);
        c.run_until(c.now() + cfg.tick_step);
        c.run_until_quiescent();
    }
    let end = c.now();
    c.durability_mut().finalize(end);

    let run_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    profiler::set_enabled(false);
    let profile = profiler::snapshot();
    profiler::reset();

    let trace = sink.drain_jsonl();
    build_card(CardParts {
        name: format!("scale-{}", cfg.label),
        seed,
        trace: &trace,
        cluster: &c,
        manager: &m,
        ticks: cfg.ticks() as u64,
        run_wall_ms,
        profile,
    })
}

struct CardParts<'a> {
    name: String,
    seed: u64,
    trace: &'a str,
    cluster: &'a ClusterSim,
    manager: &'a ErmsManager,
    ticks: u64,
    run_wall_ms: f64,
    profile: ProfileNode,
}

/// Distil the metric maps from a finished run's trace and final state.
fn build_card(p: CardParts<'_>) -> ScenarioCard {
    let events = parse_jsonl(p.trace).expect("scorecard runs emit well-formed traces");
    let report = SpanCollector::collect(&events);
    let read = report.latency(SpanKind::Read);

    let mut oracle = TraceOracle::new(OracleConfig::default());
    for ev in &events {
        oracle.observe(ev);
    }
    let oracle_violations = oracle.into_violations().len();

    // Corruption lifecycle latencies: first injection → first detection
    // per block (MTTD), detection → verified repair (MTTR). Sim-time, so
    // deterministic.
    let mut injected_at: BTreeMap<u64, f64> = BTreeMap::new();
    let mut detected_at: BTreeMap<u64, f64> = BTreeMap::new();
    let (mut injected, mut detected, mut repaired) = (0u64, 0u64, 0u64);
    let mut detect_lat: Vec<f64> = Vec::new();
    let mut repair_lat: Vec<f64> = Vec::new();
    for ev in &events {
        let t = ev.time.as_secs_f64();
        match &ev.event {
            TelemetryEvent::CorruptionInjected { block, .. } => {
                injected += 1;
                injected_at.entry(*block).or_insert(t);
            }
            TelemetryEvent::CorruptionDetected { block, .. } => {
                detected += 1;
                if let Some(&t0) = injected_at.get(block) {
                    detected_at.entry(*block).or_insert_with(|| {
                        detect_lat.push(t - t0);
                        t
                    });
                }
            }
            TelemetryEvent::CorruptRepaired { block, .. } => {
                repaired += 1;
                if let Some(t0) = detected_at.remove(block) {
                    repair_lat.push(t - t0);
                    injected_at.remove(block);
                }
            }
            _ => {}
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };

    // Storage: actual bytes on disk vs the logical data at the default
    // replication factor (every scorecard file is created at 3).
    let logical: u64 = p.cluster.namespace().files().map(|f| f.size).sum();
    let used = p.cluster.storage_used();
    let ideal = (logical * 3) as f64;
    let overhead = if ideal > 0.0 {
        used as f64 / ideal
    } else {
        0.0
    };

    // Energy: node-seconds the standby pool actually burned vs what an
    // all-active cluster of the same pool would have.
    let now = p.cluster.now();
    let standby_s = p.manager.model().standby_node_seconds(now);
    let all_active_s = p.manager.model().all_active_node_seconds(now);
    let saved_pct = if all_active_s > 0.0 {
        100.0 * (all_active_s - standby_s) / all_active_s
    } else {
        0.0
    };

    let d = p.cluster.durability();
    let resolved: Vec<f64> = d
        .windows()
        .iter()
        .filter(|w| !w.unresolved)
        .map(|w| w.duration_secs())
        .collect();
    let unresolved = d.windows().iter().filter(|w| w.unresolved).count();

    let mut det = BTreeMap::new();
    let mut put = |k: &str, v: f64| {
        det.insert(k.to_string(), v);
    };
    put("read_count", read.count as f64);
    put("read_failed", read.failed as f64);
    put("read_mean_s", read.mean);
    put("read_p50_s", read.p50);
    put("read_p95_s", read.p95);
    put("read_p99_s", read.p99);
    put("read_max_s", read.max);
    put("storage_used_bytes", used as f64);
    put("storage_overhead_x", overhead);
    put("energy_standby_node_s", standby_s);
    put("energy_all_active_node_s", all_active_s);
    put("energy_saved_pct", saved_pct);
    put("unavailability_windows", d.windows().len() as f64);
    put("unresolved_windows", unresolved as f64);
    put("data_loss_events", d.loss_events().len() as f64);
    put("durability_mttr_s", mean(&resolved));
    put("repair_bytes", d.repair_bytes() as f64);
    put("oracle_violations", oracle_violations as f64);
    put("corruption_injected", injected as f64);
    put("corruption_detected", detected as f64);
    put("corruption_repaired", repaired as f64);
    put("corruption_mttd_s", mean(&detect_lat));
    put("corruption_mttr_s", mean(&repair_lat));
    put("trace_events", events.len() as f64);
    put("ticks", p.ticks as f64);

    let mut wallclock = BTreeMap::new();
    wallclock.insert("run_wall_ms".to_string(), p.run_wall_ms);
    if let Some(tick) = p.profile.find("tick") {
        if tick.calls > 0 {
            wallclock.insert(
                "mean_tick_ms".to_string(),
                tick.wall_ns as f64 / tick.calls as f64 / 1e6,
            );
            wallclock.insert("max_tick_ms".to_string(), tick.max_ns as f64 / 1e6);
        }
    }
    if let Some((calls, wall_ns)) = fold_named(&p.profile, "cep/parse") {
        if wall_ns > 0 {
            wallclock.insert(
                "cep_parse_per_sec".to_string(),
                calls as f64 / (wall_ns as f64 / 1e9),
            );
        }
    }

    ScenarioCard {
        name: p.name,
        seed: p.seed,
        deterministic: det,
        wallclock,
        profile: p.profile,
    }
}

/// Fold `(calls, wall_ns)` over every scope with exactly this name —
/// needed for scopes whose names themselves contain `/` (like
/// `cep/parse`), which [`ProfileNode::find`]'s path syntax cannot
/// address, and which may appear under several parents.
fn fold_named(node: &ProfileNode, name: &str) -> Option<(u64, u64)> {
    let mut acc: Option<(u64, u64)> = None;
    fn walk(node: &ProfileNode, name: &str, acc: &mut Option<(u64, u64)>) {
        if node.name == name {
            let (c, w) = acc.unwrap_or((0, 0));
            *acc = Some((c + node.calls, w + node.wall_ns));
        }
        for ch in &node.children {
            walk(ch, name, acc);
        }
    }
    walk(node, name, &mut acc);
    acc
}

// ---------------------------------------------------------------------
// Serialisation

/// Encode an f64 as the narrowest JSON number that round-trips: counts
/// come out as integers, real measurements as floats.
fn num(v: f64) -> Value {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        if v >= 0.0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v as i64)
        }
    } else {
        Value::F64(v)
    }
}

fn metric_map(m: &BTreeMap<String, f64>) -> Value {
    Value::Map(m.iter().map(|(k, &v)| (k.clone(), num(v))).collect())
}

/// Flatten a profiler tree into rows of `/`-joined phase paths — the
/// per-phase tick breakdown embedded in the scorecard. `calls` is
/// deterministic; the wall/alloc columns are host-dependent and exist
/// for humans, not for the exact comparator.
fn phase_rows(node: &ProfileNode, prefix: &str, out: &mut Vec<Value>) {
    for child in &node.children {
        let path = if prefix.is_empty() {
            child.name.clone()
        } else {
            format!("{prefix}/{}", child.name)
        };
        out.push(Value::Map(vec![
            ("phase".to_string(), Value::Str(path.clone())),
            ("calls".to_string(), Value::U64(child.calls)),
            ("wall_ns".to_string(), Value::U64(child.wall_ns)),
            ("max_ns".to_string(), Value::U64(child.max_ns)),
            ("alloc".to_string(), Value::U64(child.alloc)),
        ]));
        phase_rows(child, &path, out);
    }
}

impl ScenarioCard {
    pub fn to_value(&self) -> Value {
        let mut phases = Vec::new();
        phase_rows(&self.profile, "", &mut phases);
        Value::Map(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("seed".to_string(), Value::U64(self.seed)),
            ("deterministic".to_string(), metric_map(&self.deterministic)),
            ("wallclock".to_string(), metric_map(&self.wallclock)),
            ("phases".to_string(), Value::Seq(phases)),
        ])
    }
}

impl Scorecard {
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("format".to_string(), Value::U64(FORMAT)),
            (
                "scenarios".to_string(),
                Value::Seq(self.scenarios.iter().map(|s| s.to_value()).collect()),
            ),
        ])
    }

    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("value serialises")
    }

    /// Merge the per-scenario profiler snapshots into one tree whose
    /// top-level scopes are the scenario names — `results/profile.json`.
    pub fn merged_profile(&self) -> ProfileNode {
        ProfileNode {
            name: String::new(),
            children: self
                .scenarios
                .iter()
                .map(|s| {
                    let mut p = s.profile.clone();
                    p.name = s.name.clone();
                    p
                })
                .collect(),
            ..ProfileNode::default()
        }
    }
}

/// Derive the SLO baseline document from a measured scorecard: the
/// deterministic map pinned exactly, the wall-clock map with the
/// default tolerance, and a budget set with hard bounds — zero oracle
/// violations, permanent losses capped at what the seed produces, read
/// p99 and storage overhead within headroom of measured, tick cost
/// under a generous absolute ceiling, parse rate above a floor.
pub fn baseline_value(card: &Scorecard) -> Value {
    let scenarios = card
        .scenarios
        .iter()
        .map(|s| {
            let mut budgets = vec![
                budget_max("oracle_violations", 0.0),
                budget_max(
                    "data_loss_events",
                    s.deterministic
                        .get("data_loss_events")
                        .copied()
                        .unwrap_or(0.0),
                ),
                budget_max(
                    "read_p99_s",
                    headroom(
                        s.deterministic.get("read_p99_s").copied().unwrap_or(0.0),
                        2.0,
                        1.0,
                    ),
                ),
                budget_max(
                    "storage_overhead_x",
                    headroom(
                        s.deterministic
                            .get("storage_overhead_x")
                            .copied()
                            .unwrap_or(1.0),
                        1.5,
                        2.0,
                    ),
                ),
            ];
            if let Some(&mean_tick) = s.wallclock.get("mean_tick_ms") {
                budgets.push(budget_max("mean_tick_ms", headroom(mean_tick, 20.0, 50.0)));
            }
            if let Some(&rate) = s.wallclock.get("cep_parse_per_sec") {
                budgets.push(budget_min("cep_parse_per_sec", rate / 20.0));
            }
            Value::Map(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("budgets".to_string(), Value::Seq(budgets)),
                ("deterministic".to_string(), metric_map(&s.deterministic)),
                ("wallclock".to_string(), metric_map(&s.wallclock)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("format".to_string(), Value::U64(FORMAT)),
        (
            "wallclock_tolerance_pct".to_string(),
            Value::F64(DEFAULT_WALLCLOCK_TOLERANCE_PCT),
        ),
        ("scenarios".to_string(), Value::Seq(scenarios)),
    ])
}

/// `measured * factor`, but at least `floor` — budgets must absorb
/// measurement noise near zero.
fn headroom(measured: f64, factor: f64, floor: f64) -> f64 {
    (measured * factor).max(floor)
}

fn budget_max(metric: &str, max: f64) -> Value {
    Value::Map(vec![
        ("metric".to_string(), Value::Str(metric.to_string())),
        ("max".to_string(), num(max)),
    ])
}

fn budget_min(metric: &str, min: f64) -> Value {
    Value::Map(vec![
        ("metric".to_string(), Value::Str(metric.to_string())),
        ("min".to_string(), num(min)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_matrix_covers_churn_production_and_scale() {
        let m = default_matrix();
        assert!(m.len() >= 9, "matrix has {} cases", m.len());
        let names: Vec<String> = m.iter().map(|c| c.name()).collect();
        for expect in [
            "churn-small",
            "churn-small-full",
            "churn-tiny",
            "churn-corrupt",
            "prod-diurnal",
            "prod-flashcrowd",
            "prod-ingest",
            "prod-tiered",
            "scale-small",
        ] {
            assert!(names.iter().any(|n| n == expect), "matrix misses {expect}");
        }
        // the multi-day soaks stay out of the per-commit gate
        assert!(
            !names.iter().any(|n| n.starts_with("soak-")),
            "soaks belong to the soak job, not the scorecard"
        );
        // learned-judge scenarios are benchmarked by the ablation, not
        // gated against the rules baseline
        assert!(
            !names.iter().any(|n| n.starts_with("churn-learned-")),
            "learned backends belong to the judge ablation, not the scorecard"
        );
    }

    #[test]
    fn learned_scenarios_still_resolve_as_explicit_cases() {
        assert!(matches!(
            Case::by_name("churn-learned-q"),
            Some(Case::Churn(_))
        ));
        assert!(matches!(
            Case::by_name("churn-learned-hmm"),
            Some(Case::Churn(_))
        ));
    }

    #[test]
    fn soak_scenarios_still_resolve_as_explicit_cases() {
        assert!(matches!(
            Case::by_name("soak-diurnal"),
            Some(Case::Churn(_))
        ));
    }

    #[test]
    fn cases_resolve_by_name() {
        assert!(matches!(Case::by_name("churn-tiny"), Some(Case::Churn(_))));
        assert!(matches!(Case::by_name("scale-small"), Some(Case::Scale(_))));
        assert!(Case::by_name("scale-galactic").is_none());
        assert!(Case::by_name("nope").is_none());
    }

    #[test]
    fn a_churn_card_carries_every_metric_family() {
        let card = run_case(&Case::by_name("churn-tiny").unwrap(), DEFAULT_SEED);
        assert_eq!(card.name, "churn-tiny");
        for key in [
            "read_count",
            "read_p50_s",
            "read_p95_s",
            "read_p99_s",
            "storage_overhead_x",
            "energy_saved_pct",
            "unavailability_windows",
            "durability_mttr_s",
            "oracle_violations",
            "corruption_mttd_s",
            "trace_events",
        ] {
            assert!(card.deterministic.contains_key(key), "missing {key}");
        }
        assert!(card.deterministic["read_count"] > 0.0, "crowd read");
        assert_eq!(card.deterministic["oracle_violations"], 0.0);
        assert!(card.wallclock.contains_key("mean_tick_ms"));
        assert!(card.wallclock.contains_key("cep_parse_per_sec"));
        assert!(card.profile.find("tick").is_some(), "profiler recorded");
    }

    #[test]
    fn deterministic_metrics_are_a_pure_function_of_the_seed() {
        let case = Case::by_name("churn-tiny").unwrap();
        let a = run_case(&case, 7);
        let b = run_case(&case, 7);
        let bits = |m: &BTreeMap<String, f64>| -> Vec<(String, u64)> {
            m.iter().map(|(k, v)| (k.clone(), v.to_bits())).collect()
        };
        assert_eq!(bits(&a.deterministic), bits(&b.deterministic));
        // the profile *shape* (paths and call counts) is deterministic too
        fn shape(n: &ProfileNode, prefix: &str, out: &mut Vec<(String, u64)>) {
            for c in &n.children {
                let path = format!("{prefix}/{}", c.name);
                out.push((path.clone(), c.calls));
                shape(c, &path, out);
            }
        }
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        shape(&a.profile, "", &mut sa);
        shape(&b.profile, "", &mut sb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn corruption_scenario_measures_the_detection_pipeline() {
        let card = run_case(&Case::by_name("churn-corrupt").unwrap(), DEFAULT_SEED);
        assert!(card.deterministic["corruption_injected"] > 0.0);
        assert!(card.deterministic["corruption_detected"] > 0.0);
        assert!(card.deterministic["corruption_mttd_s"] > 0.0);
        assert!(
            card.profile.find("tick/scrub").is_some(),
            "scrubber profiled"
        );
    }

    #[test]
    fn the_baseline_passes_its_own_scorecard_through_regress() {
        let case = Case::by_name("churn-tiny").unwrap();
        let sc = Scorecard {
            scenarios: vec![run_case(&case, DEFAULT_SEED)],
        };
        let candidate = sc.to_json_pretty();
        let baseline = serde_json::to_string_pretty(&baseline_value(&sc)).expect("serialises");
        let (report, findings) =
            trace_tools::regress(&baseline, &candidate, None).expect("documents parse");
        assert!(findings.is_empty(), "self-regress must pass:\n{report}");
        assert!(report.contains("verdict: PASS"));
    }

    #[test]
    fn a_seeded_regression_is_caught() {
        let case = Case::by_name("churn-tiny").unwrap();
        let sc = Scorecard {
            scenarios: vec![run_case(&case, DEFAULT_SEED)],
        };
        let baseline = serde_json::to_string_pretty(&baseline_value(&sc)).expect("serialises");
        // corrupt one deterministic metric in the candidate
        let mut worse = sc.clone();
        worse.scenarios[0]
            .deterministic
            .insert("read_p99_s".to_string(), 1.0e9);
        let (report, findings) =
            trace_tools::regress(&baseline, &worse.to_json_pretty(), None).expect("parses");
        assert!(
            !findings.is_empty(),
            "regression must be flagged:\n{report}"
        );
        assert!(report.contains("verdict: FAIL"));
    }
}
