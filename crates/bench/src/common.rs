//! Shared experiment plumbing: cluster variants and result output.

use erms::{ErmsConfig, ErmsManager, ErmsPlacement, Thresholds};
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware, NodeId};
use serde::Serialize;
use simcore::SimDuration;
use std::path::PathBuf;

/// Which system variant an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Vanilla Hadoop: default rack-aware placement, all nodes active,
    /// fixed triplication.
    Vanilla,
    /// ERMS with the paper's active/standby split and the given τ_M.
    Erms { tau_hot: f64 },
}

impl Mode {
    pub fn label(self) -> String {
        match self {
            Mode::Vanilla => "vanilla".to_string(),
            Mode::Erms { tau_hot } => format!("erms_tau{}", tau_hot as u32),
        }
    }
}

/// The paper's split: datanodes 10..18 standby, 0..10 active.
pub fn paper_standby_pool() -> Vec<NodeId> {
    (10..18).map(NodeId).collect()
}

/// Build the cluster for a mode (paper-testbed shape).
pub fn build_cluster(mode: Mode) -> ClusterSim {
    let cfg = ClusterConfig::paper_testbed();
    match mode {
        Mode::Vanilla => ClusterSim::new(cfg, Box::new(DefaultRackAware)),
        Mode::Erms { .. } => ClusterSim::new(cfg, Box::new(ErmsPlacement::new())),
    }
}

/// Build the ERMS manager for a mode. Returns `None` in vanilla mode.
///
/// `use_standby_pool` selects between the paper's 10+8 active/standby
/// split (the Fig. 8/9 deployment) and ERMS logic over an all-active
/// cluster (the Fig. 3 replay, where vanilla and ERMS share the same
/// serving capacity and differ only in replication management).
pub fn build_manager(
    mode: Mode,
    cluster: &mut ClusterSim,
    window: SimDuration,
    cold_age: SimDuration,
    use_standby_pool: bool,
) -> Option<ErmsManager> {
    let Mode::Erms { tau_hot } = mode else {
        return None;
    };
    let mut thresholds = Thresholds::default().with_tau_hot(tau_hot);
    thresholds.window = window;
    thresholds.cold_age = cold_age;
    let cfg = ErmsConfig::builder()
        .thresholds(thresholds)
        .standby(if use_standby_pool {
            paper_standby_pool()
        } else {
            Vec::new()
        })
        .build()
        .expect("valid bench config");
    Some(ErmsManager::new(cfg, cluster).expect("valid bench manager"))
}

/// Where figure JSON lands (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Archive a figure result as pretty JSON; best-effort (the printed
/// tables are the primary output).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(path, json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::MB;

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::Vanilla.label(), "vanilla");
        assert_eq!(Mode::Erms { tau_hot: 8.0 }.label(), "erms_tau8");
    }

    #[test]
    fn vanilla_cluster_serves_all_nodes() {
        let c = build_cluster(Mode::Vanilla);
        assert_eq!(c.serving_nodes(), 18);
    }

    #[test]
    fn erms_mode_wires_the_standby_pool() {
        let mut c = build_cluster(Mode::Erms { tau_hot: 8.0 });
        let m = build_manager(
            Mode::Erms { tau_hot: 8.0 },
            &mut c,
            SimDuration::from_secs(300),
            SimDuration::from_hours(1),
            true,
        )
        .unwrap();
        assert_eq!(c.serving_nodes(), 10, "8 standby powered off");
        assert_eq!(m.model().standby_nodes().count(), 8);
        // base data lands only on active nodes
        c.create_file("/f", 64 * MB, 3, None).unwrap();
        let b = c.namespace().files().next().unwrap().blocks[0];
        for loc in c.blockmap().replica_nodes(b) {
            assert!(loc.0 < 10);
        }
    }

    #[test]
    fn vanilla_has_no_manager() {
        let mut c = build_cluster(Mode::Vanilla);
        assert!(build_manager(
            Mode::Vanilla,
            &mut c,
            SimDuration::from_secs(300),
            SimDuration::from_hours(1),
            false,
        )
        .is_none());
    }
}
