//! Figures 8 and 9 — session capacity and the Active/Standby model.
//!
//! Both figures read a 1 GB file directly (no MapReduce) while every
//! *active* node runs background task I/O — in a busy production
//! cluster each tasktracker keeps its map slots full, so per-node
//! background intensity is a property of the node, not of the cluster
//! width ("standby nodes might be better than active nodes when the
//! active nodes are heavily used"). The two deployments compared:
//!
//! * **all-active** — 18 serving nodes, all busy with local task I/O;
//!   the hot file's replicas all sit on busy disks;
//! * **active/standby** — 10 busy active nodes + 8 standby; the file's
//!   *extra* replicas (beyond the default 3) land on freshly
//!   commissioned standby nodes whose disks serve hot reads only.
//!
//! Fig. 8 sweeps the replica count and reports the maximum number of
//! concurrent readers the replica set sustains at a QoS floor ("the
//! maximum concurrent access number of each replica could hold is
//! 8-10"). Fig. 9 fixes 70 concurrent readers and reports throughput
//! and execution time versus replica count.

use erms::ErmsPlacement;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware, NodeId};
use serde::Serialize;
use simcore::stats::OnlineStats;
use simcore::units::{Bytes, GB, MB};

/// Deployment variants of Figures 8/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeModel {
    AllActive,
    ActiveStandby,
}

impl NodeModel {
    pub fn label(self) -> &'static str {
        match self {
            NodeModel::AllActive => "all_active",
            NodeModel::ActiveStandby => "active_standby",
        }
    }
}

#[derive(Debug, Clone)]
pub struct CapacityConfig {
    pub file_size: Bytes,
    /// Local task-I/O streams each *active* node runs throughout the
    /// measurement (map slots kept full by the background job queue).
    pub background_sessions_per_node: usize,
    /// Size of each node's local background file (must outlast the
    /// measurement at shared disk rates).
    pub background_file_size: Bytes,
    /// QoS floor defining "could hold" (MB/s per reader).
    pub qos_mb_s: f64,
    /// Fig. 8 search bounds and step.
    pub max_probe: usize,
    pub probe_step: usize,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            file_size: GB,
            background_sessions_per_node: 2,
            background_file_size: 8 * GB,
            qos_mb_s: 8.0,
            max_probe: 120,
            probe_step: 4,
        }
    }
}

impl CapacityConfig {
    pub fn small() -> Self {
        CapacityConfig {
            file_size: 256 * MB,
            background_file_size: 2 * GB,
            max_probe: 60,
            probe_step: 8,
            ..Self::default()
        }
    }
}

/// Build the deployment and return (cluster, hot file path).
fn setup(model: NodeModel, replication: usize, cfg: &CapacityConfig) -> (ClusterSim, String) {
    let base = ClusterConfig::paper_testbed();
    let hot_path = "/capacity/hot".to_string();
    match model {
        NodeModel::AllActive => {
            let mut c = ClusterSim::new(base, Box::new(DefaultRackAware));
            create_background(&mut c, cfg);
            c.create_file(&hot_path, cfg.file_size, replication, None)
                .expect("fresh cluster");
            (c, hot_path)
        }
        NodeModel::ActiveStandby => {
            let mut c = ClusterSim::new(base, Box::new(ErmsPlacement::new()));
            let standby: Vec<NodeId> = (10..18).map(NodeId).collect();
            c.designate_standby(&standby);
            // base data + background land on the 10 active nodes
            create_background(&mut c, cfg);
            let file = c
                .create_file(&hot_path, cfg.file_size, 3.min(replication), None)
                .expect("fresh cluster");
            // commission the standby pool, then park the extras there
            for &n in &standby {
                c.commission(n);
            }
            c.run_until_quiescent(); // boots complete
            if replication > 3 {
                c.set_file_replication(file, replication);
                c.run_until_quiescent(); // copies land before measuring
            }
            (c, hot_path)
        }
    }
}

/// One background file per active node, pinned to that node (r = 1 with
/// the node as writer), so each local task stream hits only its own disk.
fn create_background(c: &mut ClusterSim, cfg: &CapacityConfig) {
    let nodes: Vec<NodeId> = c.topology().nodes().collect();
    for n in nodes {
        if c.node_state(n) != hdfs_sim::datanode::NodeState::Active {
            continue;
        }
        c.create_file(
            &format!("/capacity/bg_{}", n.0),
            cfg.background_file_size,
            1,
            Some(n),
        )
        .expect("fresh cluster");
    }
}

/// Start the per-node local task streams on every active node.
fn start_background(c: &mut ClusterSim, cfg: &CapacityConfig) {
    let nodes: Vec<NodeId> = c.topology().nodes().collect();
    for n in nodes {
        let path = format!("/capacity/bg_{}", n.0);
        if c.namespace().resolve(&path).is_none() {
            continue; // standby node: no background work
        }
        for _ in 0..cfg.background_sessions_per_node {
            c.open_read(Endpoint::Node(n), &path)
                .expect("background file exists");
        }
    }
}

/// Measured outcome of one (model, replication, readers) trial.
#[derive(Debug, Clone, Serialize)]
pub struct Trial {
    pub model: String,
    pub replication: usize,
    pub readers: usize,
    pub mean_throughput_mb_s: f64,
    pub min_throughput_mb_s: f64,
    pub mean_exec_secs: f64,
}

/// Run one trial: N hot readers against the deployment.
pub fn trial(model: NodeModel, replication: usize, readers: usize, cfg: &CapacityConfig) -> Trial {
    let (mut c, hot) = setup(model, replication, cfg);
    start_background(&mut c, cfg);
    c.drain_completed_reads();
    for i in 0..readers {
        c.open_read(Endpoint::Client(ClientId(1 + i as u32)), &hot)
            .expect("hot file exists");
    }
    c.run_until_quiescent();
    let mut tput = OnlineStats::new();
    let mut exec = OnlineStats::new();
    for r in c.drain_completed_reads() {
        if r.path != hot || r.failed {
            continue;
        }
        tput.push(r.throughput_mb_s());
        exec.push(r.duration());
    }
    Trial {
        model: model.label().to_string(),
        replication,
        readers,
        mean_throughput_mb_s: tput.mean(),
        min_throughput_mb_s: if tput.count() == 0 { 0.0 } else { tput.min() },
        mean_exec_secs: exec.mean(),
    }
}

/// Fig. 8: the largest reader count whose mean throughput stays at or
/// above the QoS floor.
pub fn max_sustained(
    model: NodeModel,
    replication: usize,
    cfg: &CapacityConfig,
) -> (usize, Vec<Trial>) {
    let mut best = 0usize;
    let mut trials = Vec::new();
    let mut n = cfg.probe_step;
    while n <= cfg.max_probe {
        let t = trial(model, replication, n, cfg);
        let ok = t.mean_throughput_mb_s >= cfg.qos_mb_s;
        trials.push(t);
        if !ok {
            break;
        }
        best = n;
        n += cfg.probe_step;
    }
    (best, trials)
}

#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    pub model: String,
    pub replication: usize,
    pub max_concurrent: usize,
}

/// Fig. 8 sweep.
pub fn run_fig8(cfg: &CapacityConfig, replications: &[usize]) -> Vec<Fig8Row> {
    let mut out = Vec::new();
    for model in [NodeModel::AllActive, NodeModel::ActiveStandby] {
        for &r in replications {
            let (max, _) = max_sustained(model, r, cfg);
            out.push(Fig8Row {
                model: model.label().to_string(),
                replication: r,
                max_concurrent: max,
            });
        }
    }
    out
}

/// Fig. 9 sweep: fixed reader count across replica counts.
pub fn run_fig9(cfg: &CapacityConfig, readers: usize, replications: &[usize]) -> Vec<Trial> {
    let mut out = Vec::new();
    for model in [NodeModel::AllActive, NodeModel::ActiveStandby] {
        for &r in replications {
            out.push(trial(model, r, readers, cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_replicas_sustain_more_readers() {
        let cfg = CapacityConfig::small();
        let (max1, _) = max_sustained(NodeModel::AllActive, 1, &cfg);
        let (max4, _) = max_sustained(NodeModel::AllActive, 4, &cfg);
        assert!(
            max4 > max1,
            "r=4 should hold more readers: {max4} vs {max1}"
        );
    }

    #[test]
    fn standby_extras_beat_all_active_under_load() {
        let cfg = CapacityConfig::small();
        let readers = 40;
        let aa = trial(NodeModel::AllActive, 6, readers, &cfg);
        let asb = trial(NodeModel::ActiveStandby, 6, readers, &cfg);
        assert!(
            asb.mean_throughput_mb_s >= aa.mean_throughput_mb_s,
            "active/standby {} vs all-active {}",
            asb.mean_throughput_mb_s,
            aa.mean_throughput_mb_s
        );
    }

    #[test]
    fn standby_setup_parks_extras_on_standby() {
        let cfg = CapacityConfig::small();
        let (c, hot) = setup(NodeModel::ActiveStandby, 6, &cfg);
        let file = c.namespace().resolve(&hot).unwrap();
        let block = c.namespace().file(file).unwrap().blocks[0];
        let standby_holders = (10..18)
            .map(NodeId)
            .filter(|&n| c.node_holds(n, block))
            .count();
        assert_eq!(c.blockmap().replica_count(block), 6);
        assert!(standby_holders >= 3, "extras on standby: {standby_holders}");
    }

    #[test]
    fn exec_time_rises_with_readers() {
        let cfg = CapacityConfig::small();
        let t_small = trial(NodeModel::AllActive, 3, 6, &cfg);
        let t_big = trial(NodeModel::AllActive, 3, 40, &cfg);
        assert!(t_big.mean_exec_secs > t_small.mean_exec_secs);
    }
}
