//! Figure 6 — TestDFSIO read performance.
//!
//! "We used different number of concurrent threads (from 7 to 35) to
//! read the same data, and examined the average execution time of these
//! jobs. The results show that high concurrent reading threads decrease
//! the system performance, while high replication factor could increase
//! system performance."
//!
//! One fresh cluster per (replication, threads) cell; every thread reads
//! the same 1 GB file.

use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
use serde::Serialize;
use simcore::units::{Bytes, GB};
use workload::DfsIoSpec;

#[derive(Debug, Clone)]
pub struct DfsIoConfig {
    pub replications: Vec<usize>,
    pub thread_counts: Vec<usize>,
    pub file_size: Bytes,
}

impl Default for DfsIoConfig {
    fn default() -> Self {
        DfsIoConfig {
            replications: vec![1, 2, 3, 4, 5, 6],
            thread_counts: vec![7, 14, 21, 28, 35],
            file_size: GB,
        }
    }
}

impl DfsIoConfig {
    pub fn small() -> Self {
        DfsIoConfig {
            replications: vec![1, 3, 5],
            thread_counts: vec![7, 21],
            file_size: GB / 4,
        }
    }
}

/// One cell of the Fig. 6 matrix.
#[derive(Debug, Clone, Serialize)]
pub struct DfsIoCell {
    pub replication: usize,
    pub threads: usize,
    pub mean_exec_secs: f64,
    pub mean_throughput_mb_s: f64,
    pub aggregate_mb_s: f64,
}

/// Run the whole matrix.
pub fn run(cfg: &DfsIoConfig) -> Vec<DfsIoCell> {
    let mut out = Vec::new();
    for &r in &cfg.replications {
        for &threads in &cfg.thread_counts {
            let mut cluster =
                ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
            let spec = DfsIoSpec {
                file_count: 1,
                file_size: cfg.file_size,
                replication: r,
                concurrent_readers: threads,
            };
            let report = spec.run_read_round(&mut cluster);
            out.push(DfsIoCell {
                replication: r,
                threads,
                mean_exec_secs: report.exec_secs.mean(),
                mean_throughput_mb_s: report.throughput_mb_s.mean(),
                aggregate_mb_s: report.aggregate_mb_s,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shapes_hold() {
        let cells = run(&DfsIoConfig::small());
        let cell = |r: usize, t: usize| {
            cells
                .iter()
                .find(|c| c.replication == r && c.threads == t)
                .unwrap()
        };
        // more threads on the same data ⇒ slower
        assert!(cell(1, 21).mean_exec_secs > cell(1, 7).mean_exec_secs);
        assert!(cell(3, 21).mean_exec_secs > cell(3, 7).mean_exec_secs);
        // more replicas at the same load ⇒ faster
        assert!(cell(5, 21).mean_exec_secs < cell(1, 21).mean_exec_secs);
        assert!(cell(3, 7).mean_exec_secs <= cell(1, 7).mean_exec_secs * 1.05);
    }
}
