//! Scenario-matrix SLO scorecard → `SCORECARD.json` + `profile.json`.
//!
//! ```text
//! scorecard [scenario...] [--seed N] [--xlarge] [--write-baseline]
//! ```
//!
//! Runs the scorecard matrix (default: every churn and production
//! traffic scenario plus `scale-small`; `--xlarge` appends the
//! 100k-file storm) under the
//! self-profiler, prints the per-scenario summary table, and archives
//! `results/SCORECARD.json` (metric maps + per-phase breakdown) and
//! `results/profile.json` (the merged flame tree, scenario names at the
//! top level). `--write-baseline` additionally regenerates
//! `results/slo_baseline.json`, the SLO document `trace-tools regress`
//! gates candidates against in CI.

use bench::common::{results_dir, write_json};
use bench::scorecard::{self, Case, Scorecard};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation call — the
/// profiler's allocation proxy (`alloc` column of the phase rows).
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn main() -> ExitCode {
    let mut cases: Vec<Case> = Vec::new();
    let mut seed = scorecard::DEFAULT_SEED;
    let mut write_baseline = false;
    let mut xlarge = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs a number");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--write-baseline" => write_baseline = true,
            "--xlarge" => xlarge = true,
            name => match Case::by_name(name) {
                Some(c) => cases.push(c),
                None => {
                    eprintln!("unknown scenario {name:?} (churn-*|prod-*|soak-*|scale-*)");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if cases.is_empty() {
        cases = scorecard::default_matrix();
    }
    if xlarge {
        cases.push(Case::by_name("scale-xlarge").expect("registry name"));
    }

    simcore::profiler::set_alloc_probe(Some(allocs));

    // One discarded warm-up run: the first measured scenario otherwise
    // pays cold-start costs (page faults, branch training) that swing
    // its wall-clock metrics an order of magnitude against the baseline.
    let _ = scorecard::run_case(&Case::by_name("churn-tiny").expect("registry name"), seed);

    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "scenario", "reads", "p50 ms", "p99 ms", "ovhd x", "oracle", "tick ms", "CEP ev/s"
    );
    let mut card = Scorecard::default();
    for case in &cases {
        let s = scorecard::run_case(case, seed);
        let det = |k: &str| s.deterministic.get(k).copied().unwrap_or(0.0);
        println!(
            "{:<18} {:>8} {:>10.2} {:>10.2} {:>10.3} {:>8} {:>12.3} {:>12.0}",
            s.name,
            det("read_count") as u64,
            det("read_p50_s") * 1e3,
            det("read_p99_s") * 1e3,
            det("storage_overhead_x"),
            det("oracle_violations") as u64,
            s.wallclock.get("mean_tick_ms").copied().unwrap_or(0.0),
            s.wallclock.get("cep_parse_per_sec").copied().unwrap_or(0.0),
        );
        card.scenarios.push(s);
    }

    write_json("SCORECARD", &card.to_value());
    let profile = serde_json::parse_value(&card.merged_profile().to_json())
        .expect("profiler JSON is well-formed");
    write_json("profile", &profile);
    println!(
        "archived {}",
        results_dir().join("SCORECARD.json").display()
    );
    println!("archived {}", results_dir().join("profile.json").display());

    if write_baseline {
        write_json("slo_baseline", &scorecard::baseline_value(&card));
        println!(
            "archived {}",
            results_dir().join("slo_baseline.json").display()
        );
    }
    ExitCode::SUCCESS
}
