//! Segmented long-horizon soak runner.
//!
//! ```text
//! soak --list
//! soak <scenario> [--seed N] [--straight] [--trace-out F] [--ckpt-out F]
//! soak <scenario> --segments K [--segment I] [--ckpt-in F] [--ckpt-out F] [--trace-out F] [--seed N]
//! ```
//!
//! Three modes:
//! * `--straight` — the reference run, one unbroken horizon;
//! * `--segments K` (no `--segment`) — all `K` segments in this
//!   process, snapshots pushed through their JSON wire format between
//!   segments exactly as CI shards would exchange them;
//! * `--segments K --segment I` — one shard's share: segment 0 starts
//!   fresh, later segments resume `--ckpt-in`; every non-final segment
//!   writes `--ckpt-out` for the next shard.
//!
//! The trace chunk goes to `--trace-out` (one shard's chunk in sharded
//! mode; shards concatenate chunks in segment order and gate the result
//! with `trace-tools diff` against a `--straight` trace plus
//! `trace-tools check`).

use bench::checkpointing::Scenario;
use bench::soak;
use checkpoint::Snapshot;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("soak: {msg}");
    eprintln!(
        "usage: soak --list | soak <scenario> [--seed N] [--straight | --segments K [--segment I] [--ckpt-in F]] [--ckpt-out F] [--trace-out F]"
    );
    ExitCode::from(2)
}

fn str_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(v))
}

fn u64_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    match str_flag(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("{flag} value '{raw}' is not a u64")),
    }
}

fn bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn write_file(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if bool_flag(&mut args, "--list") {
        for name in Scenario::names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<_, String> {
        let seed = u64_flag(&mut args, "--seed")?.unwrap_or(42);
        let straight = bool_flag(&mut args, "--straight");
        let segments = u64_flag(&mut args, "--segments")?;
        let segment = u64_flag(&mut args, "--segment")?;
        let ckpt_in = str_flag(&mut args, "--ckpt-in")?;
        let ckpt_out = str_flag(&mut args, "--ckpt-out")?;
        let trace_out = str_flag(&mut args, "--trace-out")?;
        if args.len() != 1 {
            return Err(format!("expected exactly one scenario, got {args:?}"));
        }
        let scenario = Scenario::by_name(&args[0])
            .ok_or_else(|| format!("unknown scenario {:?} (try --list)", args[0]))?;
        Ok((
            scenario, seed, straight, segments, segment, ckpt_in, ckpt_out, trace_out,
        ))
    })();
    let (scenario, seed, straight, segments, segment, ckpt_in, ckpt_out, trace_out) = match parsed {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };

    let (label, trace, snapshot) = if straight {
        if segments.is_some() || segment.is_some() || ckpt_in.is_some() {
            return fail("--straight takes no segment flags");
        }
        let (trace, snap) = soak::run_straight(scenario.clone(), seed);
        ("straight".to_string(), trace, snap)
    } else {
        let Some(segments) = segments else {
            return fail("need --straight or --segments K");
        };
        match segment {
            None => {
                if ckpt_in.is_some() {
                    return fail("--ckpt-in only makes sense with --segment");
                }
                let (trace, snap) = soak::run_segmented(scenario.clone(), seed, segments);
                (format!("{segments} segments"), trace, snap)
            }
            Some(index) => {
                let prior = match &ckpt_in {
                    None => None,
                    Some(path) => match Snapshot::read_file(std::path::Path::new(path)) {
                        Ok(s) => Some(s),
                        Err(e) => return fail(&format!("cannot load {path}: {e}")),
                    },
                };
                match soak::run_segment(scenario.clone(), seed, segments, index, prior.as_ref()) {
                    Ok(out) => (
                        format!("segment {}/{segments}", index + 1),
                        out.trace,
                        out.snapshot,
                    ),
                    Err(e) => return fail(&format!("segment {index} failed: {e}")),
                }
            }
        }
    };

    if let Some(path) = &trace_out {
        if let Err(e) = write_file(path, &trace) {
            return fail(&e);
        }
    }
    if let Some(path) = &ckpt_out {
        if let Err(e) = snapshot.write_file(std::path::Path::new(path)) {
            return fail(&format!("cannot write {path}: {e}"));
        }
    }
    println!(
        "{} {} seed {}: {} trace events to tick {}{}{}",
        scenario.name,
        label,
        seed,
        trace.lines().count(),
        snapshot.meta.tick,
        trace_out
            .map(|p| format!(", trace {p}"))
            .unwrap_or_default(),
        ckpt_out.map(|p| format!(", ckpt {p}")).unwrap_or_default(),
    );
    ExitCode::SUCCESS
}
