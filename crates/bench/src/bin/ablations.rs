//! Run the design-choice ablations and print a report.
//!
//! ```text
//! cargo run -p bench --release --bin ablations
//! ```

use bench::ablation;
use bench::common::write_json;
use bench::replay::ReplayConfig;
use simcore::units::fmt_bytes;

fn main() {
    println!("== Ablation: placement Algorithm 1 vs default for elastic replicas ==");
    let p = ablation::placement_rebalance();
    println!(
        "  rebalance owed after boost+shed:  Algorithm 1 = {}, default = {}",
        fmt_bytes(p.erms_rebalance_bytes),
        fmt_bytes(p.default_rebalance_bytes)
    );
    println!(
        "  extra-replica copies hitting active nodes: Algorithm 1 = {}, default = {}",
        p.erms_active_copies, p.default_active_copies
    );
    write_json("ablation_placement", &p);

    println!("\n== Ablation: judge Formula (1) alone vs (1)+(2)+(3) ==");
    let j = ablation::judge_rules();
    println!(
        "  block-skewed hot file detected: rule(1) only = {}, full rules = {} (fired rule {})",
        j.rule1_detects, j.full_detects, j.full_rule
    );
    write_json("ablation_judge_rules", &j);

    println!("\n== Ablation: cooled-patience hysteresis ==");
    let cfg = ReplayConfig::small();
    let h = ablation::hysteresis(&cfg);
    println!(
        "  ERMS tasks completed: patience=3 -> {}, patience=1 -> {}",
        h.patient_tasks, h.impatient_tasks
    );
    println!(
        "  read throughput:      patience=3 -> {:.1} MB/s, patience=1 -> {:.1} MB/s",
        h.patient_throughput, h.impatient_throughput
    );
    write_json("ablation_hysteresis", &h);

    println!("\n== Ablation: EWMA demand predictor (paper future work) ==");
    let pr = ablation::predictor();
    println!(
        "  ramping file flagged at tick: reactive = {:?}, predictive(+3) = {:?}",
        pr.reactive_tick, pr.predictive_tick
    );
    write_json("ablation_predictor", &pr);

    println!("\n== Ablation: active/standby energy ==");
    let e = ablation::energy(&cfg);
    println!(
        "  standby pool burned {:.2} node-hours vs {:.2} if always on ({:.0}% saved)",
        e.standby_node_hours,
        e.all_active_node_hours,
        e.savings_fraction * 100.0
    );
    write_json("ablation_energy", &e);
}
