//! Run the design-choice ablations and print a report.
//!
//! ```text
//! cargo run -p bench --release --bin ablations
//! cargo run -p bench --release --bin ablations -- judge \
//!     [--scenarios prod-flashcrowd,prod-tiered] [--seed 42]
//! ```
//!
//! The `judge` mode runs the judge-backend A/B (rules vs Q-learning vs
//! HMM) instead of the design ablations, writes
//! `results/ablation_judge_backends.json`, and exits non-zero if any
//! backend's trace violated the oracle.

use bench::ablation;
use bench::common::write_json;
use bench::replay::ReplayConfig;
use simcore::units::fmt_bytes;

fn judge_ab(args: &[String]) {
    let mut scenarios = vec![
        "prod-diurnal".to_string(),
        "prod-flashcrowd".to_string(),
        "prod-ingest".to_string(),
        "prod-tiered".to_string(),
    ];
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenarios" => {
                let v = it.next().expect("--scenarios needs a comma-separated list");
                scenarios = v.split(',').map(str::to_string).collect();
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => panic!("unknown judge-ablation arg {other:?}"),
        }
    }

    println!("== Ablation: judge backends (rules vs Q-learning vs HMM) ==");
    let names: Vec<&str> = scenarios.iter().map(String::as_str).collect();
    let a = ablation::judge_backends(&names, seed);
    println!(
        "  {:<18} {:<10} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "scenario", "backend", "read p95", "read p99", "storage x", "energy %", "oracle"
    );
    for r in &a.rows {
        println!(
            "  {:<18} {:<10} {:>9.3}s {:>9.3}s {:>10.3} {:>8.1}% {:>7}",
            r.scenario,
            r.backend,
            r.read_p95_s,
            r.read_p99_s,
            r.storage_overhead_x,
            r.energy_saved_pct,
            r.oracle_violations
        );
    }
    println!("  learned wins (p95 <= rules at <= storage, clean oracle):");
    if a.learned_wins.is_empty() {
        println!("    (none)");
    } else {
        for w in &a.learned_wins {
            println!("    {w}");
        }
    }
    write_json("ablation_judge_backends", &a);

    let violations: u64 = a.rows.iter().map(|r| r.oracle_violations).sum();
    if violations > 0 {
        eprintln!("FAIL: {violations} trace-oracle violation(s) across backends");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("judge") {
        judge_ab(&args[1..]);
        return;
    }
    println!("== Ablation: placement Algorithm 1 vs default for elastic replicas ==");
    let p = ablation::placement_rebalance();
    println!(
        "  rebalance owed after boost+shed:  Algorithm 1 = {}, default = {}",
        fmt_bytes(p.erms_rebalance_bytes),
        fmt_bytes(p.default_rebalance_bytes)
    );
    println!(
        "  extra-replica copies hitting active nodes: Algorithm 1 = {}, default = {}",
        p.erms_active_copies, p.default_active_copies
    );
    write_json("ablation_placement", &p);

    println!("\n== Ablation: judge Formula (1) alone vs (1)+(2)+(3) ==");
    let j = ablation::judge_rules();
    println!(
        "  block-skewed hot file detected: rule(1) only = {}, full rules = {} (fired rule {})",
        j.rule1_detects, j.full_detects, j.full_rule
    );
    write_json("ablation_judge_rules", &j);

    println!("\n== Ablation: cooled-patience hysteresis ==");
    let cfg = ReplayConfig::small();
    let h = ablation::hysteresis(&cfg);
    println!(
        "  ERMS tasks completed: patience=3 -> {}, patience=1 -> {}",
        h.patient_tasks, h.impatient_tasks
    );
    println!(
        "  read throughput:      patience=3 -> {:.1} MB/s, patience=1 -> {:.1} MB/s",
        h.patient_throughput, h.impatient_throughput
    );
    write_json("ablation_hysteresis", &h);

    println!("\n== Ablation: EWMA demand predictor (paper future work) ==");
    let pr = ablation::predictor();
    println!(
        "  ramping file flagged at tick: reactive = {:?}, predictive(+3) = {:?}",
        pr.reactive_tick, pr.predictive_tick
    );
    write_json("ablation_predictor", &pr);

    println!("\n== Ablation: active/standby energy ==");
    let e = ablation::energy(&cfg);
    println!(
        "  standby pool burned {:.2} node-hours vs {:.2} if always on ({:.0}% saved)",
        e.standby_node_hours,
        e.all_active_node_hours,
        e.savings_fraction * 100.0
    );
    write_json("ablation_energy", &e);
}
