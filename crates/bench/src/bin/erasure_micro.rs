//! Erasure micro-benchmark: encode / verify / reconstruct throughput
//! for the repair pipeline's code shapes, archived to
//! `results/erasure_micro.json`.
//!
//! Unlike the criterion suite in `benches/micro.rs` (statistical,
//! interactive), this is the one-shot scorecard ROADMAP item 2 asks
//! for: one row per code, data throughput in MB/s for the three
//! operations the scrubber exercises — `encode` when cooling data,
//! `verify` on every scrub touch of an encoded stripe, `reconstruct`
//! when a corrupt shard is quarantined.

use bench::common::write_json;
use erasure::ReedSolomon;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct CodeRow {
    code: String,
    k: usize,
    m: usize,
    shard_kib: usize,
    stripe_mib: f64,
    encode_mb_s: f64,
    verify_mb_s: f64,
    reconstruct_mb_s: f64,
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let shard = if small { 64 * 1024 } else { 256 * 1024 };
    let iters = if small { 8 } else { 32 };
    // the paper's cold code plus the two alternates the redundancy
    // policy weighs (ROADMAP item 2)
    let codes = [(10usize, 4usize), (4, 2), (8, 3)];
    let mut rows = Vec::new();
    for (k, m) in codes {
        rows.push(bench_code(k, m, shard, iters));
    }
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>15}",
        "code", "shard_KiB", "encode_MB/s", "verify_MB/s", "reconstruct_MB/s"
    );
    for r in &rows {
        println!(
            "{:<10} {:>9} {:>11.1} {:>11.1} {:>15.1}",
            r.code, r.shard_kib, r.encode_mb_s, r.verify_mb_s, r.reconstruct_mb_s
        );
    }
    write_json("erasure_micro", &rows);
}

fn bench_code(k: usize, m: usize, shard: usize, iters: u32) -> CodeRow {
    let rs = ReedSolomon::new(k, m).expect("valid code");
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..shard).map(|j| ((i * 31 + j * 7) % 251) as u8).collect())
        .collect();
    let data_bytes = (k * shard) as f64;

    let t = Instant::now();
    let mut parity = Vec::new();
    for _ in 0..iters {
        parity = rs.encode(black_box(&data)).expect("encode");
    }
    let encode_mb_s = throughput(data_bytes, iters, t.elapsed().as_secs_f64());

    let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
    let t = Instant::now();
    for _ in 0..iters {
        assert!(rs.verify(black_box(&full)).expect("verify"));
    }
    let verify_mb_s = throughput(data_bytes, iters, t.elapsed().as_secs_f64());

    // worst case: all m shards lost, erased round-robin across the stripe
    let mut elapsed = 0.0;
    for _ in 0..iters {
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for i in 0..m {
            shards[(i * (k + m)) / m] = None;
        }
        let t = Instant::now();
        rs.reconstruct(black_box(&mut shards)).expect("reconstruct");
        elapsed += t.elapsed().as_secs_f64();
        for (a, b) in shards.iter().zip(&full) {
            assert_eq!(a.as_deref().expect("filled"), &b[..]);
        }
    }
    let reconstruct_mb_s = throughput(data_bytes, iters, elapsed);

    CodeRow {
        code: format!("rs_{k}_{m}"),
        k,
        m,
        shard_kib: shard / 1024,
        stripe_mib: ((k + m) * shard) as f64 / (1 << 20) as f64,
        encode_mb_s,
        verify_mb_s,
        reconstruct_mb_s,
    }
}

fn throughput(bytes_per_iter: f64, iters: u32, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes_per_iter * iters as f64 / (1 << 20) as f64 / secs
}
