//! Control-loop scaling benchmark → `BENCH_scale.json`.
//!
//! ```text
//! scale [small|medium|large|xlarge|all] [--ceiling-ms N] [--checkpoint-every N]
//! ```
//!
//! Runs the requested sizes through [`bench::scale`], sampling a
//! counting global allocator around each mode run as the allocations
//! proxy, prints a comparison table, and archives the results to
//! `results/BENCH_scale.json` (the checked-in baseline later PRs diff
//! against). With `--ceiling-ms` the process exits nonzero if any
//! incremental tick exceeded the ceiling — a smoke-level regression
//! gate for CI, generous enough not to flake. With `--checkpoint-every
//! N` the incremental run is snapshotted every N ticks and the process
//! exits nonzero unless every snapshot re-hydrates and re-saves to
//! byte-identical JSON.

use bench::common::{results_dir, write_json};
use bench::scale::{self, AllocStats, ScaleConfig, ScaleResult};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn run_size(cfg: &ScaleConfig, checkpoint_every: Option<usize>) -> ScaleResult {
    let a0 = allocs();
    let (incremental, checkpoints) = scale::run_mode_checkpointed(cfg, false, checkpoint_every);
    let a1 = allocs();
    let full = scale::run_mode(cfg, true);
    let a2 = allocs();
    let cep = scale::cep_push_rate(50_000, cfg.files, cfg.hot_files);
    let phases = scale::phase_allocs(cfg, &allocs);
    let mut r = scale::assemble(cfg, incremental, full, cep);
    r.allocations = Some(AllocStats {
        incremental_allocs: a1 - a0,
        full_allocs: a2 - a1,
        phases: Some(phases),
    });
    r.checkpoints = checkpoints;
    r.profiler = Some(scale::profiler_overhead(r.incremental.mean_tick_ms));
    r
}

fn main() -> ExitCode {
    let mut sizes: Vec<ScaleConfig> = Vec::new();
    let mut ceiling_ms: Option<f64> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => {
                sizes = vec![
                    ScaleConfig::small(),
                    ScaleConfig::medium(),
                    ScaleConfig::large(),
                ];
            }
            "--ceiling-ms" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--ceiling-ms needs a number");
                    return ExitCode::FAILURE;
                };
                ceiling_ms = Some(v);
            }
            "--checkpoint-every" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()).filter(|&v| v > 0) else {
                    eprintln!("--checkpoint-every needs a positive tick count");
                    return ExitCode::FAILURE;
                };
                checkpoint_every = Some(v);
            }
            name => match ScaleConfig::named(name) {
                Some(cfg) => sizes.push(cfg),
                None => {
                    eprintln!("unknown size {name:?} (small|medium|large|xlarge|all)");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    if sizes.is_empty() {
        sizes = vec![
            ScaleConfig::small(),
            ScaleConfig::medium(),
            ScaleConfig::large(),
        ];
    }

    println!(
        "{:<8} {:>6} {:>6} {:>12} {:>12} {:>9} {:>9} {:>12}",
        "size", "files", "nodes", "inc ms/tick", "full ms/tick", "speedup", "judged", "CEP ev/s"
    );
    let mut results: Vec<ScaleResult> = Vec::new();
    for cfg in &sizes {
        let r = run_size(cfg, checkpoint_every);
        println!(
            "{:<8} {:>6} {:>6} {:>12.3} {:>12.3} {:>8.1}x {:>8.0}% {:>12.0}",
            r.size,
            r.files,
            r.nodes,
            r.incremental.mean_tick_ms,
            r.full.mean_tick_ms,
            r.tick_speedup,
            r.judged_ratio * 100.0,
            r.cep.events_per_sec
        );
        if let Some(p) = r.allocations.as_ref().and_then(|a| a.phases.as_ref()) {
            println!(
                "  allocations: judge {} | cep {} | telemetry {}",
                p.judge_allocs, p.cep_allocs, p.telemetry_allocs
            );
        }
        if let Some(p) = &r.profiler {
            println!(
                "  profiler off: {:.2} ns/scope x {:.0} scopes/tick = {:.4}% of a {:.3} ms tick",
                p.per_scope_ns_disabled, p.scopes_per_tick, p.overhead_pct, p.mean_tick_ms
            );
        }
        if let Some(ck) = &r.checkpoints {
            println!(
                "  checkpoints: {} snapshot(s) every {} tick(s), {:.1} KiB total, {:.2} ms/save, verified={}",
                ck.snapshots,
                ck.every,
                ck.total_bytes as f64 / 1024.0,
                ck.mean_save_ms,
                ck.verified
            );
        }
        results.push(r);
    }
    if results
        .iter()
        .filter_map(|r| r.checkpoints.as_ref())
        .any(|ck| !ck.verified)
    {
        eprintln!("FAIL: a mid-run snapshot did not re-save to identical bytes");
        return ExitCode::FAILURE;
    }
    if let Some(p) = results
        .iter()
        .filter_map(|r| r.profiler.as_ref())
        .find(|p| p.overhead_pct >= 1.0)
    {
        eprintln!(
            "FAIL: disabled profiler costs {:.3}% of a mean tick (budget < 1%)",
            p.overhead_pct
        );
        return ExitCode::FAILURE;
    }

    write_json("BENCH_scale", &results);
    let archived = results_dir().join("BENCH_scale.json");
    println!("archived {}", archived.display());

    if let Some(ceiling) = ceiling_ms {
        let worst = results
            .iter()
            .map(|r| r.incremental.max_tick_ms)
            .fold(0.0f64, f64::max);
        if worst > ceiling {
            eprintln!("FAIL: worst incremental tick {worst:.1} ms exceeds ceiling {ceiling} ms");
            return ExitCode::FAILURE;
        }
        println!("ceiling ok: worst incremental tick {worst:.3} ms <= {ceiling} ms");
    }
    ExitCode::SUCCESS
}
