//! Per-tick breakdown of one scale run (dev tool).

use bench::scale::ScaleConfig;
use erms::ErmsManager;
use hdfs_sim::topology::{ClientId, Endpoint};
use simcore::units::MB;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xlarge".into());
    let cfg = ScaleConfig::named(&name).expect("known size");
    let mut c = bench::scale::scale_cluster(&cfg);
    let mut m = ErmsManager::new(bench::scale::scale_erms_config(&cfg, false), &mut c)
        .expect("valid scale manager");
    for i in 0..cfg.files {
        c.create_file(&format!("/scale/f{i}"), 64 * MB, 3, None)
            .expect("cluster sized to hold the namespace");
    }
    c.run_until_quiescent();
    c.run_until(c.now() + cfg.window + cfg.tick_step);
    c.run_until_quiescent();
    let now = c.now();
    let _ = m.tick(&mut c, now);
    c.run_until(c.now() + cfg.tick_step);
    c.run_until_quiescent();
    for tick in 0..cfg.ticks() {
        if tick < cfg.storm_ticks {
            for h in 0..cfg.hot_files.min(cfg.files) {
                for r in 0..cfg.readers_per_hot {
                    let id = (tick as u32) * 100_000 + (h as u32) * 1_000 + r;
                    let _ = c.open_read(Endpoint::Client(ClientId(id)), &format!("/scale/f{h}"));
                }
            }
            c.run_until_quiescent();
        }
        let now = c.now();
        let t0 = Instant::now();
        let r = m.tick(&mut c, now);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "tick {tick:>2}: {ms:8.1} ms judged {:>7} hot {:>3} cooled {:>3} cold {:>7} submitted {:>7} completed {:>7} trimmed {:>6}",
            r.files_judged, r.hot, r.cooled, r.cold, r.tasks_submitted, r.tasks_completed, r.replicas_trimmed
        );
        c.run_until(c.now() + cfg.tick_step);
        c.run_until_quiescent();
    }
}
