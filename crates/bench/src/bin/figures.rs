//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig3 [--small]
//! ```
//!
//! Each subcommand prints the figure's rows/series as text tables and
//! archives the structured result under `results/<figure>.json`.

use bench::capacity::{self, CapacityConfig};
use bench::common::{write_json, Mode};
use bench::corruption::{self, CorruptionConfig};
use bench::dfsio::{self, DfsIoConfig};
use bench::faults::{self, FaultsConfig};
use bench::increase::{self, IncreaseConfig};
use bench::replay::{self, ReplayConfig};
use std::env;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: figures [fig3|fig4|fig5|fig6|fig7|fig8|fig9|faults|corruption|all]...\n\
             \x20             [--small] [--trace <path>] [--metrics <path>]\n\
             Regenerates the paper's evaluation figures; tables go to stdout,\n\
             JSON to results/. --small runs reduced-scale variants.\n\
             'faults' runs the seeded-churn durability comparison and\n\
             'corruption' the silent-corruption storm with and without the\n\
             background scrubber (neither is a paper figure; both are in\n\
             'all'). --trace writes that run's structured JSONL event trace\n\
             (erms_healing / scrubber variant), --metrics its per-tick\n\
             metric snapshots (faults only); all byte-identical across\n\
             same-seed runs."
        );
        return;
    }
    let trace_path = flag_value(&args, "--trace");
    let metrics_path = flag_value(&args, "--metrics");
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" || *a == "--metrics" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "faults",
            "corruption",
        ]
    } else {
        which
    };

    let wall = Instant::now();
    // fig3/4/5 share the replay runs; compute them once
    let needs_replay = which.iter().any(|f| matches!(*f, "fig3" | "fig4" | "fig5"));
    let replays = if needs_replay {
        run_replays(small)
    } else {
        Vec::new()
    };

    for fig in &which {
        match *fig {
            "fig3" => fig3(&replays),
            "fig4" => fig4(&replays),
            "fig5" => fig5(&replays),
            "fig6" => fig6(small),
            "fig7" => fig7(small),
            "fig8" => fig8(small),
            "fig9" => fig9(small),
            "faults" => faults_figure(small, trace_path.as_deref(), metrics_path.as_deref()),
            "corruption" => corruption_figure(small, trace_path.as_deref()),
            other => {
                eprintln!("unknown figure '{other}' (use fig3..fig9, faults, corruption, or all)")
            }
        }
    }
    eprintln!("\n[figures done in {:.1}s]", wall.elapsed().as_secs_f64());
}

/// The value following a `--flag` argument, if present.
fn flag_value(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn replay_cfg(small: bool) -> ReplayConfig {
    if small {
        ReplayConfig::small()
    } else {
        ReplayConfig::default()
    }
}

fn run_replays(small: bool) -> Vec<replay::ReplayResult> {
    let cfg = replay_cfg(small);
    let mut out = Vec::new();
    for sched in ["fifo", "fair"] {
        for mode in [
            Mode::Vanilla,
            Mode::Erms { tau_hot: 8.0 },
            Mode::Erms { tau_hot: 6.0 },
            Mode::Erms { tau_hot: 4.0 },
        ] {
            eprintln!("[replay] scheduler={sched} mode={}", mode.label());
            out.push(replay::run(mode, sched, &cfg));
        }
    }
    out
}

fn fig3(replays: &[replay::ReplayResult]) {
    println!("\n== Figure 3(a): average reading throughput (MB/s) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "scheduler", "vanilla", "erms_tau8", "erms_tau6", "erms_tau4"
    );
    for sched in ["fifo", "fair"] {
        let row: Vec<f64> = ["vanilla", "erms_tau8", "erms_tau6", "erms_tau4"]
            .iter()
            .map(|m| cell(replays, sched, m).read_throughput_mb_s)
            .collect();
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            sched, row[0], row[1], row[2], row[3]
        );
    }
    println!("\n== Figure 3(b): data locality of jobs (fraction node-local) ==");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "scheduler", "vanilla", "erms_tau8", "erms_tau6", "erms_tau4"
    );
    for sched in ["fifo", "fair"] {
        let row: Vec<f64> = ["vanilla", "erms_tau8", "erms_tau6", "erms_tau4"]
            .iter()
            .map(|m| cell(replays, sched, m).data_locality)
            .collect();
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            sched, row[0], row[1], row[2], row[3]
        );
    }
    write_json("fig3", &replays);
}

fn cell<'a>(
    replays: &'a [replay::ReplayResult],
    sched: &str,
    mode: &str,
) -> &'a replay::ReplayResult {
    replays
        .iter()
        .find(|r| r.scheduler == sched && r.mode == mode)
        .expect("replay cell exists")
}

fn fig4(replays: &[replay::ReplayResult]) {
    println!("\n== Figure 4: CDF of data accesses over time ==");
    let r = cell(replays, "fifo", "vanilla");
    println!("{:>10} {:>8}", "time (h)", "CDF");
    let n = r.access_cdf.len();
    for (t, f) in sampled(&r.access_cdf, 15) {
        println!("{t:>10.2} {f:>8.3}");
    }
    let _ = n;
    write_json("fig4", &r.access_cdf);
}

fn fig5(replays: &[replay::ReplayResult]) {
    println!("\n== Figure 5: storage space utilisation over time (GB) ==");
    let v = cell(replays, "fair", "vanilla");
    let e = cell(replays, "fair", "erms_tau8");
    println!("{:>10} {:>12} {:>12}", "time (h)", "vanilla", "ERMS");
    let pts = 15usize;
    for i in 0..pts {
        let vt = pick(&v.storage_gb, i, pts);
        let et = pick(&e.storage_gb, i, pts);
        println!("{:>10.2} {:>12.2} {:>12.2}", vt.0, vt.1, et.1);
    }
    println!(
        "peak: vanilla {:.2} GB vs ERMS {:.2} GB; final: vanilla {:.2} GB vs ERMS {:.2} GB",
        v.peak_storage_gb, e.peak_storage_gb, v.final_storage_gb, e.final_storage_gb
    );
    if e.all_active_node_hours > 0.0 {
        println!(
            "standby energy: {:.1} node-hours used vs {:.1} node-hours all-active",
            e.standby_node_hours, e.all_active_node_hours
        );
    }
    write_json("fig5", &vec![v.clone(), e.clone()]);
}

fn sampled(series: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if series.is_empty() {
        return Vec::new();
    }
    (0..n).map(|i| pick(series, i, n)).collect()
}

fn pick(series: &[(f64, f64)], i: usize, n: usize) -> (f64, f64) {
    if series.is_empty() {
        return (0.0, 0.0);
    }
    let idx = (i * (series.len() - 1)) / (n - 1).max(1);
    series[idx]
}

fn fig6(small: bool) {
    let cfg = if small {
        DfsIoConfig::small()
    } else {
        DfsIoConfig::default()
    };
    eprintln!("[fig6] TestDFSIO matrix…");
    let cells = dfsio::run(&cfg);
    println!("\n== Figure 6: TestDFSIO avg execution time (s) vs replication ==");
    print!("{:<10}", "threads");
    for &r in &cfg.replications {
        print!(" {:>8}", format!("r={r}"));
    }
    println!();
    for &t in &cfg.thread_counts {
        print!("{t:<10}");
        for &r in &cfg.replications {
            let c = cells
                .iter()
                .find(|c| c.replication == r && c.threads == t)
                .expect("cell");
            print!(" {:>8.2}", c.mean_exec_secs);
        }
        println!();
    }
    write_json("fig6", &cells);
}

fn fig7(small: bool) {
    let cfg = if small {
        IncreaseConfig::small()
    } else {
        IncreaseConfig::default()
    };
    eprintln!("[fig7] replica-increase strategies…");
    let cells = increase::run(&cfg);
    println!(
        "\n== Figure 7: time (s) to raise replication {} -> {} ==",
        cfg.from_replication, cfg.to_replication
    );
    println!("{:>10} {:>10} {:>12}", "size (MB)", "whole", "one-by-one");
    for &size in &cfg.file_sizes {
        let mb = size / (1 << 20);
        let whole = cells
            .iter()
            .find(|c| c.file_size_mb == mb && c.strategy == "whole")
            .expect("cell");
        let one = cells
            .iter()
            .find(|c| c.file_size_mb == mb && c.strategy == "one_by_one")
            .expect("cell");
        println!("{:>10} {:>10.2} {:>12.2}", mb, whole.seconds, one.seconds);
    }
    write_json("fig7", &cells);
}

fn fig8(small: bool) {
    let cfg = if small {
        CapacityConfig::small()
    } else {
        CapacityConfig::default()
    };
    let replications: Vec<usize> = if small {
        vec![1, 2, 4]
    } else {
        (1..=8).collect()
    };
    eprintln!("[fig8] max sustained concurrency…");
    let rows = capacity::run_fig8(&cfg, &replications);
    println!(
        "\n== Figure 8: max concurrent readers sustained (QoS >= {:.0} MB/s) ==",
        cfg.qos_mb_s
    );
    println!(
        "{:>10} {:>12} {:>16}",
        "replicas", "all_active", "active_standby"
    );
    for &r in &replications {
        let aa = rows
            .iter()
            .find(|c| c.replication == r && c.model == "all_active")
            .expect("row");
        let asb = rows
            .iter()
            .find(|c| c.replication == r && c.model == "active_standby")
            .expect("row");
        println!(
            "{:>10} {:>12} {:>16}",
            r, aa.max_concurrent, asb.max_concurrent
        );
    }
    // the τ_M calibration the paper derives from this figure: the
    // marginal sessions each extra replica adds on busy nodes (slope of
    // the all-active curve — the per-replica service capacity)
    let aa: Vec<&capacity::Fig8Row> = rows.iter().filter(|c| c.model == "all_active").collect();
    if aa.len() >= 2 {
        let first = aa.first().expect("non-empty");
        let last = aa.last().expect("non-empty");
        let dr = (last.replication - first.replication).max(1);
        let slope = (last.max_concurrent.saturating_sub(first.max_concurrent)) as f64 / dr as f64;
        println!("≈ {slope:.1} sessions per extra replica sustained → τ_M calibration");
    }
    write_json("fig8", &rows);
}

fn fig9(small: bool) {
    let cfg = if small {
        CapacityConfig::small()
    } else {
        CapacityConfig::default()
    };
    let readers = if small { 30 } else { 70 };
    let replications: Vec<usize> = if small { vec![3, 5] } else { (3..=8).collect() };
    eprintln!("[fig9] {readers} concurrent readers vs replicas…");
    let rows = capacity::run_fig9(&cfg, readers, &replications);
    println!("\n== Figure 9(a): read throughput (MB/s) at {readers} concurrent readers ==");
    println!(
        "{:>10} {:>12} {:>16}",
        "replicas", "all_active", "active_standby"
    );
    for &r in &replications {
        let aa = row(&rows, r, "all_active");
        let asb = row(&rows, r, "active_standby");
        println!(
            "{:>10} {:>12.2} {:>16.2}",
            r, aa.mean_throughput_mb_s, asb.mean_throughput_mb_s
        );
    }
    println!("\n== Figure 9(b): avg execution time (s) at {readers} concurrent readers ==");
    println!(
        "{:>10} {:>12} {:>16}",
        "replicas", "all_active", "active_standby"
    );
    for &r in &replications {
        let aa = row(&rows, r, "all_active");
        let asb = row(&rows, r, "active_standby");
        println!(
            "{:>10} {:>12.2} {:>16.2}",
            r, aa.mean_exec_secs, asb.mean_exec_secs
        );
    }
    write_json("fig9", &rows);
}

fn faults_figure(small: bool, trace: Option<&std::path::Path>, metrics: Option<&std::path::Path>) {
    let cfg = if small {
        FaultsConfig::small()
    } else {
        FaultsConfig::default_scenario()
    };
    eprintln!(
        "[faults] seeded churn, seed={} horizon={:.1}h…",
        cfg.seed,
        cfg.fault.horizon.as_secs_f64() / 3600.0
    );
    let capture = trace.is_some() || metrics.is_some();
    let (result, telemetry) = faults::run_captured(&cfg, capture);
    if let Some(path) = trace {
        match std::fs::write(path, &telemetry.trace_jsonl) {
            Ok(()) => eprintln!(
                "[faults] trace: {} events -> {}",
                telemetry.trace_jsonl.lines().count(),
                path.display()
            ),
            Err(e) => eprintln!("[faults] cannot write trace {}: {e}", path.display()),
        }
    }
    if let Some(path) = metrics {
        match std::fs::write(path, telemetry.metrics_json()) {
            Ok(()) => eprintln!(
                "[faults] metrics: {} tick snapshots -> {}",
                telemetry.metric_snapshots.len(),
                path.display()
            ),
            Err(e) => eprintln!("[faults] cannot write metrics {}: {e}", path.display()),
        }
    }
    println!(
        "\n== Faults: durability under identical churn (seed {}, {} files × {} MB, {:.1} h) ==",
        result.seed, result.num_files, result.file_size_mb, result.horizon_hours
    );
    println!(
        "{:<16} {:>7} {:>8} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "variant", "loss", "windows", "unavail_s", "mttr_s", "underrep", "repair_MB", "repairs"
    );
    for v in &result.variants {
        println!(
            "{:<16} {:>7} {:>8} {:>10.1} {:>10.1} {:>9} {:>12.1} {:>12}",
            v.variant,
            v.data_loss_events,
            v.unavailability_windows,
            v.total_unavailable_secs,
            v.mttr_secs,
            v.under_replicated_final,
            v.repair_bytes as f64 / (1u64 << 20) as f64,
            v.repairs_started,
        );
    }
    let plan = &result.variants[0];
    println!(
        "fault plan: {} events ({} permanent kills), {} applied",
        plan.planned_events, plan.planned_kills, plan.events_applied
    );
    write_json("faults", &result);
}

fn corruption_figure(small: bool, trace: Option<&std::path::Path>) {
    let cfg = if small {
        CorruptionConfig::small()
    } else {
        CorruptionConfig::default_scenario()
    };
    eprintln!(
        "[corruption] silent-corruption storm, seed={} horizon={:.1}h…",
        cfg.seed,
        cfg.fault.horizon.as_secs_f64() / 3600.0
    );
    let (result, jsonl) = corruption::run_captured(&cfg, trace.is_some());
    if let Some(path) = trace {
        match std::fs::write(path, &jsonl) {
            Ok(()) => eprintln!(
                "[corruption] trace: {} events -> {}",
                jsonl.lines().count(),
                path.display()
            ),
            Err(e) => eprintln!("[corruption] cannot write trace {}: {e}", path.display()),
        }
    }
    println!(
        "\n== Corruption: scrub scorecard under identical rot (seed {}, {} files × {} MB, {:.1} h, budget {} blk/tick) ==",
        result.seed,
        result.num_files,
        result.file_size_mb,
        result.horizon_hours,
        result.scrub_blocks_per_tick
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>13} {:>9} {:>8} {:>8} {:>6}",
        "variant",
        "injected",
        "detected",
        "repaired",
        "detect_s(avg)",
        "scanned",
        "latent",
        "pending",
        "loss"
    );
    for v in &result.variants {
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>13.1} {:>9} {:>8} {:>8} {:>6}",
            v.variant,
            v.corruptions_injected,
            v.corruptions_detected,
            v.corruptions_repaired,
            v.mean_detect_secs,
            v.scrub_blocks_scanned,
            v.latent_remaining,
            v.pending_repair_final,
            v.data_loss_events,
        );
    }
    write_json("corruption", &result);
}

fn row<'a>(rows: &'a [capacity::Trial], r: usize, model: &str) -> &'a capacity::Trial {
    rows.iter()
        .find(|c| c.replication == r && c.model == model)
        .expect("trial exists")
}
