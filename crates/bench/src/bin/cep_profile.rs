//! Quick phase breakdown of the CEP ingest path (dev tool).

use erms::{DataJudge, Thresholds};
use simcore::SimDuration;
use std::time::Instant;

fn main() {
    let n: u64 = 200_000;
    let paths: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    let hot: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let lines = bench::scale::synth_audit_lines(n, paths, hot);

    // parse only (scratch-reuse path, as the judge drains)
    let mut parser = cep::audit::LineParser::new();
    let mut scratch = cep::Event::new(simcore::SimTime::ZERO, "");
    let t0 = Instant::now();
    let mut field_total = 0usize;
    for l in &lines {
        parser.parse_into(l, &mut scratch).unwrap();
        field_total += scratch.num_fields();
    }
    let parse_s = t0.elapsed().as_secs_f64();
    assert!(field_total > 0);

    // parse with the judge's projection applied
    let mut proj_parser = cep::audit::LineParser::new();
    proj_parser.project(&["blk", "cmd", "dn", "src"]);
    let t0 = Instant::now();
    let mut field_total = 0usize;
    for l in &lines {
        proj_parser.parse_into(l, &mut scratch).unwrap();
        field_total += scratch.num_fields();
    }
    let proj_s = t0.elapsed().as_secs_f64();
    assert!(field_total > 0);
    let events: Vec<cep::Event> = lines.iter().map(|l| parser.parse(l).unwrap()).collect();

    // push pre-parsed events through a bare engine with the judge's query set
    let mut thresholds = Thresholds::calibrate(4.0);
    thresholds.window = SimDuration::from_secs(600);
    let mut judge = DataJudge::new(thresholds.clone());
    let t0 = Instant::now();
    judge.observe_lines(lines.iter().map(String::as_str));
    let full_s = t0.elapsed().as_secs_f64();

    // raw engine push with one count query only
    let mut eng = cep::CepEngine::new();
    let _q = eng.register(cep::QuerySpec::count_per_group(
        "audit",
        "src",
        SimDuration::from_secs(600),
    ));
    let t0 = Instant::now();
    for e in &events {
        eng.push(e);
    }
    let one_q_s = t0.elapsed().as_secs_f64();

    // tokenization floor: split_whitespace + split_once only
    let t0 = Instant::now();
    let mut tok = 0usize;
    for l in &lines {
        let l = l.trim();
        let (ts, rest) = l.split_once(char::is_whitespace).unwrap();
        tok += ts.len() + rest.len();
        let body = &rest[20..];
        for pair in body.split_whitespace() {
            if let Some((k, v)) = pair.split_once('=') {
                tok += k.len() + v.len();
            }
        }
    }
    let tok_s = t0.elapsed().as_secs_f64();
    assert!(tok > 0);
    println!(
        "tokenize floor:  {:8.1} ms  ({:.2} Mev/s)",
        tok_s * 1e3,
        n as f64 / tok_s / 1e6
    );

    println!("events: {n}");
    println!(
        "parse only:      {:8.1} ms  ({:.2} Mev/s)",
        parse_s * 1e3,
        n as f64 / parse_s / 1e6
    );
    println!(
        "parse projected: {:8.1} ms  ({:.2} Mev/s)",
        proj_s * 1e3,
        n as f64 / proj_s / 1e6
    );
    println!(
        "1-query push:    {:8.1} ms  ({:.2} Mev/s)",
        one_q_s * 1e3,
        n as f64 / one_q_s / 1e6
    );
    println!(
        "full judge path: {:8.1} ms  ({:.2} Mev/s)",
        full_s * 1e3,
        n as f64 / full_s / 1e6
    );
}
