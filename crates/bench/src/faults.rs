//! Durability under churn: ERMS self-healing vs an unmanaged cluster.
//!
//! Three variants run the *same* seeded fault schedule (node crashes and
//! restarts, permanent kills, rack uplink outages, stragglers) against
//! byte-identical clusters:
//!
//! * `vanilla` — no control loop at all (crashed nodes block-report on
//!   restart, but nobody re-replicates what the kills destroy);
//! * `erms_no_healing` — the ERMS manager ticks but with self-healing
//!   off (the PR-0 baseline behaviour);
//! * `erms_healing` — self-healing on: repair scan, dark-shard
//!   reconstruction, task watchdog, standby eviction.
//!
//! The output is machine-readable durability accounting per variant —
//! unavailability windows, MTTR, data-loss events, repair bytes — and is
//! a pure function of the seed: two runs with the same seed produce
//! byte-identical JSON.

use erms::{ErmsConfig, ErmsManager};
use hdfs_sim::faults::{FaultConfig, FaultInjector, FaultPlan};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, DefaultRackAware};
use serde::Serialize;
use simcore::telemetry::TelemetrySink;
use simcore::units::{Bytes, MB};
use simcore::{SimDuration, SimTime};

/// Scenario shape.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    pub seed: u64,
    pub fault: FaultConfig,
    /// Files created before the churn starts (all default replication).
    pub num_files: usize,
    pub file_size: Bytes,
    /// Control-loop / injection cadence.
    pub tick: SimDuration,
    /// Extra quiet ticks after the horizon for repairs to drain.
    pub settle_ticks: usize,
    /// On each of the first `warmup_read_ticks` control ticks, open
    /// `reads_per_tick` client read sessions against `/churn/f0`. The
    /// flash crowd gives the managed variants a hot file to boost — and,
    /// once it leaves, to shed — so a captured trace carries read, task
    /// and elastic-episode spans alongside the repair copies.
    pub warmup_read_ticks: usize,
    pub reads_per_tick: u32,
}

impl FaultsConfig {
    pub fn default_scenario() -> Self {
        FaultsConfig {
            seed: 42,
            fault: FaultConfig::paper_default(),
            num_files: 40,
            file_size: 256 * MB,
            tick: SimDuration::from_secs(30),
            settle_ticks: 40,
            warmup_read_ticks: 10,
            reads_per_tick: 8,
        }
    }

    /// Reduced-scale variant for `--small` and the test suite.
    pub fn small() -> Self {
        let mut cfg = Self::default_scenario();
        cfg.num_files = 12;
        cfg.fault.horizon = SimDuration::from_hours(4);
        cfg.fault.node_mtbf = SimDuration::from_hours(1);
        cfg
    }
}

/// Per-variant durability accounting.
#[derive(Debug, Clone, Serialize)]
pub struct FaultVariant {
    pub variant: String,
    pub seed: u64,
    /// Fault-plan shape (identical across variants by construction).
    pub planned_events: usize,
    pub planned_kills: usize,
    pub events_applied: usize,
    /// Durability summary at the end of the run.
    pub unavailability_windows: usize,
    pub unresolved_windows: usize,
    pub total_unavailable_secs: f64,
    pub mttr_secs: f64,
    pub max_window_secs: f64,
    pub data_loss_events: usize,
    pub repair_bytes: u64,
    /// Blocks still short of their target replication when the run ends.
    pub under_replicated_final: usize,
    /// Manager-side healing counters (zero for vanilla).
    pub repairs_started: usize,
    pub replicas_trimmed: usize,
    pub reconstructions: usize,
    pub tasks_timed_out: usize,
    pub standby_evicted: usize,
}

/// The whole scenario result.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsResult {
    pub seed: u64,
    pub horizon_hours: f64,
    pub num_files: usize,
    pub file_size_mb: u64,
    pub variants: Vec<FaultVariant>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Variant {
    Vanilla,
    ErmsNoHealing,
    ErmsHealing,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Vanilla => "vanilla",
            Variant::ErmsNoHealing => "erms_no_healing",
            Variant::ErmsHealing => "erms_healing",
        }
    }
}

/// Telemetry captured from the `erms_healing` variant when tracing is
/// requested (`figures faults --trace/--metrics`).
#[derive(Debug, Clone, Default)]
pub struct CapturedTelemetry {
    /// The full structured event trace, one JSON object per line.
    /// A pure function of the seed: byte-identical across runs.
    pub trace_jsonl: String,
    /// One metrics-registry snapshot (JSON object) per control tick.
    pub metric_snapshots: Vec<String>,
}

impl CapturedTelemetry {
    /// The per-tick snapshots as one JSON array document.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, snap) in self.metric_snapshots.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(snap);
        }
        out.push_str("\n]\n");
        out
    }
}

/// Run all three variants under the same seed.
pub fn run(cfg: &FaultsConfig) -> FaultsResult {
    run_captured(cfg, false).0
}

/// Like [`run`], optionally recording the `erms_healing` variant's
/// structured trace and per-tick metric snapshots.
pub fn run_captured(cfg: &FaultsConfig, capture: bool) -> (FaultsResult, CapturedTelemetry) {
    let mut telemetry = CapturedTelemetry::default();
    let variants = [
        Variant::Vanilla,
        Variant::ErmsNoHealing,
        Variant::ErmsHealing,
    ]
    .into_iter()
    .map(|v| {
        let cap = (capture && v == Variant::ErmsHealing).then_some(&mut telemetry);
        run_variant(cfg, v, cap)
    })
    .collect();
    let result = FaultsResult {
        seed: cfg.seed,
        horizon_hours: cfg.fault.horizon.as_secs_f64() / 3600.0,
        num_files: cfg.num_files,
        file_size_mb: cfg.file_size / (1 << 20),
        variants,
    };
    (result, telemetry)
}

fn run_variant(
    cfg: &FaultsConfig,
    variant: Variant,
    mut capture: Option<&mut CapturedTelemetry>,
) -> FaultVariant {
    // identical placement for every variant: the comparison isolates the
    // control loop, not the placement policy
    let ccfg = ClusterConfig::paper_testbed();
    let nodes = ccfg.datanodes as usize;
    let racks = ccfg.racks as usize;
    let mut c = ClusterSim::new(ccfg, Box::new(DefaultRackAware));
    // a recording sink only where capture was requested — every other
    // variant keeps the disabled (zero-cost) sink
    let sink = if capture.is_some() {
        TelemetrySink::recording()
    } else {
        TelemetrySink::disabled()
    };
    c.set_telemetry(sink.clone());
    for i in 0..cfg.num_files {
        c.create_file(&format!("/churn/f{i}"), cfg.file_size, 3, None)
            .expect("base data fits");
    }
    c.run_until_quiescent();

    let mut manager = match variant {
        Variant::Vanilla => None,
        Variant::ErmsNoHealing | Variant::ErmsHealing => {
            let ecfg = ErmsConfig::builder()
                .standby([]) // all-active: same serving set as vanilla
                .encode(false)
                .self_healing(variant == Variant::ErmsHealing)
                .build()
                .expect("valid faults config");
            let mut m = ErmsManager::new(ecfg, &mut c).expect("valid faults manager");
            m.set_telemetry(sink.clone());
            Some(m)
        }
    };

    let plan = FaultPlan::generate(&cfg.fault, nodes, racks, cfg.seed);
    let planned_events = plan.len();
    let planned_kills = plan.kills();
    let mut injector = FaultInjector::new(plan, cfg.fault.straggler_slowdown);

    let mut applied = 0usize;
    let mut repairs_started = 0usize;
    let mut replicas_trimmed = 0usize;
    let mut reconstructions = 0usize;
    let mut tasks_timed_out = 0usize;
    let mut standby_evicted = 0usize;

    let total_ticks = (cfg.fault.horizon.as_secs_f64() / cfg.tick.as_secs_f64()).ceil() as usize
        + cfg.settle_ticks;
    let mut deadline = SimTime::ZERO;
    for tick_idx in 0..total_ticks {
        deadline += cfg.tick;
        // drain the previous tick's dispatched work first, so the clock
        // sits at the deadline when faults land and the loop ticks — the
        // trace then carries monotone timestamps (the spans oracle checks
        // this) instead of faults stamped ahead of the events around them
        c.run_until(deadline);
        if tick_idx < cfg.warmup_read_ticks {
            for r in 0..cfg.reads_per_tick {
                // churn can leave the file briefly unreadable; the crowd
                // just comes back next tick
                let _ = c.open_read(
                    Endpoint::Client(ClientId(tick_idx as u32 * cfg.reads_per_tick + r)),
                    "/churn/f0",
                );
            }
        }
        // trailing restarts may land past the horizon; let them apply so
        // only permanent kills persist into the settle window
        applied += injector.apply_due(&mut c, deadline);
        if let Some(m) = manager.as_mut() {
            let now = c.now();
            let r = m.tick(&mut c, now);
            repairs_started += r.repairs_started;
            replicas_trimmed += r.replicas_trimmed;
            reconstructions += r.reconstructions;
            tasks_timed_out += r.tasks_timed_out;
            standby_evicted += r.standby_evicted.len();
        }
        if let Some(cap) = capture.as_deref_mut() {
            if let Some(snap) = sink.snapshot_json(c.now()) {
                cap.metric_snapshots.push(snap);
            }
        }
    }
    // the last tick's repairs are still in flight — drain them
    c.run_until_quiescent();
    let end = c.now();
    c.durability_mut().finalize(end);
    if let Some(cap) = capture {
        cap.trace_jsonl = sink.drain_jsonl();
    }

    let under_replicated_final = count_under_replicated(&c);
    let s = c.durability().summary();
    FaultVariant {
        variant: variant.label().to_string(),
        seed: cfg.seed,
        planned_events,
        planned_kills,
        events_applied: applied,
        unavailability_windows: s.unavailability_windows,
        unresolved_windows: s.unresolved_windows,
        total_unavailable_secs: s.total_unavailable_secs,
        mttr_secs: s.mttr_secs,
        max_window_secs: s.max_window_secs,
        data_loss_events: s.data_loss_events,
        repair_bytes: s.repair_bytes,
        under_replicated_final,
        repairs_started,
        replicas_trimmed,
        reconstructions,
        tasks_timed_out,
        standby_evicted,
    }
}

/// Blocks currently short of their file's target replication, counting
/// dark (zero-replica) blocks the blockmap no longer lists.
fn count_under_replicated(c: &ClusterSim) -> usize {
    let mut short = 0usize;
    for meta in c.namespace().files() {
        let want = meta.replication();
        for &b in &meta.blocks {
            if c.blockmap().replica_count(b) < want {
                short += 1;
            }
        }
    }
    short
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FaultsConfig {
        let mut cfg = FaultsConfig::small();
        cfg.num_files = 6;
        cfg.fault.horizon = SimDuration::from_hours(2);
        cfg.settle_ticks = 20;
        cfg
    }

    #[test]
    fn same_seed_is_reproducible() {
        let cfg = quick_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "same seed must give byte-identical results");
    }

    #[test]
    fn healing_repairs_what_vanilla_loses() {
        let cfg = FaultsConfig::small();
        let r = run(&cfg);
        let vanilla = &r.variants[0];
        let healing = &r.variants[2];
        assert_eq!(vanilla.variant, "vanilla");
        assert_eq!(healing.variant, "erms_healing");
        assert!(vanilla.planned_kills > 0, "churn includes permanent kills");
        // unmanaged: permanent kills erode redundancy for good
        assert!(
            vanilla.under_replicated_final > 0,
            "vanilla keeps a deficit: {vanilla:?}"
        );
        // self-healing: every under-replicated block back at target, and
        // no replicated file ever lost data
        assert_eq!(
            healing.under_replicated_final, 0,
            "healing repairs all deficits: {healing:?}"
        );
        assert_eq!(
            healing.data_loss_events, 0,
            "no 3-replica file loses data under healing: {healing:?}"
        );
        assert!(healing.repairs_started > 0);
        assert!(healing.repair_bytes > 0);
    }

    #[test]
    fn same_seed_trace_is_byte_identical() {
        let cfg = quick_cfg();
        let (_, t1) = run_captured(&cfg, true);
        let (_, t2) = run_captured(&cfg, true);
        assert!(!t1.trace_jsonl.is_empty(), "healing variant traced events");
        assert_eq!(t1.trace_jsonl, t2.trace_jsonl, "trace bytes must match");
        assert_eq!(t1.metric_snapshots, t2.metric_snapshots);
        // every line is a JSON object with the stable envelope keys
        for line in t1.trace_jsonl.lines().take(50) {
            assert!(line.starts_with("{\"t_ns\":"), "envelope: {line}");
            assert!(line.contains("\"ev\":"), "event tag: {line}");
        }
    }

    #[test]
    fn capture_off_records_nothing() {
        let cfg = quick_cfg();
        let (_, t) = run_captured(&cfg, false);
        assert!(t.trace_jsonl.is_empty());
        assert!(t.metric_snapshots.is_empty());
    }
}
