//! Resumable scenario runner — the checkpoint subsystem's main consumer.
//!
//! A [`ResumableRun`] drives the faults-under-churn scenario one control
//! tick at a time and can [`save`](ResumableRun::save) its *entire*
//! deterministic state into a [`checkpoint::Snapshot`] at any tick
//! boundary: cluster (namespace, blockmap, flows, durability), ERMS
//! manager (CEP windows, journal, bookkeeping sets, standby model),
//! fault-plan cursor, telemetry sequence number, metric registry and
//! the runner's own loop state. [`resume`](ResumableRun::resume) rebuilds a run from a
//! snapshot via rebuild-then-hydrate: construct everything from the
//! named scenario's config (config is *not* serialized), then overwrite
//! the dynamic state.
//!
//! The contract the integration suite enforces: a run checkpointed at
//! tick T and resumed is byte-identical to the straight-through run —
//! the telemetry JSONL prefix (drained before the snapshot) plus the
//! resumed suffix concatenate into the exact straight-through trace,
//! and the final snapshots compare equal field for field.

use checkpoint::codec as c;
use checkpoint::{CheckpointError, Checkpointable, Snapshot, SnapshotMeta};
use erms::{ErmsConfig, ErmsManager, ErmsPlacement, JudgeBackend, Thresholds};
use hdfs_sim::faults::{FaultConfig, FaultInjector};
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::{ClusterConfig, ClusterSim, NodeId};
use simcore::telemetry::TelemetrySink;
use simcore::units::{Bytes, MB};
use simcore::{SimDuration, SimTime};
use workload::{DiurnalConfig, FlashCrowdConfig, IngestScanConfig, ProdScenario, TieredConfig};

/// A named, code-defined scenario shape. Snapshots store only the name
/// (plus seed), so resuming looks the config up here — the snapshot
/// never has to serialize topology or thresholds, and a snapshot taken
/// against one binary cannot silently run under a different config.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: &'static str,
    pub fault: FaultConfig,
    pub num_files: usize,
    pub file_size: Bytes,
    /// Control-loop / fault-injection cadence.
    pub tick: SimDuration,
    /// Horizon ticks plus the settle tail, i.e. when [`ResumableRun::done`]
    /// flips.
    pub total_ticks: u64,
    /// Flash-crowd shape (same as the faults bench): the first
    /// `warmup_read_ticks` ticks each open `reads_per_tick` reads on
    /// `/churn/f0`, giving the manager something to boost and shed.
    pub warmup_read_ticks: u64,
    pub reads_per_tick: u32,
    /// Node ids handed to ERMS as the elastic standby pool.
    pub standby: std::ops::Range<u32>,
    /// Judge mode: forced full rescan instead of the incremental visit set.
    pub full_rescan: bool,
    /// Background scrubber on (with the default per-tick budget).
    pub scrubber: bool,
    /// Erasure-code cold data (the tiered scenarios' whole point).
    pub encode: bool,
    /// Production-shaped traffic driving the run: the trace synthesised
    /// from this config (and the run seed) is quantised onto the tick
    /// grid — file creations and job reads fire at their tick's
    /// deadline. `None` means the classic `/churn` warm-up shape.
    pub workload: Option<ProdScenario>,
    /// Which [`erms::JudgePolicy`] backend classifies files: the paper's
    /// rules, the tabular Q-learner, or the HMM hot/cold filter. Part of
    /// the scenario shape (snapshots rebuild it from the name), so a
    /// learned run resumes with the same backend it saved under.
    pub judge_backend: JudgeBackend,
}

impl Scenario {
    /// 1h of churn + settle tail on the 18-node paper testbed,
    /// incremental judging. The workhorse for tests and CI.
    pub fn churn_small() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_hours(1);
        fault.node_mtbf = SimDuration::from_mins(25);
        Scenario {
            name: "churn-small",
            fault,
            num_files: 8,
            file_size: 64 * MB,
            tick: SimDuration::from_secs(30),
            total_ticks: 120 + 16,
            warmup_read_ticks: 8,
            reads_per_tick: 8,
            standby: 15..18,
            full_rescan: false,
            scrubber: false,
            encode: false,
            workload: None,
            judge_backend: JudgeBackend::Rules,
        }
    }

    /// [`churn_small`](Self::churn_small) with the judge forced into
    /// full-rescan mode — the equivalence guard runs both.
    pub fn churn_small_full() -> Self {
        Scenario {
            name: "churn-small-full",
            full_rescan: true,
            ..Self::churn_small()
        }
    }

    /// Half-hour micro variant for property tests.
    pub fn churn_tiny() -> Self {
        let mut s = Self::churn_small();
        s.name = "churn-tiny";
        s.fault.horizon = SimDuration::from_mins(30);
        s.fault.node_mtbf = SimDuration::from_mins(12);
        s.num_files = 6;
        s.total_ticks = 60 + 10;
        s
    }

    /// [`churn_tiny`](Self::churn_tiny) judged by the tabular
    /// Q-learner instead of the paper's rules — the learned-backend
    /// scenario the resume-equivalence guard and the trace oracle run.
    pub fn churn_learned_q() -> Self {
        let mut s = Self::churn_tiny();
        s.name = "churn-learned-q";
        s.judge_backend = JudgeBackend::QLearning;
        s
    }

    /// [`churn_tiny`](Self::churn_tiny) judged by the HMM hot/cold
    /// forward filter.
    pub fn churn_learned_hmm() -> Self {
        let mut s = Self::churn_tiny();
        s.name = "churn-learned-hmm";
        s.judge_backend = JudgeBackend::Hmm;
        s
    }

    /// [`churn_tiny`](Self::churn_tiny) with silent corruption and torn
    /// writes in the fault mix and the background scrubber switched on —
    /// exercises checksum-validity maps and the scrub cursor through the
    /// resume-equivalence guard.
    pub fn churn_corrupt() -> Self {
        let mut s = Self::churn_tiny();
        s.name = "churn-corrupt";
        s.fault = s.fault.with_corruption(SimDuration::from_mins(8), 0.0, 0.5);
        s.scrubber = true;
        s
    }

    /// Base shape for the production-traffic scenarios: no `/churn`
    /// warm-up corpus (the trace brings its own files), faults tuned per
    /// scenario, otherwise the churn defaults.
    fn prod_base() -> Self {
        Scenario {
            num_files: 0,
            warmup_read_ticks: 0,
            reads_per_tick: 0,
            ..Self::churn_small()
        }
    }

    /// One simulated day of six-tenant Zipf traffic with staggered
    /// diurnal peaks — the shape the elastic scale-up/down loop tracks.
    pub fn prod_diurnal() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_hours(24);
        fault.node_mtbf = SimDuration::from_hours(8);
        Scenario {
            name: "prod-diurnal",
            fault,
            tick: SimDuration::from_secs(240),
            total_ticks: 360 + 20,
            workload: Some(ProdScenario::Diurnal(DiurnalConfig::default())),
            ..Self::prod_base()
        }
    }

    /// Four hours of background Zipf reads punctuated by correlated
    /// cross-file flash crowds (whole file groups slammed at once).
    pub fn prod_flashcrowd() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_mins(210);
        Scenario {
            name: "prod-flashcrowd",
            fault,
            tick: SimDuration::from_secs(60),
            total_ticks: 240 + 16,
            workload: Some(ProdScenario::FlashCrowd(FlashCrowdConfig::default())),
            ..Self::prod_base()
        }
    }

    /// Six hours of continuous ingest (write pressure all horizon long)
    /// with fresh-read validation traffic and periodic namespace scans.
    pub fn prod_ingest() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_hours(5);
        fault.node_mtbf = SimDuration::from_hours(3);
        Scenario {
            name: "prod-ingest",
            fault,
            tick: SimDuration::from_secs(60),
            total_ticks: 360 + 16,
            workload: Some(ProdScenario::IngestScan(IngestScanConfig::default())),
            ..Self::prod_base()
        }
    }

    /// Eight hours of wave-structured arrivals cooling past the
    /// cold-age threshold, with erasure coding switched on so the
    /// cold-data policy actually trades storage against repair latency.
    pub fn prod_tiered() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_hours(7);
        fault.node_mtbf = SimDuration::from_hours(4);
        Scenario {
            name: "prod-tiered",
            fault,
            tick: SimDuration::from_secs(120),
            total_ticks: 240 + 16,
            encode: true,
            workload: Some(ProdScenario::Tiered(TieredConfig::default())),
            ..Self::prod_base()
        }
    }

    /// The long-horizon soak: two simulated days of diurnal traffic
    /// with node churn *and* silent corruption under the scrubber —
    /// the scenario `bench soak` splits across checkpointed segments.
    pub fn soak_diurnal() -> Self {
        let mut fault = FaultConfig::paper_default();
        fault.horizon = SimDuration::from_hours(46);
        fault.node_mtbf = SimDuration::from_hours(16);
        let fault = fault.with_corruption(SimDuration::from_hours(8), 0.0, 0.3);
        Scenario {
            name: "soak-diurnal",
            fault,
            tick: SimDuration::from_secs(120),
            total_ticks: 1440 + 20,
            scrubber: true,
            workload: Some(ProdScenario::Diurnal(DiurnalConfig::soak())),
            ..Self::prod_base()
        }
    }

    /// Look a scenario up by the name a snapshot recorded.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "churn-small" => Some(Self::churn_small()),
            "churn-small-full" => Some(Self::churn_small_full()),
            "churn-tiny" => Some(Self::churn_tiny()),
            "churn-corrupt" => Some(Self::churn_corrupt()),
            "churn-learned-q" => Some(Self::churn_learned_q()),
            "churn-learned-hmm" => Some(Self::churn_learned_hmm()),
            "prod-diurnal" => Some(Self::prod_diurnal()),
            "prod-flashcrowd" => Some(Self::prod_flashcrowd()),
            "prod-ingest" => Some(Self::prod_ingest()),
            "prod-tiered" => Some(Self::prod_tiered()),
            "soak-diurnal" => Some(Self::soak_diurnal()),
            _ => None,
        }
    }

    pub fn names() -> &'static [&'static str] {
        &[
            "churn-small",
            "churn-small-full",
            "churn-tiny",
            "churn-corrupt",
            "churn-learned-q",
            "churn-learned-hmm",
            "prod-diurnal",
            "prod-flashcrowd",
            "prod-ingest",
            "prod-tiered",
            "soak-diurnal",
        ]
    }

    fn erms_config(&self) -> ErmsConfig {
        let mut thresholds = Thresholds::calibrate(4.0);
        thresholds.window = SimDuration::from_secs(600);
        thresholds.cold_age = SimDuration::from_secs(1800);
        ErmsConfig::builder()
            .thresholds(thresholds)
            .standby(self.standby.clone().map(NodeId))
            .self_healing(true)
            .encode(self.encode)
            .scrubber(self.scrubber)
            .full_rescan(self.full_rescan)
            .judge_backend(self.judge_backend)
            .build()
            .expect("scenario config is valid")
    }

    /// Quantise the production trace (if any) onto the tick grid. Fully
    /// derived from (scenario shape, seed), so resume regenerates it —
    /// the ops schedule never enters a snapshot, exactly like the fault
    /// plan. Times past the horizon clamp into the last tick; a job
    /// never precedes its input file, so in-tick create-before-read
    /// ordering keeps every read satisfiable.
    fn workload_ops(&self, seed: u64) -> Option<WorkloadOps> {
        // Salted so the trace generator's streams never mirror the
        // fault plan's, which is seeded with the raw run seed.
        const TRACE_SEED_SALT: u64 = 0x7ACE_5EED;
        let trace = self.workload.as_ref()?.generate(seed ^ TRACE_SEED_SALT);
        let tick_secs = self.tick.as_secs_f64();
        let last = self.total_ticks.saturating_sub(1);
        let tick_of = |t: f64| ((t / tick_secs) as u64).min(last) as usize;
        let mut creates = vec![Vec::new(); self.total_ticks as usize];
        let mut reads = vec![Vec::new(); self.total_ticks as usize];
        for f in &trace.files {
            creates[tick_of(f.created_at_secs)].push((f.path.clone(), f.size));
        }
        for j in &trace.jobs {
            reads[tick_of(j.submit_at_secs)].push(j.input.clone());
        }
        Some(WorkloadOps { creates, reads })
    }
}

/// A production trace flattened onto the tick grid: what to create and
/// read at each tick boundary.
struct WorkloadOps {
    creates: Vec<Vec<(String, Bytes)>>,
    reads: Vec<Vec<String>>,
}

/// A scenario run that can be snapshotted at any tick boundary.
pub struct ResumableRun {
    scenario: Scenario,
    seed: u64,
    cluster: ClusterSim,
    manager: ErmsManager,
    injector: FaultInjector,
    /// Regenerated from (scenario, seed) on construction *and* resume —
    /// never serialized, like the fault plan.
    ops: Option<WorkloadOps>,
    sink: TelemetrySink,
    tick_idx: u64,
    deadline: SimTime,
    finished: bool,
}

impl ResumableRun {
    /// Start a fresh run: paper testbed, base files created and settled,
    /// fault plan generated from the seed, recording telemetry attached
    /// from the first event.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        let ccfg = ClusterConfig::paper_testbed();
        let nodes = ccfg.datanodes as usize;
        let racks = ccfg.racks as usize;
        let mut cluster = ClusterSim::new(ccfg, Box::new(ErmsPlacement::new()));
        let sink = TelemetrySink::recording();
        cluster.set_telemetry(sink.clone());
        let mut manager =
            ErmsManager::new(scenario.erms_config(), &mut cluster).expect("scenario manager");
        manager.set_telemetry(sink.clone());
        for i in 0..scenario.num_files {
            cluster
                .create_file(&format!("/churn/f{i}"), scenario.file_size, 3, None)
                .expect("base data fits");
        }
        cluster.run_until_quiescent();
        let injector = FaultInjector::from_config(&scenario.fault, nodes, racks, seed);
        let ops = scenario.workload_ops(seed);
        ResumableRun {
            scenario,
            seed,
            cluster,
            manager,
            injector,
            ops,
            sink,
            tick_idx: 0,
            deadline: SimTime::ZERO,
            finished: false,
        }
    }

    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }
    pub fn tick_idx(&self) -> u64 {
        self.tick_idx
    }
    pub fn done(&self) -> bool {
        self.tick_idx >= self.scenario.total_ticks
    }
    pub fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }
    pub fn manager(&self) -> &ErmsManager {
        &self.manager
    }

    /// One control tick, same shape as the faults bench: drain to the
    /// deadline, stoke the flash crowd, land due faults, tick ERMS.
    pub fn step(&mut self) {
        debug_assert!(!self.done(), "stepping past the horizon");
        self.deadline += self.scenario.tick;
        self.cluster.run_until(self.deadline);
        if self.tick_idx < self.scenario.warmup_read_ticks {
            for r in 0..self.scenario.reads_per_tick {
                // churn can leave the file briefly unreadable; the crowd
                // just comes back next tick
                let _ = self.cluster.open_read(
                    Endpoint::Client(ClientId(
                        self.tick_idx as u32 * self.scenario.reads_per_tick + r,
                    )),
                    "/churn/f0",
                );
            }
        }
        if let Some(ops) = &self.ops {
            let t = self.tick_idx as usize;
            for (path, size) in &ops.creates[t] {
                // placement can fail transiently under churn (racks
                // down); the trace just loses that file's traffic
                let _ = self.cluster.create_file(path, *size, 3, None);
            }
            for (pos, path) in ops.reads[t].iter().enumerate() {
                let client = ClientId(
                    (self.tick_idx as u32)
                        .wrapping_mul(131)
                        .wrapping_add(pos as u32)
                        % 4096,
                );
                let _ = self.cluster.open_read(Endpoint::Client(client), path);
            }
        }
        self.injector.apply_due(&mut self.cluster, self.deadline);
        let now = self.cluster.now();
        self.manager.tick(&mut self.cluster, now);
        self.tick_idx += 1;
    }

    /// Step until tick `t` (or the horizon, whichever is first).
    pub fn run_to_tick(&mut self, t: u64) {
        while self.tick_idx < t && !self.done() {
            self.step();
        }
    }

    /// Step to the horizon, drain in-flight work and close the
    /// durability ledger. Idempotent.
    pub fn finish(&mut self) {
        while !self.done() {
            self.step();
        }
        if !self.finished {
            self.cluster.run_until_quiescent();
            let end = self.cluster.now();
            self.cluster.durability_mut().finalize(end);
            self.finished = true;
        }
    }

    /// JSON snapshot of the sink's metric registry at the cluster's
    /// current time — the integration suite compares this between
    /// straight-through and resumed runs.
    pub fn metrics_snapshot(&self) -> Option<String> {
        self.sink.snapshot_json(self.cluster.now())
    }

    /// Drain the telemetry recorded since the last drain. Draining does
    /// not disturb the sequence numbering, so a prefix drained before
    /// [`save`](Self::save) and the suffix from the resumed run
    /// concatenate into the straight-through trace.
    pub fn drain_trace(&mut self) -> String {
        self.sink.drain_jsonl()
    }

    /// Snapshot the complete deterministic state at the current tick
    /// boundary. Telemetry *events* are not serialized — only the
    /// sequence counter, so the resumed sink continues the numbering.
    pub fn save(&self) -> Snapshot {
        let mut snap = Snapshot::new(SnapshotMeta {
            scenario: self.scenario.name.to_string(),
            seed: self.seed,
            tick: self.tick_idx,
        });
        snap.insert_section("cluster", self.cluster.save_state());
        snap.insert_section("manager", self.manager.save_state());
        snap.insert_section(
            "metrics",
            self.sink
                .with_metrics(|m| m.save_state())
                .expect("resumable runs always record"),
        );
        snap.insert_section(
            "runner",
            c::MapBuilder::new()
                .u64("tick_idx", self.tick_idx)
                .time("deadline", self.deadline)
                .u64("fault_cursor", self.injector.cursor() as u64)
                .u64("telemetry_seq", self.sink.seq())
                .bool("finished", self.finished)
                .build(),
        );
        snap
    }

    /// Rebuild a run from a snapshot. The scenario named in the meta is
    /// looked up in the registry and everything is constructed fresh
    /// (with the telemetry sink still disabled, so construction noise
    /// never reaches the trace), then hydrated from the sections; the
    /// fault plan is regenerated from the seed and fast-forwarded to
    /// the saved cursor.
    pub fn resume(snap: &Snapshot) -> Result<Self, CheckpointError> {
        let scenario = Scenario::by_name(&snap.meta.scenario).ok_or_else(|| {
            CheckpointError::Corrupt(format!(
                "snapshot names unknown scenario {:?}",
                snap.meta.scenario
            ))
        })?;
        let seed = snap.meta.seed;
        let ccfg = ClusterConfig::paper_testbed();
        let nodes = ccfg.datanodes as usize;
        let racks = ccfg.racks as usize;
        let mut cluster = ClusterSim::new(ccfg, Box::new(ErmsPlacement::new()));
        let mut manager = ErmsManager::new(scenario.erms_config(), &mut cluster)
            .map_err(|e| CheckpointError::Corrupt(format!("scenario config rejected: {e}")))?;
        cluster.load_state(snap.section("cluster")?)?;
        manager.load_state(snap.section("manager")?)?;

        let runner = snap.section("runner")?;
        let tick_idx = c::get_u64(runner, "tick_idx")?;
        let deadline = c::get_time(runner, "deadline")?;
        let finished = c::get_bool(runner, "finished")?;
        let mut injector = FaultInjector::from_config(&scenario.fault, nodes, racks, seed);
        injector.set_cursor(c::get_usize(runner, "fault_cursor")?);

        let sink = TelemetrySink::recording();
        sink.set_seq(c::get_u64(runner, "telemetry_seq")?);
        // Restore the metric registry so counters/gauges/histograms
        // continue accumulating from their saved values and the final
        // metric snapshot matches the straight-through run's. Lenient
        // on absence: pre-metrics snapshots still resume.
        if let Ok(section) = snap.section("metrics") {
            let mut metrics = simcore::MetricsRegistry::default();
            metrics.load_state(section)?;
            sink.replace_metrics(metrics);
        }
        cluster.set_telemetry(sink.clone());
        manager.set_telemetry(sink.clone());

        let ops = scenario.workload_ops(seed);
        Ok(ResumableRun {
            scenario,
            seed,
            cluster,
            manager,
            injector,
            ops,
            sink,
            tick_idx,
            deadline,
            finished,
        })
    }

    /// Resume as after a manager *crash*: the snapshot stands in for the
    /// journal a restarted manager replays, so instead of continuing
    /// exactly, every task the journal shows in flight is failed and its
    /// rollback compensation applied ([`ErmsManager::restore`]). Returns
    /// the run plus how many in-flight tasks were recovered.
    pub fn crash_restart(snap: &Snapshot) -> Result<(Self, usize), CheckpointError> {
        let mut run = Self::resume(snap)?;
        let now = run.cluster.now();
        let recovered = run.manager.restore(&mut run.cluster, now);
        Ok((run, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_resolve_by_name() {
        for name in Scenario::names() {
            let s = Scenario::by_name(name).unwrap();
            assert_eq!(&s.name, name);
            assert!(s.total_ticks > 0);
        }
        assert!(Scenario::by_name("churn-galactic").is_none());
    }

    #[test]
    fn scenarios_actually_schedule_churn() {
        use hdfs_sim::faults::FaultPlan;
        for name in Scenario::names() {
            let s = Scenario::by_name(name).unwrap();
            let plan = FaultPlan::generate(&s.fault, 18, 3, 42);
            assert!(!plan.is_empty(), "{name} plans no faults");
            let span = SimDuration::from_secs_f64(s.tick.as_secs_f64() * s.total_ticks as f64);
            assert!(
                span > s.fault.horizon,
                "{name} ends before its fault horizon"
            );
        }
    }

    #[test]
    fn prod_scenarios_quantise_their_trace_onto_the_tick_grid() {
        for name in [
            "prod-diurnal",
            "prod-flashcrowd",
            "prod-ingest",
            "prod-tiered",
        ] {
            let s = Scenario::by_name(name).unwrap();
            let ops = s.workload_ops(42).expect("prod scenarios carry a trace");
            assert_eq!(ops.creates.len(), s.total_ticks as usize);
            assert_eq!(ops.reads.len(), s.total_ticks as usize);
            let creates: usize = ops.creates.iter().map(Vec::len).sum();
            let reads: usize = ops.reads.iter().map(Vec::len).sum();
            assert!(creates > 0, "{name} schedules no file creations");
            assert!(
                reads > creates,
                "{name} is not read-dominated: {reads}/{creates}"
            );
            // every read targets a file some tick creates, never earlier
            let mut born = std::collections::BTreeMap::new();
            for (t, c) in ops.creates.iter().enumerate() {
                for (path, _) in c {
                    born.insert(path.as_str(), t);
                }
            }
            for (t, r) in ops.reads.iter().enumerate() {
                for path in r {
                    let b = born.get(path.as_str()).expect("read of unknown file");
                    assert!(*b <= t, "{name}: {path} read at tick {t}, born {b}");
                }
            }
        }
        assert!(Scenario::churn_small().workload_ops(42).is_none());
    }

    #[test]
    fn prod_traffic_reaches_the_cluster() {
        let mut run = ResumableRun::new(Scenario::prod_flashcrowd(), 7);
        // the flash-crowd corpus lands inside the first 5% of the horizon
        run.run_to_tick(14);
        let s = Scenario::prod_flashcrowd();
        let expect = match &s.workload {
            Some(ProdScenario::FlashCrowd(c)) => c.groups * c.files_per_group,
            _ => unreachable!(),
        };
        assert_eq!(run.cluster().namespace().num_files(), expect);
    }

    #[test]
    fn snapshot_carries_the_four_sections() {
        let mut run = ResumableRun::new(Scenario::churn_tiny(), 7);
        run.run_to_tick(3);
        let snap = run.save();
        assert_eq!(snap.meta.tick, 3);
        assert_eq!(snap.meta.scenario, "churn-tiny");
        let names: Vec<&str> = snap.section_names().collect();
        assert_eq!(names, ["cluster", "manager", "metrics", "runner"]);
    }

    #[test]
    fn resume_rejects_unknown_scenario() {
        let mut run = ResumableRun::new(Scenario::churn_tiny(), 7);
        run.run_to_tick(2);
        let mut snap = run.save();
        snap.meta.scenario = "churn-galactic".into();
        assert!(matches!(
            ResumableRun::resume(&snap),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
