//! The tasktracker/slot model driving the HDFS simulator.
//!
//! Every datanode runs a tasktracker with a fixed number of map slots.
//! When a slot frees, the scheduler is offered it; the chosen map task
//! opens its input block on the simulated cluster (so mapper I/O really
//! contends with everything else), computes, and completes. Slot offers
//! also recur on a heartbeat so delay scheduling cannot deadlock the
//! replay.
//!
//! A periodic [`ControllerHook`] lets ERMS's manager observe and steer
//! the cluster *while the trace replays* — the paper's Fig. 3/4/5 loop.

use crate::job::{JobPhase, JobSpec, JobStats, MapTask, TaskState};
use crate::scheduler::{PendingTask, TaskScheduler};
use hdfs_sim::cluster::ReadId;
use hdfs_sim::topology::Endpoint;
use hdfs_sim::{ClusterSim, NodeId};
use simcore::units::Bytes;
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Periodic controller callback (the ERMS manager's entry point).
pub type ControllerHook = Box<dyn FnMut(&mut ClusterSim, SimTime)>;

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    pub map_slots_per_node: usize,
    /// Heartbeat used to re-offer idle slots (delay scheduling progress).
    pub heartbeat: SimDuration,
    /// Interval of the controller hook, if one is installed.
    pub controller_interval: SimDuration,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            map_slots_per_node: 2,
            heartbeat: SimDuration::from_secs(1),
            controller_interval: SimDuration::from_secs(60),
        }
    }
}

// timer token namespaces
const TK_ARRIVAL: u64 = 1 << 56;
const TK_COMPUTE: u64 = 2 << 56;
const TK_REDUCE: u64 = 3 << 56;
const TK_TICK: u64 = 4 << 56;
const TK_HEARTBEAT: u64 = 5 << 56;
const TK_MASK: u64 = 0xFF << 56;

struct JobRt {
    spec: JobSpec,
    phase: JobPhase,
    tasks: Vec<MapTask>,
    running: usize,
    pending: usize,
    bytes_read: Bytes,
    total_read_secs: f64,
}

/// The MapReduce runner.
pub struct MapReduceRunner {
    cluster: ClusterSim,
    scheduler: Box<dyn TaskScheduler>,
    cfg: RunnerConfig,
    jobs: Vec<JobRt>,
    read_to_task: BTreeMap<ReadId, (usize, usize)>,
    task_node: BTreeMap<(usize, usize), NodeId>,
    free_slots: Vec<usize>,
    controller: Option<ControllerHook>,
    finished: Vec<JobStats>,
    heartbeat_pending: bool,
}

impl MapReduceRunner {
    pub fn new(cluster: ClusterSim, scheduler: Box<dyn TaskScheduler>, cfg: RunnerConfig) -> Self {
        let n = cluster.config().datanodes as usize;
        let slots = vec![cfg.map_slots_per_node; n];
        MapReduceRunner {
            cluster,
            scheduler,
            cfg,
            jobs: Vec::new(),
            read_to_task: BTreeMap::new(),
            task_node: BTreeMap::new(),
            free_slots: slots,
            controller: None,
            finished: Vec::new(),
            heartbeat_pending: false,
        }
    }

    /// Access the cluster for setup (file creation, standby designation).
    pub fn cluster_mut(&mut self) -> &mut ClusterSim {
        &mut self.cluster
    }
    pub fn cluster(&self) -> &ClusterSim {
        &self.cluster
    }

    /// Install the periodic controller (ERMS) hook.
    pub fn set_controller(&mut self, hook: ControllerHook) {
        self.controller = Some(hook);
    }

    /// Queue a job for its arrival time.
    pub fn submit(&mut self, spec: JobSpec) {
        let idx = self.jobs.len();
        let at = spec.submit_at;
        self.jobs.push(JobRt {
            spec,
            phase: JobPhase::Future,
            tasks: Vec::new(),
            running: 0,
            pending: 0,
            bytes_read: 0,
            total_read_secs: 0.0,
        });
        self.cluster.schedule_timer(at, TK_ARRIVAL | idx as u64);
    }

    /// Replay every submitted job to completion; returns per-job stats
    /// in completion order.
    pub fn run(mut self) -> (Vec<JobStats>, ClusterSim) {
        if self.controller.is_some() {
            let t = self.cluster.now() + self.cfg.controller_interval;
            self.cluster.schedule_timer(t, TK_TICK);
        }
        while !self.all_done() {
            if !self.cluster.step() {
                // No events: can only happen if every job is done (slots
                // idle with nothing pending re-arms via heartbeat).
                break;
            }
            self.pump();
        }
        (std::mem::take(&mut self.finished), self.cluster)
    }

    fn all_done(&self) -> bool {
        !self.jobs.is_empty() && self.jobs.iter().all(|j| j.phase == JobPhase::Done)
    }

    fn pump(&mut self) {
        // timers first (arrivals enable scheduling), then read completions
        for (t, token) in self.cluster.drain_fired_timers() {
            self.on_timer(t, token);
        }
        for stats in self.cluster.drain_completed_reads() {
            self.on_read_done(stats);
        }
        self.try_schedule();
    }

    fn on_timer(&mut self, now: SimTime, token: u64) {
        let payload = token & !TK_MASK;
        match token & TK_MASK {
            TK_ARRIVAL => self.on_arrival(now, payload as usize),
            TK_COMPUTE => {
                let job = (payload >> 24) as usize;
                let task = (payload & 0xFF_FFFF) as usize;
                self.on_compute_done(now, job, task);
            }
            TK_REDUCE => self.on_reduce_done(now, payload as usize),
            TK_TICK => {
                if let Some(mut hook) = self.controller.take() {
                    hook(&mut self.cluster, now);
                    self.controller = Some(hook);
                }
                if !self.all_done() {
                    let t = now + self.cfg.controller_interval;
                    self.cluster.schedule_timer(t, TK_TICK);
                }
            }
            TK_HEARTBEAT => {
                self.heartbeat_pending = false;
            }
            _ => {}
        }
    }

    fn on_arrival(&mut self, now: SimTime, idx: usize) {
        // materialize map tasks from the input file's blocks
        let (blocks, ok) = {
            let input = self.jobs[idx].spec.input.clone();
            match self
                .cluster
                .namespace()
                .resolve(&input)
                .and_then(|f| self.cluster.namespace().file(f))
            {
                Some(meta) => (meta.blocks.clone(), true),
                None => (Vec::new(), false),
            }
        };
        let job = &mut self.jobs[idx];
        job.phase = JobPhase::Mapping;
        job.spec.submit_at = now;
        if !ok || blocks.is_empty() {
            // missing input: empty job completes immediately
            job.phase = JobPhase::Done;
            self.finished.push(JobStats {
                name: job.spec.name.clone(),
                input: job.spec.input.clone(),
                submitted: now,
                finished: now,
                map_tasks: 0,
                node_local_tasks: 0,
                bytes_read: 0,
                total_read_secs: 0.0,
            });
            return;
        }
        job.tasks = blocks
            .into_iter()
            .map(|b| MapTask {
                block: b,
                state: TaskState::Pending,
                node_local: None,
            })
            .collect();
        job.pending = job.tasks.len();
        let spec = job.spec.clone();
        self.scheduler.on_job_submitted(idx, &spec);
    }

    fn on_read_done(&mut self, stats: hdfs_sim::ReadStats) {
        let Some((j, t)) = self.read_to_task.remove(&stats.id) else {
            return; // a read the controller opened, not ours
        };
        let job = &mut self.jobs[j];
        job.bytes_read += stats.bytes;
        job.total_read_secs += stats.duration();
        job.tasks[t].state = TaskState::Computing;
        let at = stats.finished + job.spec.compute_per_block;
        self.cluster
            .schedule_timer(at, TK_COMPUTE | ((j as u64) << 24) | t as u64);
    }

    fn on_compute_done(&mut self, now: SimTime, j: usize, t: usize) {
        {
            let job = &mut self.jobs[j];
            job.tasks[t].state = TaskState::Done;
            job.running -= 1;
        }
        if let Some(node) = self.task_node.remove(&(j, t)) {
            self.free_slots[node.0 as usize] += 1;
        }
        let job = &mut self.jobs[j];
        if job.pending == 0 && job.running == 0 && job.phase == JobPhase::Mapping {
            job.phase = JobPhase::Reducing;
            let at = now + job.spec.reduce_duration;
            self.cluster.schedule_timer(at, TK_REDUCE | j as u64);
        }
    }

    fn on_reduce_done(&mut self, now: SimTime, j: usize) {
        let job = &mut self.jobs[j];
        job.phase = JobPhase::Done;
        self.finished.push(JobStats {
            name: job.spec.name.clone(),
            input: job.spec.input.clone(),
            submitted: job.spec.submit_at,
            finished: now,
            map_tasks: job.tasks.len() as u32,
            node_local_tasks: job
                .tasks
                .iter()
                .filter(|t| t.node_local == Some(true))
                .count() as u32,
            bytes_read: job.bytes_read,
            total_read_secs: job.total_read_secs,
        });
    }

    fn pending_tasks(&self) -> Vec<PendingTask> {
        let mut out = Vec::new();
        for (j, job) in self.jobs.iter().enumerate() {
            if job.phase != JobPhase::Mapping {
                continue;
            }
            for (t, task) in job.tasks.iter().enumerate() {
                if task.state == TaskState::Pending {
                    out.push(PendingTask {
                        job: j,
                        task: t,
                        block: task.block,
                        holders: self.cluster.blockmap().replica_nodes(task.block).to_vec(),
                    });
                }
            }
        }
        out
    }

    fn try_schedule(&mut self) {
        let running: Vec<usize> = self.jobs.iter().map(|j| j.running).collect();
        let mut running = running;
        let mut any_unassigned_with_free_slot = false;
        // offer each free slot once per pump, in node order
        for node_idx in 0..self.free_slots.len() {
            while self.free_slots[node_idx] > 0 {
                if !self.cluster.node_views(None, None)[node_idx].serving {
                    break; // standby/dead nodes offer no slots
                }
                let pending = self.pending_tasks();
                if pending.is_empty() {
                    return self.arm_heartbeat_if_needed(false);
                }
                let node = NodeId(node_idx as u32);
                match self.scheduler.pick(node, &pending, &running) {
                    Some(i) => {
                        let pt = pending[i].clone();
                        self.assign(node, &pt);
                        running[pt.job] += 1;
                    }
                    None => {
                        any_unassigned_with_free_slot = true;
                        break; // scheduler is delaying on this slot
                    }
                }
            }
        }
        self.arm_heartbeat_if_needed(any_unassigned_with_free_slot);
    }

    fn arm_heartbeat_if_needed(&mut self, needed: bool) {
        // keep one heartbeat outstanding while delay scheduling idles
        // slots, so slot offers recur and the replay can't stall
        if needed && !self.heartbeat_pending {
            self.heartbeat_pending = true;
            let t = self.cluster.now() + self.cfg.heartbeat;
            self.cluster.schedule_timer(t, TK_HEARTBEAT);
        }
    }

    fn assign(&mut self, node: NodeId, pt: &PendingTask) {
        let path = self.jobs[pt.job].spec.input.clone();
        let Some(read) = self
            .cluster
            .open_block_read(Endpoint::Node(node), &path, pt.block)
        else {
            // input vanished mid-job: count the task done with no bytes
            let job = &mut self.jobs[pt.job];
            job.tasks[pt.task].state = TaskState::Done;
            job.pending -= 1;
            return;
        };
        let job = &mut self.jobs[pt.job];
        job.tasks[pt.task].state = TaskState::Reading;
        job.tasks[pt.task].node_local = Some(pt.is_local_to(node));
        job.pending -= 1;
        job.running += 1;
        self.free_slots[node.0 as usize] -= 1;
        self.task_node.insert((pt.job, pt.task), node);
        self.read_to_task.insert(read, (pt.job, pt.task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FairScheduler, FifoScheduler};
    use hdfs_sim::{ClusterConfig, DefaultRackAware};
    use simcore::units::MB;

    fn cluster_with_files(paths: &[(&str, u64)]) -> ClusterSim {
        let mut c = ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
        for (p, size) in paths {
            c.create_file(p, *size, 3, None).unwrap();
        }
        c
    }

    fn job(name: &str, input: &str, at: u64) -> JobSpec {
        JobSpec {
            name: name.into(),
            input: input.into(),
            submit_at: SimTime::from_secs(at),
            compute_per_block: SimDuration::from_secs(2),
            reduce_duration: SimDuration::from_secs(3),
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let c = cluster_with_files(&[("/in", 256 * MB)]);
        let mut r = MapReduceRunner::new(c, Box::new(FifoScheduler), RunnerConfig::default());
        r.submit(job("j0", "/in", 0));
        let (stats, cluster) = r.run();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.map_tasks, 4);
        assert_eq!(s.bytes_read, 256 * MB);
        assert!(s.duration_secs() > 2.0, "reads+compute+reduce take time");
        assert!(cluster.is_idle());
    }

    #[test]
    fn missing_input_finishes_empty() {
        let c = cluster_with_files(&[]);
        let mut r = MapReduceRunner::new(c, Box::new(FifoScheduler), RunnerConfig::default());
        r.submit(job("j0", "/nope", 0));
        let (stats, _) = r.run();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].map_tasks, 0);
    }

    #[test]
    fn multiple_jobs_all_finish_fifo_and_fair() {
        for fair in [false, true] {
            let c = cluster_with_files(&[("/a", 128 * MB), ("/b", 128 * MB), ("/c", 192 * MB)]);
            let sched: Box<dyn TaskScheduler> = if fair {
                Box::new(FairScheduler::default())
            } else {
                Box::new(FifoScheduler)
            };
            let mut r = MapReduceRunner::new(c, sched, RunnerConfig::default());
            r.submit(job("j0", "/a", 0));
            r.submit(job("j1", "/b", 1));
            r.submit(job("j2", "/c", 2));
            let (stats, _) = r.run();
            assert_eq!(stats.len(), 3, "fair={fair}");
            assert!(stats.iter().all(|s| s.map_tasks > 0));
            let total: u64 = stats.iter().map(|s| s.bytes_read).sum();
            assert_eq!(total, (128 + 128 + 192) * MB);
        }
    }

    #[test]
    fn locality_is_tracked() {
        // 18 nodes, r=3, one 6-block file: some tasks should land local
        // (with 2 slots/node there is plenty of slot diversity)
        let c = cluster_with_files(&[("/in", 384 * MB)]);
        let mut r = MapReduceRunner::new(
            c,
            Box::new(FairScheduler::default()),
            RunnerConfig::default(),
        );
        r.submit(job("j0", "/in", 0));
        let (stats, _) = r.run();
        let s = &stats[0];
        assert_eq!(s.map_tasks, 6);
        assert!(
            s.node_local_tasks > 0,
            "delay scheduling should find local slots, got {}",
            s.node_local_tasks
        );
        assert!(s.locality() <= 1.0);
    }

    #[test]
    fn fair_beats_fifo_on_locality_under_contention() {
        // Many single-block jobs over distinct files: FIFO grabs any slot
        // for the head job; Fair waits for local ones.
        let mk = || {
            let mut c = ClusterSim::new(ClusterConfig::paper_testbed(), Box::new(DefaultRackAware));
            for i in 0..12 {
                c.create_file(&format!("/f{i}"), 64 * MB, 3, None).unwrap();
            }
            c
        };
        let run = |fair: bool| -> f64 {
            let sched: Box<dyn TaskScheduler> = if fair {
                Box::new(FairScheduler::new(6))
            } else {
                Box::new(FifoScheduler)
            };
            let mut r = MapReduceRunner::new(mk(), sched, RunnerConfig::default());
            for i in 0..12 {
                r.submit(job(&format!("j{i}"), &format!("/f{i}"), 0));
            }
            let (stats, _) = r.run();
            let local: u32 = stats.iter().map(|s| s.node_local_tasks).sum();
            let total: u32 = stats.iter().map(|s| s.map_tasks).sum();
            local as f64 / total as f64
        };
        let fifo = run(false);
        let fair = run(true);
        assert!(
            fair >= fifo,
            "fair locality {fair} should be >= fifo locality {fifo}"
        );
    }

    #[test]
    fn controller_hook_ticks() {
        let c = cluster_with_files(&[("/in", 256 * MB)]);
        let mut r = MapReduceRunner::new(
            c,
            Box::new(FifoScheduler),
            RunnerConfig {
                controller_interval: SimDuration::from_secs(1),
                ..RunnerConfig::default()
            },
        );
        use std::cell::Cell;
        use std::rc::Rc;
        let ticks = Rc::new(Cell::new(0u32));
        let t2 = ticks.clone();
        r.set_controller(Box::new(move |_c, _t| t2.set(t2.get() + 1)));
        r.submit(job("j0", "/in", 0));
        let (stats, _) = r.run();
        assert_eq!(stats.len(), 1);
        assert!(
            ticks.get() >= 2,
            "controller should tick repeatedly, got {}",
            ticks.get()
        );
    }
}
