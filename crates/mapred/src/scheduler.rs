//! Task schedulers: FIFO and Fair with delay scheduling.
//!
//! The scheduler answers one question: *a slot on node N is free — which
//! pending map task should take it?* The two policies the paper
//! evaluates differ in whose tasks get the slot and how hard they hold
//! out for locality:
//!
//! * **FIFO** serves jobs strictly in arrival order, preferring a
//!   node-local task *within the head job* (Hadoop's classic behaviour).
//!   With three replicas and many concurrent jobs the head job rarely
//!   has a local block on the offered node, so locality suffers — which
//!   is exactly why ERMS's extra replicas help FIFO so much in Fig. 3.
//! * **Fair** picks the job with the fewest running tasks (equal shares)
//!   and applies **delay scheduling**: a job without a local task on the
//!   offered node passes up to `max_delay_rounds` slot offers before it
//!   accepts a remote one.

use crate::job::JobSpec;
use hdfs_sim::{BlockId, NodeId};

/// One schedulable task, as shown to a scheduler.
#[derive(Debug, Clone)]
pub struct PendingTask {
    /// Index of the owning job in the runner's job table.
    pub job: usize,
    /// Index of the task within the job.
    pub task: usize,
    pub block: BlockId,
    /// Nodes currently holding a replica of `block`.
    pub holders: Vec<NodeId>,
}

impl PendingTask {
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.holders.contains(&node)
    }
}

/// Scheduler interface. `running_per_job[j]` counts running tasks of job
/// `j`; jobs not yet submitted have no pending tasks.
pub trait TaskScheduler {
    /// Pick the index (into `pending`) of the task to run on `node`, or
    /// `None` to leave the slot idle this round.
    fn pick(
        &mut self,
        node: NodeId,
        pending: &[PendingTask],
        running_per_job: &[usize],
    ) -> Option<usize>;

    /// Called when a job is submitted (for per-job scheduler state).
    fn on_job_submitted(&mut self, job: usize, spec: &JobSpec) {
        let _ = (job, spec);
    }

    fn name(&self) -> &'static str;
}

/// Strict job-arrival-order scheduling.
#[derive(Debug, Default)]
pub struct FifoScheduler;

impl TaskScheduler for FifoScheduler {
    fn pick(
        &mut self,
        node: NodeId,
        pending: &[PendingTask],
        _running_per_job: &[usize],
    ) -> Option<usize> {
        // head job = smallest job index with a pending task
        let head = pending.iter().map(|t| t.job).min()?;
        // prefer a node-local task of the head job
        if let Some(i) = pending
            .iter()
            .position(|t| t.job == head && t.is_local_to(node))
        {
            return Some(i);
        }
        pending.iter().position(|t| t.job == head)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Fair sharing with delay scheduling.
#[derive(Debug)]
pub struct FairScheduler {
    max_delay_rounds: u32,
    /// Per-job count of consecutive slot offers declined for locality.
    skips: Vec<u32>,
}

impl FairScheduler {
    pub fn new(max_delay_rounds: u32) -> Self {
        FairScheduler {
            max_delay_rounds,
            skips: Vec::new(),
        }
    }
}

impl Default for FairScheduler {
    fn default() -> Self {
        // a few rounds of patience, as in the delay-scheduling paper
        FairScheduler::new(3)
    }
}

impl TaskScheduler for FairScheduler {
    fn pick(
        &mut self,
        node: NodeId,
        pending: &[PendingTask],
        running_per_job: &[usize],
    ) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        // jobs with pending work, most-starved (fewest running) first
        let mut jobs: Vec<usize> = pending.iter().map(|t| t.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        jobs.sort_by_key(|&j| (running_per_job.get(j).copied().unwrap_or(0), j));

        for &j in &jobs {
            if self.skips.len() <= j {
                self.skips.resize(j + 1, 0);
            }
            // local task for this job on the offered node?
            if let Some(i) = pending
                .iter()
                .position(|t| t.job == j && t.is_local_to(node))
            {
                self.skips[j] = 0;
                return Some(i);
            }
            if self.skips[j] < self.max_delay_rounds {
                // hold out for locality; let a lower-share job try
                self.skips[j] += 1;
                continue;
            }
            // patience exhausted: take a remote task
            let i = pending
                .iter()
                .position(|t| t.job == j)
                .expect("job has pending");
            self.skips[j] = 0;
            return Some(i);
        }
        // every job is waiting out its delay — leave the slot idle
        None
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(job: usize, task_idx: usize, block: u64, holders: &[u32]) -> PendingTask {
        PendingTask {
            job,
            task: task_idx,
            block: BlockId(block),
            holders: holders.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn fifo_serves_head_job_first() {
        let mut s = FifoScheduler;
        let pending = vec![
            task(1, 0, 10, &[5]),
            task(0, 0, 20, &[7]),
            task(0, 1, 21, &[3]),
        ];
        // node 3 holds job0/task1's block → local pick within head job
        assert_eq!(s.pick(NodeId(3), &pending, &[0, 0]), Some(2));
        // node 9 holds nothing → first task of head job
        assert_eq!(s.pick(NodeId(9), &pending, &[0, 0]), Some(1));
    }

    #[test]
    fn fifo_ignores_later_jobs_even_for_locality() {
        let mut s = FifoScheduler;
        let pending = vec![task(0, 0, 20, &[7]), task(1, 0, 10, &[5])];
        // node 5 is local for job 1, but FIFO still picks job 0
        assert_eq!(s.pick(NodeId(5), &pending, &[0, 0]), Some(0));
    }

    #[test]
    fn fifo_empty_pending() {
        let mut s = FifoScheduler;
        assert_eq!(s.pick(NodeId(0), &[], &[]), None);
    }

    #[test]
    fn fair_prefers_starved_job() {
        let mut s = FairScheduler::new(0); // no delay: pure fair share
        let pending = vec![task(0, 0, 1, &[9]), task(1, 0, 2, &[9])];
        // job 0 has 5 running, job 1 has 1 → job 1 gets the slot
        assert_eq!(s.pick(NodeId(9), &pending, &[5, 1]), Some(1));
    }

    #[test]
    fn fair_delay_holds_out_for_locality() {
        let mut s = FairScheduler::new(2);
        let pending = vec![task(0, 0, 1, &[4])];
        // offers on a non-local node: skipped twice, accepted the third time
        assert_eq!(s.pick(NodeId(0), &pending, &[0]), None);
        assert_eq!(s.pick(NodeId(0), &pending, &[0]), None);
        assert_eq!(s.pick(NodeId(0), &pending, &[0]), Some(0));
    }

    #[test]
    fn fair_local_offer_resets_patience() {
        let mut s = FairScheduler::new(2);
        let pending = vec![task(0, 0, 1, &[4]), task(0, 1, 2, &[4])];
        assert_eq!(s.pick(NodeId(0), &pending, &[0]), None, "skip 1");
        // a local offer arrives: accepted, patience reset
        assert_eq!(s.pick(NodeId(4), &pending, &[0]), Some(0));
        assert_eq!(
            s.pick(NodeId(0), &pending[1..], &[1]),
            None,
            "skip count restarted"
        );
    }

    #[test]
    fn fair_falls_through_to_next_job_while_delaying() {
        let mut s = FairScheduler::new(5);
        let pending = vec![
            task(0, 0, 1, &[4]), // starved job, not local to node 7
            task(1, 0, 2, &[7]), // less starved job, local to node 7
        ];
        // job 0 delays; job 1 has a local task → job 1 runs
        assert_eq!(s.pick(NodeId(7), &pending, &[0, 0]), Some(1));
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(FifoScheduler.name(), "fifo");
        assert_eq!(FairScheduler::default().name(), "fair");
    }
}
