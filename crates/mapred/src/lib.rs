//! `mapred` — a MapReduce execution model over the HDFS simulator.
//!
//! Figure 3 of the paper replays a SWIM-synthesised Facebook trace under
//! the FIFO and Fair schedulers and measures how ERMS's extra replicas
//! change read throughput and **data locality**. That requires modelling
//! the part of Hadoop that decides *where map tasks run*:
//!
//! * [`job`] — jobs, map tasks bound to input blocks, per-task compute
//!   cost, job lifecycle stats;
//! * [`scheduler`] — the [`scheduler::TaskScheduler`] trait with the two
//!   policies the paper evaluates: strict-FIFO (locality-aware only
//!   within the head job) and Fair with **delay scheduling** ("the Fair
//!   scheduler is able to increase data locality at the cost of a small
//!   delay for tasks");
//! * [`runner`] — the tasktracker/slot model that drives a
//!   [`hdfs_sim::ClusterSim`]: each assigned mapper opens its block on
//!   the simulated cluster, computes for a configurable time and frees
//!   its slot; the runner also hosts the periodic controller hook the
//!   ERMS manager ticks from.

pub mod job;
pub mod runner;
pub mod scheduler;

pub use job::{JobSpec, JobStats};
pub use runner::{ControllerHook, MapReduceRunner, RunnerConfig};
pub use scheduler::{FairScheduler, FifoScheduler, PendingTask, TaskScheduler};
