//! Job and task model.

use hdfs_sim::BlockId;
use simcore::units::Bytes;
use simcore::{SimDuration, SimTime};

/// A MapReduce job as submitted: which file it scans and how much
/// compute each mapper burns after reading its block.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub name: String,
    /// Input file path in the simulated HDFS namespace.
    pub input: String,
    /// Submission time relative to the replay start.
    pub submit_at: SimTime,
    /// CPU time per map task after its block is read.
    pub compute_per_block: SimDuration,
    /// Shuffle+reduce time after the last mapper finishes.
    pub reduce_duration: SimDuration,
}

/// Task lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    Pending,
    Reading,
    Computing,
    Done,
}

#[derive(Debug, Clone)]
pub(crate) struct MapTask {
    pub block: BlockId,
    pub state: TaskState,
    /// Whether the tracker it ran on held the block (node-local).
    pub node_local: Option<bool>,
}

/// Job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Not yet submitted (arrival timer pending).
    Future,
    /// Maps pending/running.
    Mapping,
    /// All maps done, reduce running.
    Reducing,
    Done,
}

/// Final per-job accounting.
#[derive(Debug, Clone)]
pub struct JobStats {
    pub name: String,
    pub input: String,
    pub submitted: SimTime,
    pub finished: SimTime,
    pub map_tasks: u32,
    pub node_local_tasks: u32,
    pub bytes_read: Bytes,
    /// Sum over map tasks of their block read durations.
    pub total_read_secs: f64,
}

impl JobStats {
    pub fn duration_secs(&self) -> f64 {
        (self.finished - self.submitted).as_secs_f64()
    }
    /// Fraction of map tasks that ran on a node holding their block.
    pub fn locality(&self) -> f64 {
        if self.map_tasks == 0 {
            0.0
        } else {
            self.node_local_tasks as f64 / self.map_tasks as f64
        }
    }
    /// Mean per-task read throughput in MB/s.
    pub fn read_throughput_mb_s(&self) -> f64 {
        if self.total_read_secs <= 0.0 {
            0.0
        } else {
            self.bytes_read as f64 / (1 << 20) as f64 / self.total_read_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_derivations() {
        let s = JobStats {
            name: "j".into(),
            input: "/f".into(),
            submitted: SimTime::from_secs(10),
            finished: SimTime::from_secs(70),
            map_tasks: 8,
            node_local_tasks: 6,
            bytes_read: 512 << 20,
            total_read_secs: 16.0,
        };
        assert_eq!(s.duration_secs(), 60.0);
        assert!((s.locality() - 0.75).abs() < 1e-12);
        assert!((s.read_throughput_mb_s() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn empty_job_locality_is_zero() {
        let s = JobStats {
            name: "j".into(),
            input: "/f".into(),
            submitted: SimTime::ZERO,
            finished: SimTime::ZERO,
            map_tasks: 0,
            node_local_tasks: 0,
            bytes_read: 0,
            total_read_secs: 0.0,
        };
        assert_eq!(s.locality(), 0.0);
        assert_eq!(s.read_throughput_mb_s(), 0.0);
    }
}
