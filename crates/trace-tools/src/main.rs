//! `trace-tools` — analyze telemetry traces from the ERMS simulator.
//!
//! ```text
//! trace-tools summary <trace.jsonl>
//! trace-tools check   <trace.jsonl> [--default-replication N]
//!                                   [--max-replication N]
//!                                   [--parities-per-stripe N]
//! trace-tools diff    <a.jsonl> <b.jsonl>
//! ```
//!
//! Exit codes: `0` clean / identical, `1` invariant violations found or
//! traces differ, `2` usage, I/O or parse error — so CI can gate a
//! build on `trace-tools check`.

use std::process::ExitCode;
use trace_tools::{check, diff, summarize, OracleConfig};

const USAGE: &str = "usage:
  trace-tools summary <trace.jsonl>
  trace-tools check   <trace.jsonl> [--default-replication N] [--max-replication N] [--parities-per-stripe N]
  trace-tools diff    <a.jsonl> <b.jsonl>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace-tools: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<u32>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    raw.parse::<u32>()
        .map(Some)
        .map_err(|_| format!("{flag} value '{raw}' is not a u32"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        return fail("missing mode");
    };
    args.remove(0);
    match mode.as_str() {
        "summary" => {
            let [path] = args.as_slice() else {
                return fail("summary takes exactly one trace file");
            };
            match read(path).and_then(|t| summarize(&t).map_err(|e| e.to_string())) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "check" => {
            let mut cfg = OracleConfig::default();
            let parsed = (|| -> Result<(), String> {
                if let Some(v) = flag_value(&mut args, "--default-replication")? {
                    cfg.default_replication = v;
                }
                if let Some(v) = flag_value(&mut args, "--max-replication")? {
                    cfg.max_replication = v;
                }
                if let Some(v) = flag_value(&mut args, "--parities-per-stripe")? {
                    cfg.parities_per_stripe = v;
                }
                Ok(())
            })();
            if let Err(e) = parsed {
                return fail(&e);
            }
            let [path] = args.as_slice() else {
                return fail("check takes exactly one trace file");
            };
            match read(path).and_then(|t| check(&t, cfg).map_err(|e| e.to_string())) {
                Ok((text, violations)) => {
                    print!("{text}");
                    if violations.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let [a, b] = args.as_slice() else {
                return fail("diff takes exactly two trace files");
            };
            let loaded = read(a).and_then(|ta| read(b).map(|tb| (ta, tb)));
            match loaded.and_then(|(ta, tb)| diff(&ta, &tb).map_err(|e| e.to_string())) {
                Ok((text, differs)) => {
                    print!("{text}");
                    if differs {
                        ExitCode::from(1)
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => fail(&e),
            }
        }
        other => fail(&format!("unknown mode '{other}'")),
    }
}
