//! `trace-tools` — analyze telemetry traces from the ERMS simulator.
//!
//! ```text
//! trace-tools summary <trace.jsonl> [--strict]
//! trace-tools check   <trace.jsonl> [--default-replication N]
//!                                   [--max-replication N]
//!                                   [--parities-per-stripe N]
//!                                   [--strict]
//! trace-tools diff    <a.jsonl> <b.jsonl>
//! trace-tools profile <profile.json>
//! trace-tools regress <baseline.json> <candidate.json> [--tolerance-pct N]
//! trace-tools checkpoint save   --scenario <name> --seed <n> --at-tick <t>
//!                               --out <snap.json> [--trace <prefix.jsonl>]
//! trace-tools checkpoint resume --snapshot <snap.json>
//!                               [--trace <suffix.jsonl>] [--restart]
//! trace-tools checkpoint info   --snapshot <snap.json>
//! ```
//!
//! Exit codes: `0` clean / identical / success, `1` invariant violations
//! found, traces differ, skipped lines under `--strict`, or SLO/
//! regression findings, `2` usage, I/O or parse error (including a
//! snapshot whose format version this build does not speak) — so CI can
//! gate a build on `trace-tools check` or `trace-tools regress`.

use bench::checkpointing::{ResumableRun, Scenario};
use checkpoint::Snapshot;
use std::process::ExitCode;
use trace_tools::{check_lenient, diff, regress, render_profile, summarize_lenient, OracleConfig};

const USAGE: &str = "usage:
  trace-tools summary <trace.jsonl> [--strict]
  trace-tools check   <trace.jsonl> [--default-replication N] [--max-replication N] [--parities-per-stripe N] [--strict]
  trace-tools diff    <a.jsonl> <b.jsonl>
  trace-tools profile <profile.json>
  trace-tools regress <baseline.json> <candidate.json> [--tolerance-pct N]
  trace-tools checkpoint save   --scenario <name> --seed <n> --at-tick <t> --out <snap.json> [--trace <prefix.jsonl>]
  trace-tools checkpoint resume --snapshot <snap.json> [--trace <suffix.jsonl>] [--restart]
  trace-tools checkpoint info   --snapshot <snap.json>

exit codes:
  0  clean / identical / success
  1  invariant violations found, traces differ, skipped lines under --strict, or regression findings
  2  usage, I/O or parse error (incl. unsupported snapshot version)";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace-tools: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<u32>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    raw.parse::<u32>()
        .map(Some)
        .map_err(|_| format!("{flag} value '{raw}' is not a u32"))
}

fn str_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(v))
}

fn u64_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    match str_flag(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("{flag} value '{raw}' is not a u64")),
    }
}

fn f64_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<f64>, String> {
    match str_flag(args, flag)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<f64>()
            .map(Some)
            .map_err(|_| format!("{flag} value '{raw}' is not a number")),
    }
}

fn bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn write_out(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
}

fn checkpoint_save(mut args: Vec<String>) -> ExitCode {
    let parsed = (|| -> Result<_, String> {
        let scenario = str_flag(&mut args, "--scenario")?.ok_or("save needs --scenario")?;
        let seed = u64_flag(&mut args, "--seed")?.unwrap_or(42);
        let at_tick = u64_flag(&mut args, "--at-tick")?.ok_or("save needs --at-tick")?;
        let out = str_flag(&mut args, "--out")?.ok_or("save needs --out")?;
        let trace = str_flag(&mut args, "--trace")?;
        if !args.is_empty() {
            return Err(format!("unexpected arguments {args:?}"));
        }
        Ok((scenario, seed, at_tick, out, trace))
    })();
    let (scenario, seed, at_tick, out, trace) = match parsed {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(scenario) = Scenario::by_name(&scenario) else {
        return fail(&format!(
            "unknown scenario {scenario:?} (one of: {})",
            Scenario::names().join(", ")
        ));
    };
    let mut run = ResumableRun::new(scenario, seed);
    run.run_to_tick(at_tick);
    let prefix = run.drain_trace();
    let snap = run.save();
    if let Err(e) = snap.write_file(&out) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    if let Some(path) = trace {
        if let Err(e) = write_out(&path, &prefix) {
            return fail(&e);
        }
    }
    println!(
        "saved {out}: scenario={} seed={seed} tick={}",
        snap.meta.scenario, snap.meta.tick
    );
    ExitCode::SUCCESS
}

fn checkpoint_resume(mut args: Vec<String>) -> ExitCode {
    let restart = bool_flag(&mut args, "--restart");
    let parsed = (|| -> Result<_, String> {
        let snapshot = str_flag(&mut args, "--snapshot")?.ok_or("resume needs --snapshot")?;
        let trace = str_flag(&mut args, "--trace")?;
        if !args.is_empty() {
            return Err(format!("unexpected arguments {args:?}"));
        }
        Ok((snapshot, trace))
    })();
    let (snapshot, trace) = match parsed {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let snap = match Snapshot::read_file(&snapshot) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot load {snapshot}: {e}")),
    };
    let resumed = if restart {
        ResumableRun::crash_restart(&snap).map(|(run, recovered)| {
            println!("crash-restart recovered {recovered} in-flight task(s)");
            run
        })
    } else {
        ResumableRun::resume(&snap)
    };
    let mut run = match resumed {
        Ok(r) => r,
        Err(e) => return fail(&format!("cannot resume {snapshot}: {e}")),
    };
    run.finish();
    let suffix = run.drain_trace();
    if let Some(path) = trace {
        if let Err(e) = write_out(&path, &suffix) {
            return fail(&e);
        }
    }
    println!(
        "resumed {snapshot} at tick {} and ran to tick {} ({} trace lines)",
        snap.meta.tick,
        run.tick_idx(),
        suffix.lines().count()
    );
    ExitCode::SUCCESS
}

fn checkpoint_info(mut args: Vec<String>) -> ExitCode {
    let parsed = (|| -> Result<_, String> {
        let snapshot = str_flag(&mut args, "--snapshot")?.ok_or("info needs --snapshot")?;
        if !args.is_empty() {
            return Err(format!("unexpected arguments {args:?}"));
        }
        Ok(snapshot)
    })();
    let snapshot = match parsed {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let snap = match Snapshot::read_file(&snapshot) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot load {snapshot}: {e}")),
    };
    let sections: Vec<&str> = snap.section_names().collect();
    println!(
        "snapshot v{}: scenario={} seed={} tick={}",
        snap.version, snap.meta.scenario, snap.meta.seed, snap.meta.tick
    );
    println!("sections: {}", sections.join(", "));
    println!("bytes: {}", snap.to_json().len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        return fail("missing mode");
    };
    args.remove(0);
    match mode.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "summary" => {
            let strict = bool_flag(&mut args, "--strict");
            let [path] = args.as_slice() else {
                return fail("summary takes exactly one trace file");
            };
            match read(path).and_then(|t| summarize_lenient(&t).map_err(|e| e.to_string())) {
                Ok((text, skipped)) => {
                    print!("{text}");
                    if strict && skipped > 0 {
                        eprintln!("trace-tools: --strict: {skipped} skipped line(s)");
                        ExitCode::from(1)
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "check" => {
            let strict = bool_flag(&mut args, "--strict");
            let mut cfg = OracleConfig::default();
            let parsed = (|| -> Result<(), String> {
                if let Some(v) = flag_value(&mut args, "--default-replication")? {
                    cfg.default_replication = v;
                }
                if let Some(v) = flag_value(&mut args, "--max-replication")? {
                    cfg.max_replication = v;
                }
                if let Some(v) = flag_value(&mut args, "--parities-per-stripe")? {
                    cfg.parities_per_stripe = v;
                }
                Ok(())
            })();
            if let Err(e) = parsed {
                return fail(&e);
            }
            let [path] = args.as_slice() else {
                return fail("check takes exactly one trace file");
            };
            match read(path).and_then(|t| check_lenient(&t, cfg).map_err(|e| e.to_string())) {
                Ok((text, violations, skipped)) => {
                    print!("{text}");
                    if strict && skipped > 0 {
                        eprintln!("trace-tools: --strict: {skipped} skipped line(s)");
                        ExitCode::from(1)
                    } else if violations.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let [a, b] = args.as_slice() else {
                return fail("diff takes exactly two trace files");
            };
            let loaded = read(a).and_then(|ta| read(b).map(|tb| (ta, tb)));
            match loaded.and_then(|(ta, tb)| diff(&ta, &tb).map_err(|e| e.to_string())) {
                Ok((text, differs)) => {
                    print!("{text}");
                    if differs {
                        ExitCode::from(1)
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "profile" => {
            let [path] = args.as_slice() else {
                return fail("profile takes exactly one profile.json file");
            };
            match read(path).and_then(|t| render_profile(&t)) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "regress" => {
            let tolerance = match f64_flag(&mut args, "--tolerance-pct") {
                Ok(t) => t,
                Err(e) => return fail(&e),
            };
            let [baseline, candidate] = args.as_slice() else {
                return fail("regress takes a baseline file and a candidate file");
            };
            let loaded = read(baseline).and_then(|b| read(candidate).map(|c| (b, c)));
            match loaded.and_then(|(b, c)| regress(&b, &c, tolerance)) {
                Ok((text, findings)) => {
                    print!("{text}");
                    if findings.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "checkpoint" => {
            if args.is_empty() {
                return fail("checkpoint needs a subcommand (save|resume|info)");
            }
            let sub = args.remove(0);
            match sub.as_str() {
                "save" => checkpoint_save(args),
                "resume" => checkpoint_resume(args),
                "info" => checkpoint_info(args),
                other => fail(&format!("unknown checkpoint subcommand '{other}'")),
            }
        }
        other => fail(&format!("unknown mode '{other}'")),
    }
}
