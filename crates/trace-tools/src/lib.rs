//! Offline analysis of telemetry traces: `summary`, `check`, `diff`,
//! `profile`, `regress`.
//!
//! The heavy lifting (JSONL decoding, span reconstruction, the
//! invariant oracle) lives in [`simcore::spans`]; this crate renders
//! those structures as deterministic, human-readable reports and wraps
//! them in the `trace-tools` CLI. Every report is a pure function of
//! the input trace bytes — two same-seed runs render byte-identical
//! text, so reports diff cleanly across commits.
//!
//! * [`summarize`] — per-event-kind counts, span counts with
//!   p50/p95/p99 latencies, and an ASCII timeline of data-class
//!   transitions for the hottest files.
//! * [`check`] — run the [`TraceOracle`] over the trace; violations are
//!   listed with their `seq` anchors.
//! * [`diff`] — compare two traces structurally (event counts and span
//!   latency summaries), e.g. two different-seed runs of one scenario.
//! * [`render_profile`] — flame-style text tree for a `profile.json`
//!   written by the [`simcore::profiler`].
//! * [`regress`] — compare a scorecard against a checked-in SLO
//!   baseline: budgets are hard ceilings/floors, deterministic metrics
//!   must match exactly, wall-clock metrics get a percentage tolerance.

use std::fmt::Write as _;

pub use simcore::spans::oracle::{OracleConfig, TraceOracle, Violation};
pub use simcore::spans::{
    parse_jsonl, parse_jsonl_lenient, ParseError, SkippedLine, SpanCollector, SpanKind, SpanReport,
};

/// Render the "skipped N unknown-kind line(s)" warning, or nothing when
/// the whole trace decoded. Forward compatibility: a trace written by a
/// newer emitter must still summarize/check on the kinds we do know.
fn skip_warning(skipped: &[SkippedLine]) -> String {
    if skipped.is_empty() {
        return String::new();
    }
    let mut kinds: Vec<&str> = skipped.iter().map(|s| s.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    format!(
        "warning: skipped {} unknown-kind line(s) ({})\n",
        skipped.len(),
        kinds.join(", ")
    )
}

/// Render the summary report for one JSONL trace. Unknown event kinds
/// are skipped with a warning, not a hard error.
pub fn summarize(trace: &str) -> Result<String, ParseError> {
    summarize_lenient(trace).map(|(text, _)| text)
}

/// [`summarize`] plus the number of unknown-kind lines skipped, so
/// callers (the CLI's `--strict` flag) can turn skips into a failure.
pub fn summarize_lenient(trace: &str) -> Result<(String, usize), ParseError> {
    let (events, skipped) = parse_jsonl_lenient(trace)?;
    let report = SpanCollector::collect(&events);
    let mut out = skip_warning(&skipped);
    let _ = writeln!(
        out,
        "trace: {} events over {:.3} s (t = {:.3} s .. {:.3} s)",
        report.events,
        report.last.since(report.first).as_secs_f64(),
        report.first.as_secs_f64(),
        report.last.as_secs_f64(),
    );

    let _ = writeln!(out, "\nevents by kind");
    if report.event_counts.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for (kind, count) in &report.event_counts {
        let _ = writeln!(out, "  {kind:<24} {count:>8}");
    }

    let _ = writeln!(
        out,
        "\nspans (completed; seconds, nearest-rank percentiles)"
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "kind", "count", "failed", "open", "p50", "p95", "p99", "max"
    );
    for kind in SpanKind::ALL {
        let lat = report.latency(kind);
        let open = report.open.iter().filter(|s| s.kind == kind).count();
        let cell = |v: f64| -> String {
            if lat.count == 0 {
                "-".into()
            } else {
                format!("{v:.3}")
            }
        };
        let _ = writeln!(
            out,
            "  {:<8} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
            kind.label(),
            lat.count,
            lat.failed,
            open,
            cell(lat.p50),
            cell(lat.p95),
            cell(lat.p99),
            cell(lat.max),
        );
    }

    let hottest = report.hottest_files(5);
    let _ = writeln!(
        out,
        "\ndata-class timeline (top {} files by transitions)",
        hottest.len()
    );
    if hottest.is_empty() {
        let _ = writeln!(out, "  (no verdicts in trace)");
    }
    for (path, timeline) in hottest {
        let line = timeline
            .iter()
            .map(|(at, class)| format!("{class}@{:.0}s", at.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(out, "  {path:<24} {line}");
    }
    Ok((out, skipped.len()))
}

/// Run the invariant oracle over a trace. Returns the rendered report
/// plus the violations themselves (empty means the trace is clean).
/// Unknown event kinds are skipped with a warning, not a hard error.
pub fn check(trace: &str, cfg: OracleConfig) -> Result<(String, Vec<Violation>), ParseError> {
    check_lenient(trace, cfg).map(|(text, violations, _)| (text, violations))
}

/// [`check`] plus the number of unknown-kind lines skipped, so callers
/// (the CLI's `--strict` flag) can turn skips into a failure.
pub fn check_lenient(
    trace: &str,
    cfg: OracleConfig,
) -> Result<(String, Vec<Violation>, usize), ParseError> {
    let (events, skipped) = parse_jsonl_lenient(trace)?;
    let violations = TraceOracle::check(&events, cfg);
    let mut out = skip_warning(&skipped);
    if violations.is_empty() {
        let _ = writeln!(out, "checked {} events: OK (0 violations)", events.len());
    } else {
        let _ = writeln!(
            out,
            "checked {} events: {} violation{}",
            events.len(),
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
        for v in &violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    Ok((out, violations, skipped.len()))
}

/// Structurally compare two traces. Returns the rendered report and
/// whether they differ (event-kind counts or span latency summaries).
pub fn diff(a: &str, b: &str) -> Result<(String, bool), ParseError> {
    let ra = SpanCollector::collect(&parse_jsonl(a)?);
    let rb = SpanCollector::collect(&parse_jsonl(b)?);
    let mut out = String::new();
    let mut differs = false;

    let _ = writeln!(out, "events: A={} B={}", ra.events, rb.events);
    let kinds: std::collections::BTreeSet<&str> = ra
        .event_counts
        .keys()
        .chain(rb.event_counts.keys())
        .copied()
        .collect();
    let mut changed = 0usize;
    for kind in kinds {
        let ca = ra.event_counts.get(kind).copied().unwrap_or(0);
        let cb = rb.event_counts.get(kind).copied().unwrap_or(0);
        if ca != cb {
            changed += 1;
            differs = true;
            let _ = writeln!(
                out,
                "  {kind:<24} A={ca:<8} B={cb:<8} ({:+})",
                cb as i64 - ca as i64
            );
        }
    }
    if changed == 0 {
        let _ = writeln!(out, "  event counts identical across every kind");
    }

    let _ = writeln!(out, "span latency (count, p50/p95/p99 s)");
    for kind in SpanKind::ALL {
        let la = ra.latency(kind);
        let lb = rb.latency(kind);
        if la != lb {
            differs = true;
        }
        let _ = writeln!(
            out,
            "  {:<8} A: {:>5} {:.3}/{:.3}/{:.3}   B: {:>5} {:.3}/{:.3}/{:.3}{}",
            kind.label(),
            la.count,
            la.p50,
            la.p95,
            la.p99,
            lb.count,
            lb.p50,
            lb.p95,
            lb.p99,
            if la == lb { "" } else { "   <- differs" },
        );
    }
    let _ = writeln!(
        out,
        "verdict: traces are {}",
        if differs {
            "DIFFERENT"
        } else {
            "structurally identical"
        }
    );
    Ok((out, differs))
}

// ---------------------------------------------------------------- profile

/// Reconstruct a [`ProfileNode`](simcore::profiler::ProfileNode) tree
/// from the generic JSON value of a `profile.json`.
pub fn profile_from_value(v: &serde::Value) -> Result<simcore::profiler::ProfileNode, String> {
    let name = v
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or("profile node missing \"name\"")?
        .to_string();
    let num = |key: &str| -> Result<u64, String> {
        match v.get(key) {
            None => Err(format!("profile node {name:?} missing {key:?}")),
            Some(n) => as_f64(n)
                .map(|x| x as u64)
                .ok_or_else(|| format!("profile node {name:?} field {key:?} is not a number")),
        }
    };
    let (calls, wall_ns, max_ns, alloc) = (
        num("calls")?,
        num("wall_ns")?,
        num("max_ns")?,
        num("alloc")?,
    );
    let mut node = simcore::profiler::ProfileNode {
        name,
        calls,
        wall_ns,
        max_ns,
        alloc,
        children: Vec::new(),
    };
    if let Some(children) = v.get("children").and_then(|c| c.as_seq()) {
        for child in children {
            node.children.push(profile_from_value(child)?);
        }
    }
    Ok(node)
}

/// Render a `profile.json` (as written by `bench scorecard` or
/// [`simcore::profiler::ProfileNode::to_json`]) as the flame-style text
/// tree.
pub fn render_profile(json: &str) -> Result<String, String> {
    let value = serde_json::parse_value(json).map_err(|e| format!("profile parse error: {e}"))?;
    let root = profile_from_value(&value)?;
    Ok(simcore::profiler::render_text(&root))
}

// ---------------------------------------------------------------- regress

/// One SLO/regression finding; `regress` fails when any exist.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressFinding {
    pub scenario: String,
    pub metric: String,
    pub detail: String,
}

fn as_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::U64(n) => Some(*n as f64),
        serde::Value::I64(n) => Some(*n as f64),
        serde::Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn num_map<'a>(v: &'a serde::Value, key: &str) -> Vec<(&'a str, f64)> {
    v.get(key)
        .and_then(|m| m.as_map())
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, val)| as_f64(val).map(|x| (k.as_str(), x)))
                .collect()
        })
        .unwrap_or_default()
}

fn scenarios_by_name(doc: &serde::Value) -> Vec<(&str, &serde::Value)> {
    doc.get("scenarios")
        .and_then(|s| s.as_seq())
        .map(|seq| {
            seq.iter()
                .filter_map(|s| s.get("name").and_then(|n| n.as_str()).map(|n| (n, s)))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare a candidate `SCORECARD.json` against an SLO baseline.
///
/// Three classes of findings, all fatal:
///
/// * **budget** — the baseline's per-scenario `budgets` entries are
///   hard `max`/`min` bounds on candidate metrics, independent of what
///   the baseline itself measured.
/// * **deterministic** — metrics under a scenario's `deterministic` map
///   are pure functions of the seed (sim-time latencies, violation
///   counts, energy integrals) and must match the baseline **exactly**;
///   any drift means behaviour changed.
/// * **wallclock** — metrics under `wallclock` are host-dependent
///   timings; the candidate may be worse than baseline by up to
///   `tolerance_pct` percent (metrics named `*_per_sec` count as
///   higher-is-better, everything else as lower-is-better). Metrics
///   named `max_*` are single-observation extremes — one scheduler
///   hiccup moves them an order of magnitude, so they are recorded but
///   never gated; bound them with a budget if a hard ceiling is wanted.
///
/// `tolerance_pct` falls back to the baseline's
/// `wallclock_tolerance_pct` (default 100). Returns the rendered report
/// and the findings; scenarios present only in the candidate are noted
/// but never fatal, scenarios missing from the candidate are.
pub fn regress(
    baseline_json: &str,
    candidate_json: &str,
    tolerance_pct: Option<f64>,
) -> Result<(String, Vec<RegressFinding>), String> {
    let baseline =
        serde_json::parse_value(baseline_json).map_err(|e| format!("baseline parse error: {e}"))?;
    let candidate = serde_json::parse_value(candidate_json)
        .map_err(|e| format!("candidate parse error: {e}"))?;
    let tolerance = tolerance_pct
        .or_else(|| baseline.get("wallclock_tolerance_pct").and_then(as_f64))
        .unwrap_or(100.0);
    if !(0.0..=1e6).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} out of range"));
    }
    let factor = 1.0 + tolerance / 100.0;

    let mut out = String::new();
    let mut findings = Vec::new();
    let cand_scenarios = scenarios_by_name(&candidate);
    let base_scenarios = scenarios_by_name(&baseline);
    let _ = writeln!(
        out,
        "regress: {} baseline scenario(s), wall-clock tolerance {tolerance}%",
        base_scenarios.len()
    );

    for (name, base) in &base_scenarios {
        let Some((_, cand)) = cand_scenarios.iter().find(|(n, _)| n == name) else {
            findings.push(RegressFinding {
                scenario: name.to_string(),
                metric: "<scenario>".into(),
                detail: "missing from candidate".into(),
            });
            let _ = writeln!(out, "  {name}: MISSING from candidate");
            continue;
        };
        let mut scenario_findings = 0usize;

        // budgets: hard bounds on the candidate
        if let Some(budgets) = base.get("budgets").and_then(|b| b.as_seq()) {
            let cand_det = num_map(cand, "deterministic");
            let cand_wall = num_map(cand, "wallclock");
            let lookup = |metric: &str| -> Option<f64> {
                cand_det
                    .iter()
                    .chain(cand_wall.iter())
                    .find(|(k, _)| *k == metric)
                    .map(|(_, v)| *v)
            };
            for budget in budgets {
                let Some(metric) = budget.get("metric").and_then(|m| m.as_str()) else {
                    continue;
                };
                let Some(value) = lookup(metric) else {
                    findings.push(RegressFinding {
                        scenario: name.to_string(),
                        metric: metric.to_string(),
                        detail: "budgeted metric missing from candidate".into(),
                    });
                    scenario_findings += 1;
                    continue;
                };
                if let Some(max) = budget.get("max").and_then(as_f64) {
                    if value > max {
                        findings.push(RegressFinding {
                            scenario: name.to_string(),
                            metric: metric.to_string(),
                            detail: format!("budget violation: {value} > max {max}"),
                        });
                        scenario_findings += 1;
                    }
                }
                if let Some(min) = budget.get("min").and_then(as_f64) {
                    if value < min {
                        findings.push(RegressFinding {
                            scenario: name.to_string(),
                            metric: metric.to_string(),
                            detail: format!("budget violation: {value} < min {min}"),
                        });
                        scenario_findings += 1;
                    }
                }
            }
        }

        // deterministic metrics: exact match required
        let cand_det = num_map(cand, "deterministic");
        for (metric, base_v) in num_map(base, "deterministic") {
            match cand_det.iter().find(|(k, _)| *k == metric) {
                None => {
                    findings.push(RegressFinding {
                        scenario: name.to_string(),
                        metric: metric.to_string(),
                        detail: "deterministic metric missing from candidate".into(),
                    });
                    scenario_findings += 1;
                }
                Some((_, cand_v)) if *cand_v != base_v => {
                    findings.push(RegressFinding {
                        scenario: name.to_string(),
                        metric: metric.to_string(),
                        detail: format!(
                            "deterministic drift: baseline {base_v}, candidate {cand_v}"
                        ),
                    });
                    scenario_findings += 1;
                }
                Some(_) => {}
            }
        }

        // wall-clock metrics: tolerated worsening
        let cand_wall = num_map(cand, "wallclock");
        for (metric, base_v) in num_map(base, "wallclock") {
            let Some((_, cand_v)) = cand_wall.iter().find(|(k, _)| *k == metric) else {
                findings.push(RegressFinding {
                    scenario: name.to_string(),
                    metric: metric.to_string(),
                    detail: "wall-clock metric missing from candidate".into(),
                });
                scenario_findings += 1;
                continue;
            };
            if metric.starts_with("max_") {
                // single-observation extremes (max_tick_ms): any one
                // descheduled tick moves them past any sane tolerance,
                // so they inform but never gate — budgets still apply
                continue;
            }
            let higher_is_better = metric.ends_with("_per_sec");
            let regressed = if base_v <= 0.0 {
                false // nothing meaningful to compare against
            } else if higher_is_better {
                *cand_v * factor < base_v
            } else {
                *cand_v > base_v * factor
            };
            if regressed {
                findings.push(RegressFinding {
                    scenario: name.to_string(),
                    metric: metric.to_string(),
                    detail: format!(
                        "wall-clock regression beyond {tolerance}%: baseline {base_v}, candidate {cand_v}"
                    ),
                });
                scenario_findings += 1;
            }
        }

        if scenario_findings == 0 {
            let _ = writeln!(out, "  {name}: OK");
        } else {
            let _ = writeln!(out, "  {name}: {scenario_findings} finding(s)");
        }
    }

    for (name, _) in &cand_scenarios {
        if !base_scenarios.iter().any(|(n, _)| n == name) {
            let _ = writeln!(out, "  {name}: new scenario (no baseline; not gated)");
        }
    }

    if findings.is_empty() {
        let _ = writeln!(out, "verdict: PASS");
    } else {
        let _ = writeln!(out, "verdict: FAIL ({} finding(s))", findings.len());
        for f in &findings {
            let _ = writeln!(out, "  {} / {}: {}", f.scenario, f.metric, f.detail);
        }
    }
    Ok((out, findings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::telemetry::{Event, TelemetrySink};
    use simcore::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A small clean causal chain: verdict → boost → task → copy.
    fn clean_trace() -> String {
        let sink = TelemetrySink::recording();
        sink.emit(
            t(0),
            Event::Verdict {
                path: "/hot".into(),
                verdict: "hot".into(),
                file_sessions: 12.0,
                max_block_sessions: 4.0,
                replicas: 3,
            },
        );
        sink.emit(
            t(0),
            Event::ReplicationBoost {
                path: "/hot".into(),
                from: 3,
                to: 6,
                sessions: 12.0,
            },
        );
        sink.emit(
            t(0),
            Event::TaskQueued {
                job: 0,
                priority: "immediate".into(),
            },
        );
        sink.emit(t(1), Event::TaskDispatched { job: 0, attempt: 1 });
        sink.emit(
            t(1),
            Event::CopyDispatched {
                copy: 0,
                block: 9,
                source: 1,
                target: 2,
            },
        );
        sink.emit(
            t(5),
            Event::CopyCompleted {
                copy: 0,
                block: 9,
                target: 2,
            },
        );
        sink.emit(t(5), Event::TaskFinished { job: 0, ok: true });
        sink.emit(
            t(60),
            Event::Verdict {
                path: "/hot".into(),
                verdict: "cooled".into(),
                file_sessions: 0.5,
                max_block_sessions: 0.2,
                replicas: 6,
            },
        );
        sink.emit(
            t(60),
            Event::ReplicationShed {
                path: "/hot".into(),
                from: 6,
                to: 3,
            },
        );
        sink.drain_jsonl()
    }

    #[test]
    fn summary_reports_counts_and_percentiles() {
        let text = summarize(&clean_trace()).unwrap();
        assert!(text.contains("trace: 9 events"), "{text}");
        assert!(text.contains("copy_completed"), "{text}");
        assert!(text.contains("verdict"), "{text}");
        // the copy span ran 4 s, the task span 5 s
        let row = |kind: &str| {
            text.lines()
                .find(|l| l.split_whitespace().next() == Some(kind))
                .unwrap_or_else(|| panic!("no {kind} row in {text}"))
                .to_string()
        };
        assert!(row("copy").contains("4.000"), "{text}");
        assert!(row("task").contains("5.000"), "{text}");
        assert!(row("episode").contains("60.000"), "{text}");
        assert!(text.contains("hot@0s -> cooled@60s"), "{text}");
        // deterministic: rendering twice is byte-identical
        assert_eq!(text, summarize(&clean_trace()).unwrap());
    }

    #[test]
    fn check_passes_clean_and_flags_dirty() {
        let (text, violations) = check(&clean_trace(), OracleConfig::default()).unwrap();
        assert!(violations.is_empty(), "{text}");
        assert!(text.contains("OK (0 violations)"));

        // corrupt the trace: complete a copy on a node the trace killed
        let sink = TelemetrySink::recording();
        sink.emit(
            t(0),
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 0,
                target: 3,
            },
        );
        sink.emit(
            t(1),
            Event::FaultApplied {
                kind: "kill".into(),
                node: Some(3),
                rack: None,
            },
        );
        sink.emit(
            t(2),
            Event::CopyCompleted {
                copy: 0,
                block: 1,
                target: 3,
            },
        );
        let (text, violations) = check(&sink.drain_jsonl(), OracleConfig::default()).unwrap();
        assert_eq!(violations.len(), 1, "{text}");
        assert_eq!(violations[0].invariant, "copy_live_node");
        assert!(text.contains("copy_live_node"), "{text}");
    }

    #[test]
    fn diff_is_quiet_on_identical_and_loud_on_different() {
        let a = clean_trace();
        let (text, differs) = diff(&a, &a).unwrap();
        assert!(!differs, "{text}");
        assert!(text.contains("structurally identical"));

        let mut b = clean_trace();
        b.push_str("{\"t_ns\":90000000000,\"seq\":9,\"ev\":\"decode_cold\",\"path\":\"/c\"}\n");
        let (text, differs) = diff(&a, &b).unwrap();
        assert!(differs, "{text}");
        assert!(text.contains("decode_cold"), "{text}");
        assert!(text.contains("DIFFERENT"), "{text}");
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(summarize("garbage\n").is_err());
        assert!(check("garbage\n", OracleConfig::default()).is_err());
        assert!(diff("garbage\n", "").is_err());
    }

    #[test]
    fn unknown_event_kinds_warn_and_skip() {
        let mut trace = clean_trace();
        trace.push_str(
            "{\"t_ns\":70000000000,\"seq\":99,\"ev\":\"quantum_flux\",\"path\":\"/hot\"}\n",
        );
        let text = summarize(&trace).unwrap();
        assert!(
            text.contains("warning: skipped 1 unknown-kind line(s) (quantum_flux)"),
            "{text}"
        );
        assert!(text.contains("trace: 9 events"), "known events intact");
        let (text, violations) = check(&trace, OracleConfig::default()).unwrap();
        assert!(violations.is_empty(), "{text}");
        assert!(text.contains("warning: skipped 1"), "{text}");
        assert!(text.contains("OK (0 violations)"), "{text}");
    }

    #[test]
    fn lenient_variants_expose_the_skip_count() {
        let mut trace = clean_trace();
        let (_, skipped) = summarize_lenient(&trace).unwrap();
        assert_eq!(skipped, 0);
        trace.push_str("{\"t_ns\":1,\"seq\":98,\"ev\":\"quantum_flux\"}\n");
        trace.push_str("{\"t_ns\":2,\"seq\":99,\"ev\":\"tachyon_burst\"}\n");
        let (_, skipped) = summarize_lenient(&trace).unwrap();
        assert_eq!(skipped, 2);
        let (_, violations, skipped) = check_lenient(&trace, OracleConfig::default()).unwrap();
        assert!(violations.is_empty());
        assert_eq!(skipped, 2);
    }

    // A minimal two-scenario scorecard document. `p99` and `violations`
    // are deterministic; `mean_tick_ms` is wall-clock.
    fn scorecard(p99: f64, violations: u64, mean_tick_ms: f64) -> String {
        format!(
            r#"{{"format":1,"scenarios":[
              {{"name":"churn-small","seed":42,
                "deterministic":{{"read_p99_s":{p99},"oracle_violations":{violations}}},
                "wallclock":{{"mean_tick_ms":{mean_tick_ms},"cep_events_per_sec":50000}}}}
            ]}}"#
        )
    }

    fn baseline(p99: f64, mean_tick_ms: f64) -> String {
        format!(
            r#"{{"format":1,"wallclock_tolerance_pct":100,
              "scenarios":[
                {{"name":"churn-small",
                  "budgets":[{{"metric":"read_p99_s","max":5.0}},
                             {{"metric":"oracle_violations","max":0}},
                             {{"metric":"cep_events_per_sec","min":1}}],
                  "deterministic":{{"read_p99_s":{p99},"oracle_violations":0}},
                  "wallclock":{{"mean_tick_ms":{mean_tick_ms},"cep_events_per_sec":50000}}}}
              ]}}"#
        )
    }

    #[test]
    fn regress_passes_an_identical_candidate() {
        let (text, findings) = regress(&baseline(1.5, 2.0), &scorecard(1.5, 0, 2.0), None).unwrap();
        assert!(findings.is_empty(), "{text}");
        assert!(text.contains("verdict: PASS"), "{text}");
    }

    #[test]
    fn regress_fails_on_deterministic_drift_even_tiny() {
        // A seeded synthetic regression: p99 moved by one ULP-ish step.
        let (text, findings) =
            regress(&baseline(1.5, 2.0), &scorecard(1.5000001, 0, 2.0), None).unwrap();
        assert_eq!(findings.len(), 1, "{text}");
        assert!(findings[0].detail.contains("deterministic drift"));
        assert!(text.contains("verdict: FAIL"), "{text}");
    }

    #[test]
    fn regress_fails_on_budget_violation() {
        // p99 within exact-match (baseline moved too) but over budget.
        let (text, findings) = regress(&baseline(6.0, 2.0), &scorecard(6.0, 0, 2.0), None).unwrap();
        assert_eq!(findings.len(), 1, "{text}");
        assert!(findings[0].detail.contains("budget violation"));
        // ...and a violation count over its zero budget also trips.
        let (_, findings) = regress(&baseline(1.5, 2.0), &scorecard(1.5, 3, 2.0), None).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.metric == "oracle_violations" && f.detail.contains("budget violation")));
    }

    #[test]
    fn regress_tolerates_wallclock_jitter_but_not_blowups() {
        // 100% tolerance: 2.0 ms → 3.9 ms passes, 4.1 ms fails.
        let (text, findings) = regress(&baseline(1.5, 2.0), &scorecard(1.5, 0, 3.9), None).unwrap();
        assert!(findings.is_empty(), "{text}");
        let (text, findings) = regress(&baseline(1.5, 2.0), &scorecard(1.5, 0, 4.1), None).unwrap();
        assert_eq!(findings.len(), 1, "{text}");
        assert!(findings[0].detail.contains("wall-clock regression"));
        // --tolerance-pct widens the gate.
        let (_, findings) =
            regress(&baseline(1.5, 2.0), &scorecard(1.5, 0, 4.1), Some(400.0)).unwrap();
        assert!(findings.is_empty());
    }

    #[test]
    fn regress_never_gates_single_observation_extremes() {
        // max_* wallclock metrics: one descheduled tick can move them
        // 10×, so an arbitrary blowup must not fail the gate...
        let base = r#"{"format":1,"wallclock_tolerance_pct":100,"scenarios":[
            {"name":"s","deterministic":{},
             "wallclock":{"mean_tick_ms":2.0,"max_tick_ms":0.5}}]}"#;
        let cand = r#"{"format":1,"scenarios":[
            {"name":"s","seed":42,"deterministic":{},
             "wallclock":{"mean_tick_ms":2.0,"max_tick_ms":50.0}}]}"#;
        let (text, findings) = regress(base, cand, None).unwrap();
        assert!(findings.is_empty(), "{text}");
        // ...but a budget on the same metric still provides a hard cap.
        let base_budgeted = r#"{"format":1,"wallclock_tolerance_pct":100,"scenarios":[
            {"name":"s","budgets":[{"metric":"max_tick_ms","max":10.0}],
             "deterministic":{},
             "wallclock":{"mean_tick_ms":2.0,"max_tick_ms":0.5}}]}"#;
        let (text, findings) = regress(base_budgeted, cand, None).unwrap();
        assert_eq!(findings.len(), 1, "{text}");
        assert!(findings[0].detail.contains("budget violation"));
    }

    #[test]
    fn regress_flags_missing_scenarios_and_ignores_new_ones() {
        let cand = r#"{"format":1,"scenarios":[
            {"name":"brand-new","seed":1,"deterministic":{},"wallclock":{}}
        ]}"#;
        let (text, findings) = regress(&baseline(1.5, 2.0), cand, None).unwrap();
        assert_eq!(findings.len(), 1, "{text}");
        assert!(findings[0].detail.contains("missing from candidate"));
        assert!(text.contains("brand-new: new scenario"), "{text}");
    }

    #[test]
    fn regress_rejects_garbage_inputs() {
        assert!(regress("not json", &scorecard(1.5, 0, 2.0), None).is_err());
        assert!(regress(&baseline(1.5, 2.0), "not json", None).is_err());
    }

    #[test]
    fn profile_json_round_trips_into_the_text_tree() {
        simcore::profiler::reset();
        simcore::profiler::set_enabled(true);
        {
            simcore::prof_scope!("tick");
            simcore::prof_scope!("audit");
        }
        simcore::profiler::set_enabled(false);
        let snap = simcore::profiler::snapshot();
        simcore::profiler::reset();
        let json = snap.to_json();
        let text = render_profile(&json).unwrap();
        assert!(text.contains("tick"), "{text}");
        assert!(text.contains("  audit"), "{text}");
        // round trip preserves the full tree
        let value = serde_json::parse_value(&json).unwrap();
        assert_eq!(profile_from_value(&value).unwrap(), snap);
        assert!(render_profile("{}").is_err());
        assert!(render_profile("not json").is_err());
    }
}
