//! Offline analysis of telemetry traces: `summary`, `check`, `diff`.
//!
//! The heavy lifting (JSONL decoding, span reconstruction, the
//! invariant oracle) lives in [`simcore::spans`]; this crate renders
//! those structures as deterministic, human-readable reports and wraps
//! them in the `trace-tools` CLI. Every report is a pure function of
//! the input trace bytes — two same-seed runs render byte-identical
//! text, so reports diff cleanly across commits.
//!
//! * [`summarize`] — per-event-kind counts, span counts with
//!   p50/p95/p99 latencies, and an ASCII timeline of data-class
//!   transitions for the hottest files.
//! * [`check`] — run the [`TraceOracle`] over the trace; violations are
//!   listed with their `seq` anchors.
//! * [`diff`] — compare two traces structurally (event counts and span
//!   latency summaries), e.g. two different-seed runs of one scenario.

use std::fmt::Write as _;

pub use simcore::spans::oracle::{OracleConfig, TraceOracle, Violation};
pub use simcore::spans::{
    parse_jsonl, parse_jsonl_lenient, ParseError, SkippedLine, SpanCollector, SpanKind, SpanReport,
};

/// Render the "skipped N unknown-kind line(s)" warning, or nothing when
/// the whole trace decoded. Forward compatibility: a trace written by a
/// newer emitter must still summarize/check on the kinds we do know.
fn skip_warning(skipped: &[SkippedLine]) -> String {
    if skipped.is_empty() {
        return String::new();
    }
    let mut kinds: Vec<&str> = skipped.iter().map(|s| s.kind.as_str()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    format!(
        "warning: skipped {} unknown-kind line(s) ({})\n",
        skipped.len(),
        kinds.join(", ")
    )
}

/// Render the summary report for one JSONL trace. Unknown event kinds
/// are skipped with a warning, not a hard error.
pub fn summarize(trace: &str) -> Result<String, ParseError> {
    let (events, skipped) = parse_jsonl_lenient(trace)?;
    let report = SpanCollector::collect(&events);
    let mut out = skip_warning(&skipped);
    let _ = writeln!(
        out,
        "trace: {} events over {:.3} s (t = {:.3} s .. {:.3} s)",
        report.events,
        report.last.since(report.first).as_secs_f64(),
        report.first.as_secs_f64(),
        report.last.as_secs_f64(),
    );

    let _ = writeln!(out, "\nevents by kind");
    if report.event_counts.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for (kind, count) in &report.event_counts {
        let _ = writeln!(out, "  {kind:<24} {count:>8}");
    }

    let _ = writeln!(
        out,
        "\nspans (completed; seconds, nearest-rank percentiles)"
    );
    let _ = writeln!(
        out,
        "  {:<8} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "kind", "count", "failed", "open", "p50", "p95", "p99", "max"
    );
    for kind in SpanKind::ALL {
        let lat = report.latency(kind);
        let open = report.open.iter().filter(|s| s.kind == kind).count();
        let cell = |v: f64| -> String {
            if lat.count == 0 {
                "-".into()
            } else {
                format!("{v:.3}")
            }
        };
        let _ = writeln!(
            out,
            "  {:<8} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
            kind.label(),
            lat.count,
            lat.failed,
            open,
            cell(lat.p50),
            cell(lat.p95),
            cell(lat.p99),
            cell(lat.max),
        );
    }

    let hottest = report.hottest_files(5);
    let _ = writeln!(
        out,
        "\ndata-class timeline (top {} files by transitions)",
        hottest.len()
    );
    if hottest.is_empty() {
        let _ = writeln!(out, "  (no verdicts in trace)");
    }
    for (path, timeline) in hottest {
        let line = timeline
            .iter()
            .map(|(at, class)| format!("{class}@{:.0}s", at.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(out, "  {path:<24} {line}");
    }
    Ok(out)
}

/// Run the invariant oracle over a trace. Returns the rendered report
/// plus the violations themselves (empty means the trace is clean).
/// Unknown event kinds are skipped with a warning, not a hard error.
pub fn check(trace: &str, cfg: OracleConfig) -> Result<(String, Vec<Violation>), ParseError> {
    let (events, skipped) = parse_jsonl_lenient(trace)?;
    let violations = TraceOracle::check(&events, cfg);
    let mut out = skip_warning(&skipped);
    if violations.is_empty() {
        let _ = writeln!(out, "checked {} events: OK (0 violations)", events.len());
    } else {
        let _ = writeln!(
            out,
            "checked {} events: {} violation{}",
            events.len(),
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
        for v in &violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    Ok((out, violations))
}

/// Structurally compare two traces. Returns the rendered report and
/// whether they differ (event-kind counts or span latency summaries).
pub fn diff(a: &str, b: &str) -> Result<(String, bool), ParseError> {
    let ra = SpanCollector::collect(&parse_jsonl(a)?);
    let rb = SpanCollector::collect(&parse_jsonl(b)?);
    let mut out = String::new();
    let mut differs = false;

    let _ = writeln!(out, "events: A={} B={}", ra.events, rb.events);
    let kinds: std::collections::BTreeSet<&str> = ra
        .event_counts
        .keys()
        .chain(rb.event_counts.keys())
        .copied()
        .collect();
    let mut changed = 0usize;
    for kind in kinds {
        let ca = ra.event_counts.get(kind).copied().unwrap_or(0);
        let cb = rb.event_counts.get(kind).copied().unwrap_or(0);
        if ca != cb {
            changed += 1;
            differs = true;
            let _ = writeln!(
                out,
                "  {kind:<24} A={ca:<8} B={cb:<8} ({:+})",
                cb as i64 - ca as i64
            );
        }
    }
    if changed == 0 {
        let _ = writeln!(out, "  event counts identical across every kind");
    }

    let _ = writeln!(out, "span latency (count, p50/p95/p99 s)");
    for kind in SpanKind::ALL {
        let la = ra.latency(kind);
        let lb = rb.latency(kind);
        if la != lb {
            differs = true;
        }
        let _ = writeln!(
            out,
            "  {:<8} A: {:>5} {:.3}/{:.3}/{:.3}   B: {:>5} {:.3}/{:.3}/{:.3}{}",
            kind.label(),
            la.count,
            la.p50,
            la.p95,
            la.p99,
            lb.count,
            lb.p50,
            lb.p95,
            lb.p99,
            if la == lb { "" } else { "   <- differs" },
        );
    }
    let _ = writeln!(
        out,
        "verdict: traces are {}",
        if differs {
            "DIFFERENT"
        } else {
            "structurally identical"
        }
    );
    Ok((out, differs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::telemetry::{Event, TelemetrySink};
    use simcore::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// A small clean causal chain: verdict → boost → task → copy.
    fn clean_trace() -> String {
        let sink = TelemetrySink::recording();
        sink.emit(
            t(0),
            Event::Verdict {
                path: "/hot".into(),
                verdict: "hot".into(),
                file_sessions: 12.0,
                max_block_sessions: 4.0,
                replicas: 3,
            },
        );
        sink.emit(
            t(0),
            Event::ReplicationBoost {
                path: "/hot".into(),
                from: 3,
                to: 6,
                sessions: 12.0,
            },
        );
        sink.emit(
            t(0),
            Event::TaskQueued {
                job: 0,
                priority: "immediate".into(),
            },
        );
        sink.emit(t(1), Event::TaskDispatched { job: 0, attempt: 1 });
        sink.emit(
            t(1),
            Event::CopyDispatched {
                copy: 0,
                block: 9,
                source: 1,
                target: 2,
            },
        );
        sink.emit(
            t(5),
            Event::CopyCompleted {
                copy: 0,
                block: 9,
                target: 2,
            },
        );
        sink.emit(t(5), Event::TaskFinished { job: 0, ok: true });
        sink.emit(
            t(60),
            Event::Verdict {
                path: "/hot".into(),
                verdict: "cooled".into(),
                file_sessions: 0.5,
                max_block_sessions: 0.2,
                replicas: 6,
            },
        );
        sink.emit(
            t(60),
            Event::ReplicationShed {
                path: "/hot".into(),
                from: 6,
                to: 3,
            },
        );
        sink.drain_jsonl()
    }

    #[test]
    fn summary_reports_counts_and_percentiles() {
        let text = summarize(&clean_trace()).unwrap();
        assert!(text.contains("trace: 9 events"), "{text}");
        assert!(text.contains("copy_completed"), "{text}");
        assert!(text.contains("verdict"), "{text}");
        // the copy span ran 4 s, the task span 5 s
        let row = |kind: &str| {
            text.lines()
                .find(|l| l.split_whitespace().next() == Some(kind))
                .unwrap_or_else(|| panic!("no {kind} row in {text}"))
                .to_string()
        };
        assert!(row("copy").contains("4.000"), "{text}");
        assert!(row("task").contains("5.000"), "{text}");
        assert!(row("episode").contains("60.000"), "{text}");
        assert!(text.contains("hot@0s -> cooled@60s"), "{text}");
        // deterministic: rendering twice is byte-identical
        assert_eq!(text, summarize(&clean_trace()).unwrap());
    }

    #[test]
    fn check_passes_clean_and_flags_dirty() {
        let (text, violations) = check(&clean_trace(), OracleConfig::default()).unwrap();
        assert!(violations.is_empty(), "{text}");
        assert!(text.contains("OK (0 violations)"));

        // corrupt the trace: complete a copy on a node the trace killed
        let sink = TelemetrySink::recording();
        sink.emit(
            t(0),
            Event::CopyDispatched {
                copy: 0,
                block: 1,
                source: 0,
                target: 3,
            },
        );
        sink.emit(
            t(1),
            Event::FaultApplied {
                kind: "kill".into(),
                node: Some(3),
                rack: None,
            },
        );
        sink.emit(
            t(2),
            Event::CopyCompleted {
                copy: 0,
                block: 1,
                target: 3,
            },
        );
        let (text, violations) = check(&sink.drain_jsonl(), OracleConfig::default()).unwrap();
        assert_eq!(violations.len(), 1, "{text}");
        assert_eq!(violations[0].invariant, "copy_live_node");
        assert!(text.contains("copy_live_node"), "{text}");
    }

    #[test]
    fn diff_is_quiet_on_identical_and_loud_on_different() {
        let a = clean_trace();
        let (text, differs) = diff(&a, &a).unwrap();
        assert!(!differs, "{text}");
        assert!(text.contains("structurally identical"));

        let mut b = clean_trace();
        b.push_str("{\"t_ns\":90000000000,\"seq\":9,\"ev\":\"decode_cold\",\"path\":\"/c\"}\n");
        let (text, differs) = diff(&a, &b).unwrap();
        assert!(differs, "{text}");
        assert!(text.contains("decode_cold"), "{text}");
        assert!(text.contains("DIFFERENT"), "{text}");
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(summarize("garbage\n").is_err());
        assert!(check("garbage\n", OracleConfig::default()).is_err());
        assert!(diff("garbage\n", "").is_err());
    }

    #[test]
    fn unknown_event_kinds_warn_and_skip() {
        let mut trace = clean_trace();
        trace.push_str(
            "{\"t_ns\":70000000000,\"seq\":99,\"ev\":\"quantum_flux\",\"path\":\"/hot\"}\n",
        );
        let text = summarize(&trace).unwrap();
        assert!(
            text.contains("warning: skipped 1 unknown-kind line(s) (quantum_flux)"),
            "{text}"
        );
        assert!(text.contains("trace: 9 events"), "known events intact");
        let (text, violations) = check(&trace, OracleConfig::default()).unwrap();
        assert!(violations.is_empty(), "{text}");
        assert!(text.contains("warning: skipped 1"), "{text}");
        assert!(text.contains("OK (0 violations)"), "{text}");
    }
}
