//! Dynamic threshold calibration against the live cluster.
//!
//! "The thresholds ... are influenced by the HDFS cluster environments,
//! which includes the types of disks, network bandwidth, CPU speed, etc.
//! ERMS could dynamically change these thresholds based on system
//! environments." This module automates the measurement the paper did by
//! hand in Figure 8: probe how many concurrent sessions one replica
//! sustains above a QoS floor, then derive the whole threshold set from
//! it via [`Thresholds::calibrate`].
//!
//! The probe runs on a *scratch* file so it can be used on a fresh
//! cluster before production data arrives, or re-run during quiet hours
//! to track hardware changes.

use crate::thresholds::Thresholds;
use hdfs_sim::topology::{ClientId, Endpoint};
use hdfs_sim::ClusterSim;
use simcore::units::Bytes;

/// Probe parameters.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Size of the scratch probe file.
    pub probe_size: Bytes,
    /// Per-session QoS floor (MB/s) defining "can hold".
    pub qos_mb_s: f64,
    /// Upper bound on sessions probed per replica.
    pub max_sessions: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probe_size: 256 << 20,
            qos_mb_s: 8.0,
            max_sessions: 32,
        }
    }
}

/// Result of a calibration probe.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Concurrent sessions one replica held at or above the QoS floor.
    pub per_replica_capacity: usize,
    /// Mean per-session throughput at that capacity (MB/s).
    pub throughput_at_capacity: f64,
    /// The derived threshold set.
    pub thresholds: Thresholds,
}

/// Measure per-replica session capacity on `cluster` and derive
/// thresholds. The probe creates (and deletes) `/.erms/probe` with a
/// single replica, ramping concurrent readers until the mean per-session
/// throughput falls below the QoS floor.
///
/// The cluster must be quiescent; the probe drains its own reads.
pub fn probe(cluster: &mut ClusterSim, cfg: &ProbeConfig) -> ProbeResult {
    const PROBE_PATH: &str = "/.erms/probe";
    assert!(
        cluster.namespace().resolve(PROBE_PATH).is_none(),
        "probe file path collision"
    );
    cluster
        .create_file(PROBE_PATH, cfg.probe_size, 1, None)
        .expect("probe file fits");
    cluster.drain_completed_reads();

    let mut capacity = 1usize;
    let mut tput_at_capacity = 0.0f64;
    for n in 1..=cfg.max_sessions {
        for i in 0..n {
            cluster
                .open_read(Endpoint::Client(ClientId(900_000 + i as u32)), PROBE_PATH)
                .expect("probe file exists");
        }
        cluster.run_until_quiescent();
        let reads = cluster.drain_completed_reads();
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for r in reads {
            if r.path == PROBE_PATH && !r.failed {
                sum += r.throughput_mb_s();
                cnt += 1;
            }
        }
        let mean = if cnt == 0 { 0.0 } else { sum / cnt as f64 };
        if mean < cfg.qos_mb_s {
            break;
        }
        capacity = n;
        tput_at_capacity = mean;
    }
    cluster.delete_file(PROBE_PATH);

    ProbeResult {
        per_replica_capacity: capacity,
        throughput_at_capacity: tput_at_capacity,
        thresholds: Thresholds::calibrate(capacity as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdfs_sim::{ClusterConfig, DefaultRackAware};
    use simcore::units::{Bandwidth, MB};

    fn cluster(cfg: ClusterConfig) -> ClusterSim {
        ClusterSim::new(cfg, Box::new(DefaultRackAware))
    }

    #[test]
    fn probe_matches_disk_over_qos() {
        // 80 MB/s disk over an 8 MB/s QoS floor → 9-10 sessions (request
        // overhead shaves the boundary case) — the paper's own "8-10
        // sessions per replica" measurement.
        let mut c = cluster(ClusterConfig::paper_testbed());
        let r = probe(&mut c, &ProbeConfig::default());
        assert!(
            (8..=10).contains(&r.per_replica_capacity),
            "{}",
            r.per_replica_capacity
        );
        assert!(r.throughput_at_capacity >= 8.0);
        assert!(r.thresholds.validate().is_ok());
    }

    #[test]
    fn slower_disks_yield_lower_thresholds() {
        let mut cfg = ClusterConfig::paper_testbed();
        cfg.disk_bandwidth = Bandwidth::from_mb_per_sec(30.0);
        let mut c = cluster(cfg);
        let r = probe(
            &mut c,
            &ProbeConfig {
                probe_size: 128 * MB,
                ..ProbeConfig::default()
            },
        );
        // 30 MB/s / 8 MB/s QoS ≈ 3 sessions
        assert!(r.per_replica_capacity <= 4, "{}", r.per_replica_capacity);
        assert!(r.thresholds.tau_hot < 8.0);
    }

    #[test]
    fn probe_cleans_up_after_itself() {
        let mut c = cluster(ClusterConfig::paper_testbed());
        let before = c.storage_used();
        probe(&mut c, &ProbeConfig::default());
        assert_eq!(c.storage_used(), before);
        assert!(c.namespace().resolve("/.erms/probe").is_none());
    }

    #[test]
    fn unbounded_hardware_saturates_the_probe_limit() {
        // absurdly fast fabric: nothing violates QoS, so the probe walks
        // to its configured ceiling and reports that
        let mut cfg = ClusterConfig::paper_testbed();
        cfg.disk_bandwidth = Bandwidth::from_mb_per_sec(10_000.0);
        cfg.nic_bandwidth = Bandwidth::from_gbit_per_sec(100.0);
        cfg.rack_uplink = Bandwidth::from_gbit_per_sec(400.0);
        cfg.client_bandwidth = Bandwidth::from_gbit_per_sec(100.0);
        let mut c = cluster(cfg);
        let probe_cfg = ProbeConfig {
            max_sessions: 16,
            ..ProbeConfig::default()
        };
        let r = probe(&mut c, &probe_cfg);
        assert_eq!(r.per_replica_capacity, 16);
    }
}
