//! The ERMS control loop.
//!
//! [`ErmsManager::tick`] is one pass of the architecture in the paper's
//! Fig. 1: drain the audit logs into the CEP-backed judge, classify every
//! file, and turn the verdicts into Condor tasks —
//!
//! * hot → `Increase` to the computed optimum (**immediate** priority;
//!   commissioning standby nodes first when the extras need somewhere
//!   to land),
//! * hot-but-encoded → `Decode` (**immediate**),
//! * cooled → `Decrease` back to the default factor (**when idle**),
//! * cold → `Encode` with the configured stripe layout (**when idle**).
//!
//! Tasks execute against the [`ClusterSim`]; replica movement completes
//! asynchronously (real simulated bytes), and a task only reports
//! success to Condor once every copy it started has landed — so the
//! journal honestly reflects cluster state, rollbacks included. Node
//! ads are refreshed in the ClassAds matchmaker every tick, which is
//! also how commissioning picks its standby node.

use crate::config::{ConfigError, ErmsConfig};
use crate::judge::{
    DataClass, DataJudge, FileSnapshot, JudgeBackend, JudgePolicy, Judgment, RewardMeters,
    RulesPolicy,
};
use crate::model::ActiveStandbyModel;
use crate::replication::optimal_replication;
use condor::matchmaker::Matchmaker;
use condor::parser::parse_expr;
use condor::scheduler::{JobId, Outcome, Priority, Scheduler};
use condor::{ClassAd, Expr};
use hdfs_sim::cluster::CopyId;
use hdfs_sim::{ClusterSim, FileId, NodeId};
use simcore::telemetry::{Event as Tel, TelemetrySink};
use simcore::{prof_scope, trace, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// A replication-management task, as journalled by Condor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErmsTask {
    /// Raise `path` to `target` replicas.
    Increase { path: String, target: usize },
    /// Lower `path` to `target` replicas.
    Decrease { path: String, target: usize },
    /// Erasure-encode `path` (replication 1 + parities).
    Encode { path: String },
    /// Undo encoding and restore `target` replicas.
    Decode { path: String, target: usize },
    /// Verified repair of a file with quarantined-corrupt copies:
    /// re-copy every under-replicated block from a clean source (the
    /// scrubber's repair route for replicated files; dark encoded
    /// shards go through RS reconstruction instead).
    Repair { path: String },
}

impl ErmsTask {
    fn kind(&self) -> u8 {
        match self {
            ErmsTask::Increase { .. } => 0,
            ErmsTask::Decrease { .. } => 1,
            ErmsTask::Encode { .. } => 2,
            ErmsTask::Decode { .. } => 3,
            ErmsTask::Repair { .. } => 4,
        }
    }
    fn path(&self) -> &str {
        match self {
            ErmsTask::Increase { path, .. }
            | ErmsTask::Decrease { path, .. }
            | ErmsTask::Encode { path }
            | ErmsTask::Decode { path, .. }
            | ErmsTask::Repair { path } => path,
        }
    }

    /// The compensating action recorded on rollback.
    fn inverse(&self, default_r: usize) -> ErmsTask {
        match self {
            ErmsTask::Increase { path, .. } => ErmsTask::Decrease {
                path: path.clone(),
                target: default_r,
            },
            ErmsTask::Decrease { path, .. } => ErmsTask::Increase {
                path: path.clone(),
                target: default_r,
            },
            ErmsTask::Encode { path } => ErmsTask::Decode {
                path: path.clone(),
                target: default_r,
            },
            ErmsTask::Decode { path, .. } => ErmsTask::Encode { path: path.clone() },
            // repair is idempotent convergence toward the replica
            // target; the only sane compensation is another attempt
            ErmsTask::Repair { path } => ErmsTask::Repair { path: path.clone() },
        }
    }
}

/// What one control-loop pass did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    pub files_judged: usize,
    pub hot: usize,
    pub cooled: usize,
    pub cold: usize,
    pub tasks_submitted: usize,
    pub tasks_completed: usize,
    pub tasks_failed: usize,
    pub commissioned: Vec<NodeId>,
    pub shut_down: Vec<NodeId>,
    /// Self-healing: repair copies started this tick.
    pub repairs_started: usize,
    /// Self-healing: excess replicas trimmed this tick.
    pub replicas_trimmed: usize,
    /// Self-healing: dark encoded shards whose reconstruction started.
    pub reconstructions: usize,
    /// Self-healing: tasks failed by the timeout watchdog.
    pub tasks_timed_out: usize,
    /// Self-healing: commissioned standby nodes found dead and evicted.
    pub standby_evicted: Vec<NodeId>,
    /// Scrubber: blocks checksum-verified this tick.
    pub scrub_scanned: usize,
    /// Scrubber: corrupt copies detected (and quarantined) this tick.
    pub corruptions_found: usize,
}

/// The elastic replication manager.
pub struct ErmsManager {
    cfg: ErmsConfig,
    judge: DataJudge,
    /// The decision backend driven through dyn dispatch in the judge
    /// pass: the paper's rules by default, or a learned judge from the
    /// `policy` crate (selected by `cfg.judge_backend`). The `judge`
    /// field above stays the CEP feature plumbing for every backend.
    policy: Box<dyn JudgePolicy>,
    condor: Scheduler<ErmsTask>,
    model: ActiveStandbyModel,
    matchmaker: Matchmaker,
    commission_req: Expr,
    commission_rank: Expr,
    /// Files currently boosted above the default factor.
    boosted: BTreeSet<String>,
    /// Consecutive Cooled verdicts per boosted file (hysteresis).
    cooled_streak: BTreeMap<String, u32>,
    /// Tasks in flight, deduplicating resubmission: (path, kind) → job.
    inflight: BTreeMap<(String, u8), JobId>,
    /// Copies each running job is waiting on.
    pending_copies: BTreeMap<CopyId, JobId>,
    job_wait: BTreeMap<JobId, usize>,
    job_failed_copy: BTreeSet<JobId>,
    /// When each copy-awaiting job started (timeout watchdog).
    job_started: BTreeMap<JobId, SimTime>,
    /// In-flight shard reconstructions (self-healing), by copy.
    reconstruct_copies: BTreeMap<CopyId, hdfs_sim::BlockId>,
    /// Blocks with a reconstruction already in flight.
    reconstructing: BTreeSet<hdfs_sim::BlockId>,
    /// Files that must be re-judged every tick: anything whose last
    /// verdict was not "Normal with zero windowed demand and no task in
    /// flight". Stable files leave this set and are revisited only when
    /// the cluster marks them dirty (see [`ClusterSim::drain_dirty_files`])
    /// or their cold-age deadline in `cold_due` arrives.
    active: BTreeSet<String>,
    /// Stable unencoded files, by the `last_access` recorded when they
    /// went stable: once `now - last_access` exceeds the judge's
    /// `cold_age` they must be revisited so Formula (6) can fire.
    cold_due: BTreeMap<String, SimTime>,
    /// Whether the first full classification pass has happened. The
    /// manager may be built over a cluster that already has files, so
    /// tick 1 always rescans everything.
    primed: bool,
    /// Ticks elapsed, for the repair-scan cadence.
    tick_count: u64,
    telemetry: TelemetrySink,
    /// Total tasks finished, for harness accounting.
    pub total_completed: u64,
    pub total_failed: u64,
}

impl ErmsManager {
    /// Build the manager and configure `cluster` for the active/standby
    /// model (designating and powering off the standby pool).
    ///
    /// Beyond the config's own invariants, this validates the standby
    /// pool against the actual cluster: every designated node must exist
    /// and must not already hold block replicas (powering such a node
    /// off would take live data with it).
    pub fn new(cfg: ErmsConfig, cluster: &mut ClusterSim) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let datanodes = cluster.config().datanodes;
        for &n in &cfg.standby {
            if n.0 >= datanodes {
                return Err(ConfigError::UnknownStandbyNode {
                    node: n.0,
                    datanodes,
                });
            }
            let blocks = cluster.node_block_count(n);
            if blocks > 0 {
                return Err(ConfigError::StandbyHoldsReplicas { node: n.0, blocks });
            }
        }
        let all: Vec<NodeId> = cluster.topology().nodes().collect();
        let standby: Vec<NodeId> = cfg.standby.clone();
        let active: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|n| !standby.contains(n))
            .collect();
        cluster.designate_standby(&standby);
        let model = if standby.is_empty() {
            ActiveStandbyModel::all_active(active)
        } else {
            ActiveStandbyModel::new(active, standby)
        };
        // Under self-healing (and for the scrubber's repair tasks),
        // failed tasks (dead endpoints, downed racks) retry with
        // exponential backoff instead of hammering the same broken
        // placement every tick.
        let condor = if cfg.enable_self_healing || cfg.enable_scrubber {
            Scheduler::with_retry_policy(
                cfg.max_concurrent_tasks,
                cfg.max_task_attempts,
                condor::scheduler::RetryPolicy::new(
                    simcore::SimDuration::from_secs(60),
                    simcore::SimDuration::from_mins(15),
                    0.2,
                    7,
                ),
            )
        } else {
            Scheduler::new(cfg.max_concurrent_tasks, cfg.max_task_attempts)
        };
        Ok(ErmsManager {
            judge: DataJudge::try_new(cfg.thresholds.clone())?,
            policy: build_policy(&cfg, cluster.config().default_replication),
            condor,
            model,
            matchmaker: Matchmaker::new(),
            commission_req: parse_expr("target.Standby == true && target.PoweredOn == false")
                .expect("static expression parses"),
            commission_rank: parse_expr("target.FreeDisk").expect("static expression parses"),
            boosted: BTreeSet::new(),
            cooled_streak: BTreeMap::new(),
            inflight: BTreeMap::new(),
            pending_copies: BTreeMap::new(),
            job_wait: BTreeMap::new(),
            job_failed_copy: BTreeSet::new(),
            job_started: BTreeMap::new(),
            reconstruct_copies: BTreeMap::new(),
            reconstructing: BTreeSet::new(),
            active: BTreeSet::new(),
            cold_due: BTreeMap::new(),
            primed: false,
            tick_count: 0,
            telemetry: TelemetrySink::disabled(),
            total_completed: 0,
            total_failed: 0,
            cfg,
        })
    }

    /// Install a telemetry sink, fanning it out to the CEP engine and
    /// the Condor scheduler so one recording handle captures the whole
    /// control loop.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.judge.set_telemetry(sink.clone());
        self.condor.set_telemetry(sink.clone());
        self.telemetry = sink;
    }

    pub fn judge(&mut self) -> &mut DataJudge {
        &mut self.judge
    }
    /// Which decision backend this manager was built with.
    pub fn judge_backend(&self) -> JudgeBackend {
        self.policy.backend()
    }
    pub fn model(&self) -> &ActiveStandbyModel {
        &self.model
    }
    pub fn condor(&self) -> &Scheduler<ErmsTask> {
        &self.condor
    }
    pub fn is_boosted(&self, path: &str) -> bool {
        self.boosted.contains(path)
    }

    /// One control-loop pass at `now`.
    pub fn tick(&mut self, cluster: &mut ClusterSim, now: SimTime) -> TickReport {
        let mut report = TickReport::default();
        self.tick_count += 1;
        prof_scope!("tick");

        // 1. audit logs → CEP
        let lines = {
            prof_scope!("audit");
            cluster.drain_audit()
        };
        {
            prof_scope!("cep_drain");
            self.judge.observe_lines(lines.iter().map(String::as_str));
        }

        // 1b. deleted files: drop every piece of per-path bookkeeping so
        // the manager never leaks state for (or acts on a streak/boost
        // belonging to) a path that no longer exists.
        for path in cluster.drain_deleted_paths() {
            self.forget_path(&path);
        }

        // 2. refresh ClassAds (node state detection)
        self.advertise_nodes(cluster);
        self.absorb_boot_completions(cluster);

        // 3. settle async copy completions from previous ticks
        self.settle_copies(cluster, now, &mut report);

        // 3b. self-healing: watchdog, standby eviction, repair scan and
        // dark-shard reconstruction
        {
            prof_scope!("repair_scan");
            if self.cfg.enable_self_healing {
                self.heal(cluster, now, &mut report);
            } else if self.cfg.enable_scrubber {
                // the scrubber's repair tasks get the timeout watchdog even
                // without the full self-healing pass
                self.watchdog_stuck_tasks(cluster, now, &mut report);
            }
        }

        // 3c. background scrubber: budgeted checksum sweep, then
        // verified repair scheduling for quarantined blocks
        if self.cfg.enable_scrubber {
            prof_scope!("scrub");
            self.scrub_pass(cluster, now, &mut report);
        }

        // 4. classify files and derive tasks. The default visit set is
        // incremental: files touched by audit/replica traffic since the
        // last tick (the cluster's dirty set), files still under
        // management (`active`), Formula (4) promotions, freshness-
        // pattern hits, and files whose cold-age deadline has arrived.
        // Files skipped are exactly those a full rescan would judge
        // Normal with zero windowed demand and no task in flight, which
        // produce no verdict counts and no tasks — so the two modes
        // yield identical actions (see DESIGN.md, "Scaling the control
        // loop"; `full_rescan` forces the old exhaustive behaviour).
        let default_r = cluster.config().default_replication;
        // Formula (4): overloaded datanodes promote their top file
        let promoted: BTreeSet<String> = self
            .judge
            .overloaded_nodes(now)
            .into_iter()
            .map(|(_, path, _)| path)
            .collect();
        // experimental freshness pre-warm (create → open correlation)
        let fresh: BTreeSet<String> = if self.cfg.enable_freshness_boost {
            self.judge.freshly_popular().into_iter().collect()
        } else {
            self.judge.freshly_popular();
            BTreeSet::new()
        };
        let dirty = cluster.drain_dirty_files();
        let full = self.cfg.full_rescan || !self.primed;
        self.primed = true;
        let snapshots = if full {
            self.snapshot_files(cluster)
        } else {
            let ns = cluster.namespace();
            let mut visit: BTreeSet<FileId> = dirty
                .into_iter()
                .filter(|&f| ns.file(f).is_some())
                .collect();
            for path in self.active.iter().chain(&promoted).chain(&fresh) {
                if let Some(f) = ns.resolve(path) {
                    visit.insert(f);
                }
            }
            let cold_age = self.judge.thresholds().cold_age;
            let due: Vec<String> = self
                .cold_due
                .iter()
                .filter(|&(_, &last)| now.since(last) > cold_age)
                .map(|(p, _)| p.clone())
                .collect();
            for path in due {
                self.cold_due.remove(&path);
                if let Some(f) = ns.resolve(&path) {
                    visit.insert(f);
                }
            }
            self.snapshot_subset(cluster, &visit)
        };
        report.files_judged = snapshots.len();

        // 4a. classify, shard by shard. `classify` only reads CEP state
        // (window decay at a fixed `now` is idempotent), so visiting
        // files in shard order instead of namespace order changes no
        // verdict. What it *does* change is telemetry order — the judge
        // emits `WindowEmit` events as it evaluates queries — so while
        // classifying we point the judge at a private capture sink and
        // stash each file's events next to its verdict. The act phase
        // below replays them in FileId order, which makes the trace
        // byte-identical for every shard count (and to the pre-sharded
        // loop).
        let shards = self.cfg.shards.max(1) as u64;
        let capture = if self.telemetry.enabled() {
            Some(TelemetrySink::recording())
        } else {
            None
        };
        if let Some(cap) = &capture {
            self.judge.set_telemetry(cap.clone());
        }
        // Reward meters for learning backends — the storage/energy
        // accounting the system already keeps, sampled once per tick.
        // Skipped entirely for backends that don't want a reward (the
        // rules), so the default path does no extra namespace walks.
        let meters = if self.policy.wants_reward() {
            let logical: u64 = cluster.namespace().files().map(|f| f.size).sum();
            let ideal = logical as f64 * default_r as f64;
            let storage_overhead = if ideal > 0.0 {
                cluster.storage_used() as f64 / ideal
            } else {
                1.0
            };
            let standby_total = self.model.standby_nodes().count();
            let standby_on_frac = if standby_total > 0 {
                self.model.powered_on().len() as f64 / standby_total as f64
            } else {
                0.0
            };
            RewardMeters {
                storage_overhead,
                standby_on_frac,
            }
        } else {
            RewardMeters::default()
        };
        self.policy.begin_pass(now, &meters);
        let mut judged: Vec<Option<(Judgment, Vec<simcore::telemetry::TracedEvent>)>> =
            snapshots.iter().map(|_| None).collect();
        {
            prof_scope!("judge");
            // Split borrow: the policy decides, probing the judge's CEP
            // windows. Backends are visit-order independent by contract
            // (frozen tables, per-(pass, file) RNG, per-file beliefs),
            // so shard order changes no verdict — the same invariant the
            // rules satisfied by only reading idempotent window state.
            let (judge, policy) = (&mut self.judge, &mut self.policy);
            for shard in 0..shards {
                prof_scope!(&format!("shard{shard}"));
                for (i, snap) in snapshots.iter().enumerate() {
                    if snap.id.0 % shards != shard {
                        continue;
                    }
                    let verdict =
                        policy.classify(now, snap, fresh.contains(&snap.path), &mut *judge);
                    let emitted = match &capture {
                        Some(cap) => cap.drain_events(),
                        None => Vec::new(),
                    };
                    judged[i] = Some((verdict, emitted));
                }
            }
        }
        self.policy.end_pass();
        if capture.is_some() {
            self.judge.set_telemetry(self.telemetry.clone());
        }

        // 4b. act on the verdicts in FileId order (the snapshot walk
        // order), replaying each file's captured window emissions first
        // so the trace reads exactly as if the file had been classified
        // in place. Event emission is batched through `pending` when
        // `telemetry_batch > 1`; the buffer is flushed before anything
        // that writes to the sink directly (Condor's submit trace), so
        // batching never reorders the trace — it only amortises the
        // per-event sink borrow.
        let batch = self.cfg.telemetry_batch.max(1);
        let mut pending: Vec<(SimTime, Tel)> = Vec::new();
        // Explicit guard (not `prof_scope!`): the merge phase must end
        // before dispatch below, and a block around the act loop would
        // re-indent half the function.
        let merge_scope = if simcore::profiler::is_enabled() {
            Some(simcore::profiler::enter("merge"))
        } else {
            None
        };
        for (snap, slot) in snapshots.iter().zip(judged) {
            let (verdict, emitted) = slot.expect("every shard slot judged");
            for ev in emitted {
                buf_emit(&self.telemetry, &mut pending, batch, ev.time, ev.event);
            }
            let class = if verdict.class == DataClass::Normal && promoted.contains(&snap.path) {
                DataClass::Hot
            } else {
                verdict.class
            };
            buf_emit(
                &self.telemetry,
                &mut pending,
                batch,
                now,
                Tel::Verdict {
                    path: snap.path.clone(),
                    verdict: class_name(class).into(),
                    file_sessions: verdict.n_d,
                    max_block_sessions: verdict.n_b_max,
                    replicas: snap.replication as u32,
                },
            );
            if class != DataClass::Cooled {
                self.cooled_streak.remove(&snap.path);
            }
            match class {
                DataClass::Hot => {
                    report.hot += 1;
                    // the pre-boost bump for predicted files must not
                    // escape the cap Formula (1)'s target respects
                    let target = optimal_replication(
                        verdict.n_d,
                        self.cfg.thresholds.tau_hot,
                        default_r,
                        self.cfg.max_replication,
                    )
                    .max(if promoted.contains(&snap.path) {
                        snap.replication + 1
                    } else {
                        0
                    })
                    .min(self.cfg.max_replication.max(default_r));
                    if snap.encoded {
                        // `DecodeCold` is traced when the rewrite lands
                        // in `exec_decode`, not at submission.
                        buf_flush(&self.telemetry, &mut pending);
                        self.submit(
                            now,
                            ErmsTask::Decode {
                                path: snap.path.clone(),
                                target: target.max(default_r),
                            },
                            Priority::Immediate,
                            &mut report,
                        );
                    } else if target > snap.replication {
                        buf_flush(&self.telemetry, &mut pending);
                        if self.submit(
                            now,
                            ErmsTask::Increase {
                                path: snap.path.clone(),
                                target,
                            },
                            Priority::Immediate,
                            &mut report,
                        ) {
                            buf_emit(
                                &self.telemetry,
                                &mut pending,
                                batch,
                                now,
                                Tel::ReplicationBoost {
                                    path: snap.path.clone(),
                                    from: snap.replication as u32,
                                    to: target as u32,
                                    sessions: verdict.n_d,
                                },
                            );
                        }
                    }
                }
                DataClass::Cooled => {
                    report.cooled += 1;
                    let streak = self.cooled_streak.entry(snap.path.clone()).or_insert(0);
                    *streak += 1;
                    let patient = *streak >= self.cfg.cooled_patience;
                    if patient && snap.replication > default_r {
                        buf_flush(&self.telemetry, &mut pending);
                        if self.submit(
                            now,
                            ErmsTask::Decrease {
                                path: snap.path.clone(),
                                target: default_r,
                            },
                            Priority::WhenIdle,
                            &mut report,
                        ) {
                            buf_emit(
                                &self.telemetry,
                                &mut pending,
                                batch,
                                now,
                                Tel::ReplicationShed {
                                    path: snap.path.clone(),
                                    from: snap.replication as u32,
                                    to: default_r as u32,
                                },
                            );
                        }
                    }
                }
                DataClass::Cold => {
                    report.cold += 1;
                    if self.cfg.enable_encode && !snap.encoded {
                        // `EncodeCold` is traced when the stripes land
                        // in `exec_encode`, not at submission.
                        buf_flush(&self.telemetry, &mut pending);
                        self.submit(
                            now,
                            ErmsTask::Encode {
                                path: snap.path.clone(),
                            },
                            Priority::WhenIdle,
                            &mut report,
                        );
                    }
                }
                DataClass::Normal => {
                    if fresh.contains(&snap.path) && !snap.encoded && snap.replication == default_r
                    {
                        buf_flush(&self.telemetry, &mut pending);
                        if self.submit(
                            now,
                            ErmsTask::Increase {
                                path: snap.path.clone(),
                                target: default_r + 1,
                            },
                            Priority::Immediate,
                            &mut report,
                        ) {
                            buf_emit(
                                &self.telemetry,
                                &mut pending,
                                batch,
                                now,
                                Tel::ReplicationBoost {
                                    path: snap.path.clone(),
                                    from: snap.replication as u32,
                                    to: (default_r + 1) as u32,
                                    sessions: verdict.n_d,
                                },
                            );
                        }
                    }
                }
            }
            self.note_visit(snap, class, &verdict);
        }
        buf_flush(&self.telemetry, &mut pending);
        drop(merge_scope);

        // 5. dispatch + execute Condor tasks
        let idle = cluster.is_idle();
        let dispatched = self.condor.dispatch(now, idle);
        for (job, task) in dispatched {
            self.execute(cluster, now, job, task, &mut report);
        }

        // 6. compensate permanently-failed tasks
        for (_job, task) in self.condor.take_rollbacks(now) {
            let inv = task.inverse(default_r);
            self.apply_compensation(cluster, inv);
        }

        // 7. shut drained standby nodes down
        if self.cfg.enable_standby_shutdown {
            self.shutdown_drained_standby(cluster, now, &mut report);
        }

        if self.telemetry.enabled() {
            prof_scope!("telemetry_flush");
            self.telemetry
                .counter_add("erms.hot_verdicts", report.hot as u64);
            self.telemetry
                .counter_add("erms.cooled_verdicts", report.cooled as u64);
            self.telemetry
                .counter_add("erms.cold_verdicts", report.cold as u64);
            self.telemetry
                .gauge_set("erms.boosted_files", self.boosted.len() as f64);
            self.telemetry
                .gauge_set("erms.tasks_pending", self.condor.pending() as f64);
        }

        report
    }

    // ------------------------------------------------------------------

    fn snapshot_of(&self, meta: &hdfs_sim::namespace::FileMeta) -> FileSnapshot {
        FileSnapshot {
            id: meta.id,
            path: meta.path.clone(),
            replication: meta.replication(),
            blocks: meta.blocks.clone(),
            last_access: meta.last_access,
            boosted: self.boosted.contains(&meta.path),
            encoded: meta.is_encoded(),
        }
    }

    fn snapshot_files(&self, cluster: &ClusterSim) -> Vec<FileSnapshot> {
        cluster
            .namespace()
            .files()
            .map(|meta| self.snapshot_of(meta))
            .collect()
    }

    /// Snapshot only `ids`, in id order — the same relative order a full
    /// namespace walk would visit them, so task submission (and thus
    /// Condor `JobId` assignment) is identical in both modes.
    fn snapshot_subset(&self, cluster: &ClusterSim, ids: &BTreeSet<FileId>) -> Vec<FileSnapshot> {
        let ns = cluster.namespace();
        ids.iter()
            .filter_map(|&id| ns.file(id))
            .map(|meta| self.snapshot_of(meta))
            .collect()
    }

    /// Drop all per-path bookkeeping for a deleted file. A task already
    /// queued for the path is left to fail at dispatch ("file deleted");
    /// its dedup entry goes now so a later file reusing the path starts
    /// with a clean slate.
    fn forget_path(&mut self, path: &str) {
        self.boosted.remove(path);
        self.cooled_streak.remove(path);
        self.active.remove(path);
        self.cold_due.remove(path);
        self.inflight.retain(|(p, _), _| p != path);
        self.policy.forget_path(path);
    }

    /// Maintain the incremental visit sets after judging one file.
    ///
    /// A file is *stable* when it was judged Normal with zero windowed
    /// demand while unboosted and with no task in flight. Nothing about
    /// such a file can change except through events that mark it dirty
    /// in the cluster — or the silent passage of time carrying it past
    /// Formula (6)'s cold age, which `cold_due` schedules explicitly.
    fn note_visit(&mut self, snap: &FileSnapshot, class: DataClass, verdict: &Judgment) {
        let has_inflight = self.inflight.keys().any(|(p, _)| p == &snap.path);
        let stable = class == DataClass::Normal
            && !snap.boosted
            && !has_inflight
            && verdict.n_d == 0.0
            && verdict.n_b_max == 0.0;
        if !stable {
            self.cold_due.remove(&snap.path);
            self.active.insert(snap.path.clone());
            return;
        }
        self.active.remove(&snap.path);
        if snap.encoded {
            // encoded files never re-enter Cold; only traffic (which
            // dirties them) can change their class
            self.cold_due.remove(&snap.path);
        } else {
            // τ_m > 0 (validated), so zero demand always satisfies
            // Formula (6)'s rate clause once the file is old enough
            self.cold_due.insert(snap.path.clone(), snap.last_access);
        }
    }

    fn advertise_nodes(&mut self, cluster: &ClusterSim) {
        for view in cluster.node_views(None, None) {
            let name = view.id.to_string();
            let dead = matches!(
                cluster.node_state(view.id),
                hdfs_sim::datanode::NodeState::Dead
            );
            if dead {
                self.matchmaker.withdraw(&name);
                continue;
            }
            // FreeDisk is advertised in bytes: truncating to whole MiB
            // made a node with any sub-MiB remainder (or less than 1 MiB
            // total) advertise 0 and lose every rank tie despite having
            // genuinely more room.
            let ad = ClassAd::new()
                .with("Rack", i64::from(view.rack.0))
                .with("FreeDisk", view.free as i64)
                .with("Standby", view.standby_pool)
                .with("PoweredOn", view.serving)
                .with("Load", view.load as i64)
                .with("Blocks", cluster.node_block_count(view.id) as i64);
            self.matchmaker.advertise(name, ad, None);
        }
    }

    fn absorb_boot_completions(&mut self, cluster: &ClusterSim) {
        for n in self.model.powered_on() {
            if matches!(cluster.node_state(n), hdfs_sim::datanode::NodeState::Active) {
                self.model.mark_booted(n);
            }
        }
    }

    /// Returns whether the task was actually enqueued (false when an
    /// identical task is already in flight).
    fn submit(
        &mut self,
        now: SimTime,
        task: ErmsTask,
        priority: Priority,
        report: &mut TickReport,
    ) -> bool {
        let key = (task.path().to_string(), task.kind());
        if self.inflight.contains_key(&key) {
            return false; // identical task already queued/running
        }
        let job = self.condor.submit(now, task, priority);
        self.inflight.insert(key, job);
        report.tasks_submitted += 1;
        true
    }

    fn execute(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        job: JobId,
        task: ErmsTask,
        report: &mut TickReport,
    ) {
        let outcome = match &task {
            ErmsTask::Increase { path, target } => {
                self.exec_increase(cluster, now, job, path, *target, report)
            }
            ErmsTask::Decrease { path, target } => self.exec_decrease(cluster, path, *target),
            ErmsTask::Encode { path } => self.exec_encode(cluster, path),
            ErmsTask::Decode { path, target } => self.exec_decode(cluster, now, job, path, *target),
            ErmsTask::Repair { path } => self.exec_repair(cluster, now, job, path),
        };
        match outcome {
            PendingOrDone::Done(outcome) => {
                self.finish(cluster, now, job, &task, outcome, report);
            }
            PendingOrDone::AwaitingCopies => {
                // settled by a later tick via settle_copies
            }
        }
    }

    fn finish(
        &mut self,
        _cluster: &mut ClusterSim,
        now: SimTime,
        job: JobId,
        task: &ErmsTask,
        outcome: Outcome,
        report: &mut TickReport,
    ) {
        let ok = outcome == Outcome::Success;
        self.job_started.remove(&job);
        self.condor.report(now, job, outcome);
        // drop the dedup key only when the job is no longer queued/running
        if self.condor.state(job) != Some(condor::scheduler::JobState::Queued) {
            self.inflight.retain(|_, &mut j| j != job);
        }
        if ok {
            report.tasks_completed += 1;
            self.total_completed += 1;
            match task {
                ErmsTask::Increase { path, .. } | ErmsTask::Decode { path, .. } => {
                    self.boosted.insert(path.clone());
                }
                ErmsTask::Decrease { path, .. } => {
                    self.boosted.remove(path);
                }
                ErmsTask::Encode { path } => {
                    self.boosted.remove(path);
                }
                ErmsTask::Repair { .. } => {} // no replication-state change
            }
        } else {
            report.tasks_failed += 1;
            self.total_failed += 1;
        }
    }

    fn exec_increase(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        job: JobId,
        path: &str,
        target: usize,
        report: &mut TickReport,
    ) -> PendingOrDone {
        let Some(file) = cluster.namespace().resolve(path) else {
            return PendingOrDone::Done(Outcome::Failure("file deleted".into()));
        };
        let current = cluster
            .namespace()
            .file(file)
            .map(|m| m.replication())
            .unwrap_or(0);
        let extra = target.saturating_sub(current);
        if extra == 0 {
            return PendingOrDone::Done(Outcome::Success);
        }
        // make sure the extras have standby nodes to land on
        if !self.ensure_standby_capacity(cluster, now, extra, report) {
            return PendingOrDone::Done(Outcome::Failure("awaiting standby boot".into()));
        }
        let copies = cluster.set_file_replication(file, target);
        if copies.is_empty() {
            // nothing could start (no space anywhere)
            return PendingOrDone::Done(Outcome::Failure("no placement targets".into()));
        }
        self.track_copies(now, job, copies);
        PendingOrDone::AwaitingCopies
    }

    fn exec_decrease(
        &mut self,
        cluster: &mut ClusterSim,
        path: &str,
        target: usize,
    ) -> PendingOrDone {
        let Some(file) = cluster.namespace().resolve(path) else {
            return PendingOrDone::Done(Outcome::Failure("file deleted".into()));
        };
        cluster.set_file_replication(file, target);
        PendingOrDone::Done(Outcome::Success)
    }

    fn exec_encode(&mut self, cluster: &mut ClusterSim, path: &str) -> PendingOrDone {
        let Some(file) = cluster.namespace().resolve(path) else {
            return PendingOrDone::Done(Outcome::Failure("file deleted".into()));
        };
        let (num_blocks, already) = match cluster.namespace().file(file) {
            Some(m) => (m.blocks.len(), m.is_encoded()),
            None => return PendingOrDone::Done(Outcome::Failure("file vanished".into())),
        };
        if already {
            return PendingOrDone::Done(Outcome::Success);
        }
        let block_size = cluster.config().block_size;
        let plan = erasure::StripePlan::for_file(num_blocks, block_size, self.cfg.cold_stripe);
        // 1. shrink data replicas to one
        cluster.set_file_replication(file, 1);
        // 2. place the parity blocks per Algorithm 1
        let mut parities = Vec::new();
        let mut index = 0u32;
        for stripe in &plan.stripes {
            for _ in 0..stripe.parity_count {
                match cluster.place_parity_block(file, index, block_size) {
                    Some((b, _node)) => parities.push(b),
                    None => {
                        return PendingOrDone::Done(Outcome::Failure(
                            "no parity placement target".into(),
                        ))
                    }
                }
                index += 1;
            }
        }
        let parity_count = parities.len() as u32;
        cluster.mark_encoded(file, parities);
        trace!(
            self.telemetry,
            cluster.now(),
            Tel::EncodeCold {
                path: path.to_string(),
                stripes: plan.stripes.len() as u32,
                parities: parity_count,
            }
        );
        PendingOrDone::Done(Outcome::Success)
    }

    fn exec_decode(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        job: JobId,
        path: &str,
        target: usize,
    ) -> PendingOrDone {
        let Some(file) = cluster.namespace().resolve(path) else {
            return PendingOrDone::Done(Outcome::Failure("file deleted".into()));
        };
        cluster.mark_decoded(file, target);
        trace!(
            self.telemetry,
            now,
            Tel::DecodeCold {
                path: path.to_string(),
            }
        );
        let copies = cluster.set_file_replication(file, target);
        if copies.is_empty() {
            return PendingOrDone::Done(Outcome::Success);
        }
        self.track_copies(now, job, copies);
        PendingOrDone::AwaitingCopies
    }

    /// Verified repair of a quarantined file: re-copy every block that
    /// sits below its target replica count from a surviving clean source
    /// (the cluster's copy completion re-verifies the source, so a
    /// corrupt replica can never propagate). Blocks with zero live
    /// replicas are left for the dark-shard reconstruction pass; the task
    /// fails and retries with backoff until reconstruction lands.
    fn exec_repair(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        job: JobId,
        path: &str,
    ) -> PendingOrDone {
        let Some(file) = cluster.namespace().resolve(path) else {
            return PendingOrDone::Done(Outcome::Failure("file deleted".into()));
        };
        let blocks: Vec<hdfs_sim::BlockId> = match cluster.namespace().file(file) {
            Some(meta) => {
                let mut all = meta.blocks.clone();
                if let hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } = &meta.mode {
                    all.extend_from_slice(parity_blocks);
                }
                all
            }
            None => return PendingOrDone::Done(Outcome::Failure("file vanished".into())),
        };
        let mut copies = Vec::new();
        let mut dark = 0usize;
        for b in blocks {
            let have = cluster.blockmap().replica_count(b);
            let want = cluster.block_target(b).max(1);
            if have == 0 {
                dark += 1;
                continue;
            }
            if have < want {
                copies.extend(cluster.add_replicas(b, want - have));
            }
        }
        if !copies.is_empty() {
            self.track_copies(now, job, copies);
            return PendingOrDone::AwaitingCopies;
        }
        if dark > 0 {
            return PendingOrDone::Done(Outcome::Failure("awaiting reconstruction".into()));
        }
        PendingOrDone::Done(Outcome::Success)
    }

    fn track_copies(&mut self, now: SimTime, job: JobId, copies: Vec<CopyId>) {
        self.job_wait.insert(job, copies.len());
        self.job_started.insert(job, now);
        for c in copies {
            self.pending_copies.insert(c, job);
        }
    }

    fn settle_copies(&mut self, cluster: &mut ClusterSim, now: SimTime, report: &mut TickReport) {
        let mut finished: Vec<(JobId, bool)> = Vec::new();
        for stat in cluster.drain_completed_copies() {
            let Some(job) = self.pending_copies.remove(&stat.id) else {
                // not a task copy: maybe one of our shard reconstructions
                if let Some(block) = self.reconstruct_copies.remove(&stat.id) {
                    // success or failure, the block is fair game for the
                    // next heal pass to re-examine
                    self.reconstructing.remove(&block);
                }
                continue; // otherwise repair traffic, not ours
            };
            if !stat.succeeded {
                self.job_failed_copy.insert(job);
            }
            let left = self
                .job_wait
                .get_mut(&job)
                .expect("job with pending copies");
            *left -= 1;
            if *left == 0 {
                self.job_wait.remove(&job);
                finished.push((job, !self.job_failed_copy.remove(&job)));
            }
        }
        for (job, ok) in finished {
            let Some(task) = self.condor.journal().payload_of(job) else {
                continue;
            };
            let outcome = if ok {
                Outcome::Success
            } else {
                Outcome::Failure("replica copy failed".into())
            };
            self.finish(cluster, now, job, &task, outcome, report);
        }
    }

    /// Commission standby nodes until `extra` serving standby nodes are
    /// available (or the pool is exhausted). Returns whether enough
    /// capacity is already serving.
    fn ensure_standby_capacity(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        extra: usize,
        report: &mut TickReport,
    ) -> bool {
        if self.model.standby_nodes().count() == 0 {
            return true; // all-active configuration: place anywhere
        }
        let serving_standby = self
            .model
            .standby_nodes()
            .filter(|&n| matches!(cluster.node_state(n), hdfs_sim::datanode::NodeState::Active))
            .count();
        if serving_standby >= extra {
            return true;
        }
        // Not enough: commission more via ClassAds matchmaking, ranked by
        // free disk. The boot takes time; retry the task later.
        let mut need = extra - serving_standby;
        let request = ClassAd::new();
        while need > 0 {
            let Some(name) = self
                .matchmaker
                .best_match(&request, &self.commission_req, Some(&self.commission_rank))
                .map(str::to_string)
            else {
                break; // pool exhausted; extras will fall back to active
            };
            let id = NodeId(
                name.trim_start_matches("dn")
                    .parse()
                    .expect("node ad names are dnN"),
            );
            if self.model.request_boot(id, now) && cluster.commission(id) {
                // refresh the ad so the next match skips this node
                let mut ad = self.matchmaker.get(&name).cloned().unwrap_or_default();
                ad.set("PoweredOn", true);
                self.matchmaker.advertise(name, ad, None);
                report.commissioned.push(id);
                need -= 1;
            } else {
                break;
            }
        }
        // if no commissionable node remains (pool exhausted, or only
        // crashed nodes left — those can never boot), let placement fall
        // back to the active set instead of waiting forever
        let commissionable = self.model.powered_off().into_iter().any(|n| {
            matches!(
                cluster.node_state(n),
                hdfs_sim::datanode::NodeState::Standby
            )
        });
        !commissionable && report.commissioned.is_empty()
    }

    /// The self-healing pass: (1) time out tasks stuck behind dead
    /// endpoints or downed uplinks, (2) evict crashed standby nodes from
    /// the model so commissioning re-selects, (3) run the namenode
    /// repair scan (under-replication re-copies honour the replication
    /// monitor's staging and `max_replication_streams` pacing inside the
    /// cluster; block-reported excess gets trimmed), (4) reconstruct
    /// dark shards of encoded files from their surviving stripe mates.
    fn heal(&mut self, cluster: &mut ClusterSim, now: SimTime, report: &mut TickReport) {
        // (1) task-timeout watchdog
        self.watchdog_stuck_tasks(cluster, now, report);

        // (2) crashed commissioned standby nodes: bank their energy,
        // return them to Off, and let the next capacity request pick a
        // healthy replacement (their ad was withdrawn in advertise_nodes)
        for n in self.model.powered_on() {
            if matches!(cluster.node_state(n), hdfs_sim::datanode::NodeState::Dead)
                && self.model.mark_failed(n, now)
            {
                report.standby_evicted.push(n);
                trace!(
                    self.telemetry,
                    now,
                    Tel::SelfHeal {
                        action: "standby_evict".into(),
                        detail: n.to_string(),
                    }
                );
            }
        }

        // (3) periodic namenode repair scan
        let scan_due = self
            .tick_count
            .is_multiple_of(u64::from(self.cfg.repair_scan_ticks));
        let mut under = 0usize;
        let mut over = 0usize;
        if scan_due {
            under = cluster.repair_under_replicated().len();
            over = cluster.trim_over_replicated();
            report.repairs_started += under;
            report.replicas_trimmed += over;
        }

        // (4) reconstruct dark shards of encoded files (immediate
        // priority: a dark block is the namenode's most urgent queue, so
        // this bypasses Condor's idle gating entirely)
        let recon_before = report.reconstructions;
        self.reconstruct_dark_shards(cluster, now, report);
        if scan_due {
            trace!(
                self.telemetry,
                now,
                Tel::RepairScan {
                    under_replicated: under as u64,
                    over_replicated: over as u64,
                    dark_shards: (report.reconstructions - recon_before) as u64,
                }
            );
        }
    }

    /// Time out tasks stuck behind dead endpoints or downed uplinks so
    /// Condor can retry them with backoff elsewhere. Shared between the
    /// self-healing pass and the scrubber (which needs the watchdog for
    /// its repair tasks even when full self-healing is off).
    fn watchdog_stuck_tasks(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        report: &mut TickReport,
    ) {
        let stuck: Vec<JobId> = self
            .job_started
            .iter()
            .filter(|&(_, &started)| now.since(started) > self.cfg.task_timeout)
            .map(|(&job, _)| job)
            .collect();
        for job in stuck {
            self.pending_copies.retain(|_, &mut j| j != job);
            self.job_wait.remove(&job);
            self.job_failed_copy.remove(&job);
            let Some(task) = self.condor.journal().payload_of(job) else {
                continue;
            };
            report.tasks_timed_out += 1;
            trace!(
                self.telemetry,
                now,
                Tel::SelfHeal {
                    action: "task_timeout".into(),
                    detail: task.path().to_string(),
                }
            );
            self.finish(
                cluster,
                now,
                job,
                &task,
                Outcome::Failure("task timeout".into()),
                report,
            );
        }
    }

    /// The budgeted background scrub pass: walk a slice of the block
    /// space verifying stored checksums (hot, boosted files first), then
    /// schedule a verified repair task for every block left quarantined.
    /// The scan budget sheds under queue pressure — half budget once the
    /// Condor queue exceeds the concurrency cap, zero at twice the cap —
    /// so scrubbing degrades before it can stall the control loop.
    fn scrub_pass(&mut self, cluster: &mut ClusterSim, now: SimTime, report: &mut TickReport) {
        let full = self.cfg.scrub_blocks_per_tick as usize;
        let queued = self.condor.pending();
        let cap = self.cfg.max_concurrent_tasks;
        let budget = if queued >= cap * 2 {
            0
        } else if queued > cap {
            full / 2
        } else {
            full
        };

        // hot data first: blocks of currently boosted files
        let mut hot: Vec<hdfs_sim::BlockId> = Vec::new();
        for path in &self.boosted {
            let Some(file) = cluster.namespace().resolve(path) else {
                continue;
            };
            if let Some(meta) = cluster.namespace().file(file) {
                hot.extend(meta.blocks.iter().copied());
                if let hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } = &meta.mode {
                    hot.extend(parity_blocks.iter().copied());
                }
            }
        }
        let (scanned, found) = cluster.scrub(budget, &hot);
        report.scrub_scanned += scanned;
        report.corruptions_found += found;

        // verified repair for everything quarantined (by this pass, the
        // read path, or a failed copy) — dedup through `inflight`
        let mut paths: BTreeSet<String> = BTreeSet::new();
        for block in cluster.corrupt_blocks_pending_repair() {
            let Some(info) = cluster.namespace().block(block) else {
                continue; // file deleted since quarantine
            };
            if let Some(meta) = cluster.namespace().file(info.file) {
                paths.insert(meta.path.clone());
            }
        }
        for path in paths {
            self.submit(now, ErmsTask::Repair { path }, Priority::Immediate, report);
        }
    }

    /// Start an RS reconstruction for each recoverable shard with zero
    /// live replicas. Candidate files come from the blockmap's dark-block
    /// index (blocks with a registered target and no replicas), so a
    /// healthy cluster pays nothing here regardless of namespace size;
    /// per-file stripe analysis then proceeds exactly as a namespace walk
    /// would, in file-id order.
    fn reconstruct_dark_shards(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        report: &mut TickReport,
    ) {
        use erasure::recovery::{rs_recovery_plan, ErasurePattern};
        use erasure::StripePlan;

        struct DarkShard {
            block: hdfs_sim::BlockId,
            sources: Vec<NodeId>,
        }
        let mut work: Vec<DarkShard> = Vec::new();
        let block_size = cluster.config().block_size;
        let candidates: BTreeSet<FileId> = cluster
            .blockmap()
            .dark_blocks()
            .filter_map(|b| cluster.namespace().block(b).map(|info| info.file))
            .collect();
        for meta in candidates
            .iter()
            .filter_map(|&id| cluster.namespace().file(id))
        {
            let hdfs_sim::namespace::StorageMode::Encoded { parity_blocks } = &meta.mode else {
                continue;
            };
            let plan = StripePlan::for_file(meta.blocks.len(), block_size, self.cfg.cold_stripe);
            for stripe in &plan.stripes {
                // shard order: the stripe's data blocks, then its parities
                let m = stripe.parity_count;
                let parities = &parity_blocks[stripe.index * m..(stripe.index + 1) * m];
                let shards: Vec<hdfs_sim::BlockId> = stripe
                    .blocks
                    .iter()
                    .map(|&i| meta.blocks[i])
                    .chain(parities.iter().copied())
                    .collect();
                let erased: Vec<usize> = (0..shards.len())
                    .filter(|&i| cluster.blockmap().replica_count(shards[i]) == 0)
                    .collect();
                if erased.is_empty() {
                    continue;
                }
                let k = stripe.blocks.len();
                let pattern = ErasurePattern::from_indices(shards.len(), &erased);
                for &e in &erased {
                    let block = shards[e];
                    // only data shards carry client-visible bytes; dark
                    // parities are rebuilt too (they restore tolerance)
                    if self.reconstructing.contains(&block) {
                        continue;
                    }
                    let Some(recovery) = rs_recovery_plan(&pattern, k, e) else {
                        continue; // stripe unrecoverable: true data loss
                    };
                    let sources: Vec<NodeId> = recovery
                        .read_from
                        .iter()
                        .filter_map(|&s| {
                            cluster.blockmap().replica_nodes(shards[s]).first().copied()
                        })
                        .collect();
                    if sources.len() < recovery.read_from.len() {
                        continue; // a survivor went dark mid-scan
                    }
                    work.push(DarkShard { block, sources });
                }
            }
        }
        for shard in work {
            // target: the serving node with the most free disk that is
            // not a source (ties break toward the lower id)
            let target = cluster
                .node_views(Some(shard.block), None)
                .into_iter()
                .filter(|v| v.serving && !v.holds_block && !shard.sources.contains(&v.id))
                .max_by_key(|v| (v.free, std::cmp::Reverse(v.id.0)))
                .map(|v| v.id);
            let Some(target) = target else { continue };
            if let Some(copy) = cluster.reconstruct_block(shard.block, &shard.sources, target) {
                self.reconstruct_copies.insert(copy, shard.block);
                self.reconstructing.insert(shard.block);
                report.reconstructions += 1;
                trace!(
                    self.telemetry,
                    now,
                    Tel::SelfHeal {
                        action: "reconstruct_shard".into(),
                        detail: shard.block.to_string(),
                    }
                );
            }
        }
    }

    fn shutdown_drained_standby(
        &mut self,
        cluster: &mut ClusterSim,
        now: SimTime,
        report: &mut TickReport,
    ) {
        if self.condor.pending() > 0 || !self.job_wait.is_empty() {
            return; // replica traffic may still target standby nodes
        }
        for n in self.model.powered_on() {
            let serving = matches!(cluster.node_state(n), hdfs_sim::datanode::NodeState::Active);
            if serving
                && cluster.node_block_count(n) == 0
                && cluster.node_load(n) == 0
                && cluster.power_off(n).is_ok()
            {
                self.model.shut_down(n, now);
                report.shut_down.push(n);
            }
        }
    }
}

enum PendingOrDone {
    Done(Outcome),
    AwaitingCopies,
}

/// Build the configured judge backend. The learned backends share one
/// discretizer derived from the rule thresholds plus the namespace's
/// default replication, so their feature fences line up with the
/// decision boundaries the rules (and the manager's gating) use.
fn build_policy(cfg: &ErmsConfig, default_replication: usize) -> Box<dyn JudgePolicy> {
    let t = &cfg.thresholds;
    let disc = policy::Discretizer {
        tau_hot: t.tau_hot,
        block_burst: t.block_burst,
        block_warm: t.block_warm,
        tau_cooled: t.tau_cooled,
        tau_cold: t.tau_cold,
        window_secs: t.window.as_secs_f64(),
        cold_age_secs: t.cold_age.as_secs_f64(),
        default_replication,
    };
    match cfg.judge_backend {
        JudgeBackend::Rules => Box::new(RulesPolicy::new(t.clone())),
        JudgeBackend::QLearning => Box::new(policy::QLearningJudge::new(
            policy::QConfig::new(disc),
            cfg.judge_seed,
        )),
        JudgeBackend::Hmm => Box::new(policy::HmmJudge::new(policy::HmmConfig::new(disc))),
    }
}

fn class_name(class: DataClass) -> &'static str {
    match class {
        DataClass::Hot => "hot",
        DataClass::Cooled => "cooled",
        DataClass::Normal => "normal",
        DataClass::Cold => "cold",
    }
}

/// Emit one trace event through the tick's batch buffer. With
/// `telemetry_batch == 1` this is a plain [`TelemetrySink::emit`]; with a
/// larger batch the event queues in `pending` and the sink is borrowed
/// once per `batch` events via [`TelemetrySink::emit_many`]. Events keep
/// their push order either way, so batching never changes the trace —
/// provided [`buf_flush`] runs before anything that writes to the sink
/// directly (Condor's submit trace, the cluster's copy traces).
fn buf_emit(
    sink: &TelemetrySink,
    pending: &mut Vec<(SimTime, Tel)>,
    batch: usize,
    now: SimTime,
    event: Tel,
) {
    if !sink.enabled() {
        return;
    }
    if batch <= 1 {
        sink.emit(now, event);
    } else {
        pending.push((now, event));
        if pending.len() >= batch {
            sink.emit_many(pending.drain(..));
        }
    }
}

/// Drain the batch buffer into the sink, preserving order.
fn buf_flush(sink: &TelemetrySink, pending: &mut Vec<(SimTime, Tel)>) {
    if !pending.is_empty() {
        sink.emit_many(pending.drain(..));
    }
}

/// Checkpoint codec for [`ErmsTask`] — the payload handed to Condor's
/// generic `save_state_with`/`load_state_with`.
mod ck {
    use super::ErmsTask;
    use checkpoint::codec as c;
    use checkpoint::{CheckpointError, Value};

    pub(super) fn task(t: &ErmsTask) -> Value {
        let (kind, path, target) = match t {
            ErmsTask::Increase { path, target } => ("increase", path, Some(*target)),
            ErmsTask::Decrease { path, target } => ("decrease", path, Some(*target)),
            ErmsTask::Encode { path } => ("encode", path, None),
            ErmsTask::Decode { path, target } => ("decode", path, Some(*target)),
            ErmsTask::Repair { path } => ("repair", path, None),
        };
        let mut b = c::MapBuilder::new().str("kind", kind).str("path", path);
        if let Some(t) = target {
            b = b.u64("target", t as u64);
        }
        b.build()
    }

    pub(super) fn task_back(v: &Value) -> Result<ErmsTask, CheckpointError> {
        let path = c::get_str(v, "path")?.to_string();
        Ok(match c::get_str(v, "kind")? {
            "increase" => ErmsTask::Increase {
                path,
                target: c::get_usize(v, "target")?,
            },
            "decrease" => ErmsTask::Decrease {
                path,
                target: c::get_usize(v, "target")?,
            },
            "encode" => ErmsTask::Encode { path },
            "repair" => ErmsTask::Repair { path },
            "decode" => ErmsTask::Decode {
                path,
                target: c::get_usize(v, "target")?,
            },
            other => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown task kind {other:?}"
                )))
            }
        })
    }
}

impl checkpoint::Checkpointable for ErmsManager {
    // Rebuild-then-hydrate: a restored manager is built by
    // `ErmsManager::new` with the same config first, then hydrated. The
    // config, the static commissioning expressions, the telemetry sink
    // and the matchmaker (whose ads are re-advertised wholesale from
    // cluster state at the top of every tick) are construction/derived
    // state; everything the control loop itself mutates is captured.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{seq_of, MapBuilder};
        use checkpoint::Value;
        MapBuilder::new()
            .put("judge", self.judge.save_state())
            .put("policy", self.policy.save_state())
            .put("condor", self.condor.save_state_with(ck::task))
            .put("model", self.model.save_state())
            .put("boosted", seq_of(&self.boosted, |p| Value::Str(p.clone())))
            .put(
                "cooled_streak",
                seq_of(&self.cooled_streak, |(p, &n)| {
                    Value::Seq(vec![Value::Str(p.clone()), Value::U64(n.into())])
                }),
            )
            .put(
                "inflight",
                seq_of(&self.inflight, |(key, j)| {
                    Value::Seq(vec![
                        Value::Str(key.0.clone()),
                        Value::U64(key.1.into()),
                        Value::U64(j.0),
                    ])
                }),
            )
            .put(
                "pending_copies",
                seq_of(&self.pending_copies, |(cp, j)| {
                    Value::Seq(vec![Value::U64(cp.0), Value::U64(j.0)])
                }),
            )
            .put(
                "job_wait",
                seq_of(&self.job_wait, |(j, &n)| {
                    Value::Seq(vec![Value::U64(j.0), Value::U64(n as u64)])
                }),
            )
            .put(
                "job_failed_copy",
                seq_of(&self.job_failed_copy, |j| Value::U64(j.0)),
            )
            .put(
                "job_started",
                seq_of(&self.job_started, |(j, t)| {
                    Value::Seq(vec![Value::U64(j.0), Value::U64(t.as_nanos())])
                }),
            )
            .put(
                "reconstruct_copies",
                seq_of(&self.reconstruct_copies, |(cp, b)| {
                    Value::Seq(vec![Value::U64(cp.0), Value::U64(b.0)])
                }),
            )
            .put(
                "reconstructing",
                seq_of(&self.reconstructing, |b| Value::U64(b.0)),
            )
            .put("active", seq_of(&self.active, |p| Value::Str(p.clone())))
            .put(
                "cold_due",
                seq_of(&self.cold_due, |(p, t)| {
                    Value::Seq(vec![Value::Str(p.clone()), Value::U64(t.as_nanos())])
                }),
            )
            .bool("primed", self.primed)
            .u64("tick_count", self.tick_count)
            .u64("total_completed", self.total_completed)
            .u64("total_failed", self.total_failed)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::{CheckpointError, Value};
        fn parts<'a>(v: &'a Value, n: usize, what: &str) -> Result<&'a [Value], CheckpointError> {
            let p = c::as_seq(v, what)?;
            if p.len() != n {
                return Err(CheckpointError::Corrupt(format!("{what} arity")));
            }
            Ok(p)
        }
        fn string(v: &Value, what: &str) -> Result<String, CheckpointError> {
            Ok(c::as_str(v, what)?.to_string())
        }
        self.judge.load_state(c::get(state, "judge")?)?;
        self.policy.load_state(c::get(state, "policy")?)?;
        self.condor
            .load_state_with(c::get(state, "condor")?, ck::task_back)?;
        self.model.load_state(c::get(state, "model")?)?;
        self.boosted = c::get_seq(state, "boosted")?
            .iter()
            .map(|v| string(v, "boosted path"))
            .collect::<Result<_, _>>()?;
        self.cooled_streak = c::get_seq(state, "cooled_streak")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "cooled_streak entry")?;
                let n = u32::try_from(c::as_u64(&p[1], "streak")?)
                    .map_err(|_| CheckpointError::Corrupt("streak exceeds u32".into()))?;
                Ok((string(&p[0], "path")?, n))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.inflight = c::get_seq(state, "inflight")?
            .iter()
            .map(|v| {
                let p = parts(v, 3, "inflight entry")?;
                let kind = u8::try_from(c::as_u64(&p[1], "task kind")?)
                    .map_err(|_| CheckpointError::Corrupt("task kind exceeds u8".into()))?;
                Ok((
                    (string(&p[0], "path")?, kind),
                    JobId(c::as_u64(&p[2], "job id")?),
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.pending_copies = c::get_seq(state, "pending_copies")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "pending_copies entry")?;
                Ok((
                    CopyId(c::as_u64(&p[0], "copy id")?),
                    JobId(c::as_u64(&p[1], "job id")?),
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.job_wait = c::get_seq(state, "job_wait")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "job_wait entry")?;
                Ok((
                    JobId(c::as_u64(&p[0], "job id")?),
                    c::as_u64(&p[1], "copies waited on")? as usize,
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.job_failed_copy = c::get_seq(state, "job_failed_copy")?
            .iter()
            .map(|v| Ok(JobId(c::as_u64(v, "job id")?)))
            .collect::<Result<_, CheckpointError>>()?;
        self.job_started = c::get_seq(state, "job_started")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "job_started entry")?;
                Ok((
                    JobId(c::as_u64(&p[0], "job id")?),
                    SimTime::from_nanos(c::as_u64(&p[1], "started at")?),
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.reconstruct_copies = c::get_seq(state, "reconstruct_copies")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "reconstruct_copies entry")?;
                Ok((
                    CopyId(c::as_u64(&p[0], "copy id")?),
                    hdfs_sim::BlockId(c::as_u64(&p[1], "block id")?),
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.reconstructing = c::get_seq(state, "reconstructing")?
            .iter()
            .map(|v| Ok(hdfs_sim::BlockId(c::as_u64(v, "block id")?)))
            .collect::<Result<_, CheckpointError>>()?;
        self.active = c::get_seq(state, "active")?
            .iter()
            .map(|v| string(v, "active path"))
            .collect::<Result<_, _>>()?;
        self.cold_due = c::get_seq(state, "cold_due")?
            .iter()
            .map(|v| {
                let p = parts(v, 2, "cold_due entry")?;
                Ok((
                    string(&p[0], "path")?,
                    SimTime::from_nanos(c::as_u64(&p[1], "cold due at")?),
                ))
            })
            .collect::<Result<_, CheckpointError>>()?;
        self.primed = c::get_bool(state, "primed")?;
        self.tick_count = c::get_u64(state, "tick_count")?;
        self.total_completed = c::get_u64(state, "total_completed")?;
        self.total_failed = c::get_u64(state, "total_failed")?;
        Ok(())
    }
}

/// Apply a compensation action directly (outside Condor: the journal has
/// already recorded the rollback).
impl ErmsManager {
    /// Crash-restart recovery. An exact resume (cluster and manager both
    /// hydrated from the same snapshot) needs nothing more than
    /// `load_state`; a *restart* — a fresh manager process attaching to a
    /// cluster that outlived the old one — must deal with the tasks the
    /// journal shows as in flight at capture time, because their
    /// executors died with the old process. Each job named by
    /// [`condor::journal::Journal::rollback_plan`] is failed (Condor's
    /// retry or rollback machinery then takes over) and any resulting
    /// rollbacks are compensated immediately, so the cluster converges
    /// back to an oracle-clean state under normal ticking. Returns the
    /// number of in-flight tasks recovered.
    pub fn restore(&mut self, cluster: &mut ClusterSim, now: SimTime) -> usize {
        let plan = self.condor.journal().rollback_plan();
        let recovered = plan.len();
        let mut report = TickReport::default();
        for (job, task) in plan {
            // volatile copy tracking died with the old executor
            self.pending_copies.retain(|_, &mut j| j != job);
            self.job_wait.remove(&job);
            self.job_failed_copy.remove(&job);
            trace!(
                self.telemetry,
                now,
                Tel::SelfHeal {
                    action: "crash_restart".into(),
                    detail: task.path().to_string(),
                }
            );
            self.finish(
                cluster,
                now,
                job,
                &task,
                Outcome::Failure("manager crash-restart".into()),
                &mut report,
            );
        }
        let default_r = cluster.config().default_replication;
        for (_job, task) in self.condor.take_rollbacks(now) {
            let inv = task.inverse(default_r);
            self.apply_compensation(cluster, inv);
        }
        recovered
    }

    fn apply_compensation(&mut self, cluster: &mut ClusterSim, task: ErmsTask) {
        match task {
            ErmsTask::Decrease { path, target } | ErmsTask::Increase { path, target } => {
                if let Some(file) = cluster.namespace().resolve(&path) {
                    cluster.set_file_replication(file, target);
                }
            }
            ErmsTask::Decode { path, target } => {
                if let Some(file) = cluster.namespace().resolve(&path) {
                    cluster.mark_decoded(file, target);
                    cluster.set_file_replication(file, target);
                }
            }
            ErmsTask::Encode { .. } => {
                // failed decode leaves the file encoded; nothing to undo
            }
            ErmsTask::Repair { .. } => {
                // repair is idempotent convergence toward the target
                // replica count; an interrupted repair has nothing to undo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdfs_sim::topology::{ClientId, Endpoint};
    use hdfs_sim::{ClusterConfig, ClusterSim};
    use simcore::units::MB;
    use simcore::SimDuration;

    fn cluster() -> ClusterSim {
        ClusterSim::new(
            ClusterConfig::paper_testbed(),
            Box::new(crate::placement::ErmsPlacement::new()),
        )
    }

    fn fast_thresholds() -> crate::Thresholds {
        let mut t = crate::Thresholds::calibrate(4.0);
        t.window = SimDuration::from_secs(600);
        t.cold_age = SimDuration::from_secs(300);
        t
    }

    fn manager(cluster: &mut ClusterSim, standby: Vec<NodeId>) -> ErmsManager {
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby(standby)
            .build()
            .unwrap();
        ErmsManager::new(cfg, cluster).unwrap()
    }

    fn hammer(cluster: &mut ClusterSim, path: &str, readers: usize) {
        for i in 0..readers {
            cluster
                .open_read(Endpoint::Client(ClientId(i as u32 + 100)), path)
                .unwrap();
        }
        cluster.run_until_quiescent();
    }

    #[test]
    fn hot_file_gets_boosted_onto_standby() {
        let mut c = cluster();
        let mut m = manager(&mut c, (10..18).map(NodeId).collect());
        let f = c.create_file("/hot", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40); // 40/r3 ≈ 13 > τ_M=4

        // tick 1: classifies hot, commissions standby, task retries
        let now = c.now();
        let r1 = m.tick(&mut c, now);
        assert_eq!(r1.hot, 1);
        assert!(r1.tasks_submitted >= 1);
        assert!(!r1.commissioned.is_empty(), "standby nodes commissioned");
        // let the standby nodes boot
        c.run_until(c.now() + SimDuration::from_secs(60));
        // tick 2+: the increase lands and copies flow
        for _ in 0..5 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let now = c.now();
        m.tick(&mut c, now); // settle copy completions
        let b = c.namespace().file(f).unwrap().blocks[0];
        let r = c.blockmap().replica_count(b);
        assert!(r > 3, "replication should rise above default, got {r}");
        assert!(m.is_boosted("/hot"));
        // extras landed on standby-pool nodes
        let on_standby = (10..18).map(NodeId).filter(|&n| c.node_holds(n, b)).count();
        assert!(on_standby > 0, "extras parked on standby nodes");
    }

    #[test]
    fn cooled_file_sheds_extras_and_standby_powers_off() {
        let mut c = cluster();
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby((10..18).map(NodeId))
            .encode(false) // keep the cooled file from going cold→encoded
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        let f = c.create_file("/fading", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/fading", 40);
        // boost it
        for _ in 0..8 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until(c.now() + SimDuration::from_secs(40));
        }
        let b = c.namespace().file(f).unwrap().blocks[0];
        assert!(c.blockmap().replica_count(b) > 3, "precondition: boosted");

        // silence: demand expires from the window → cooled → decrease
        c.run_until(c.now() + SimDuration::from_secs(1200));
        for _ in 0..4 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until(c.now() + SimDuration::from_secs(10));
        }
        assert_eq!(c.blockmap().replica_count(b), 3, "back to default");
        assert!(!m.is_boosted("/fading"));
        // drained standby nodes were shut down again
        let serving_standby = (10..18)
            .map(NodeId)
            .filter(|&n| matches!(c.node_state(n), hdfs_sim::datanode::NodeState::Active))
            .count();
        assert_eq!(serving_standby, 0, "standby pool powered back off");
    }

    #[test]
    fn cold_file_gets_encoded_and_saves_storage() {
        let mut c = cluster();
        let mut m = manager(&mut c, Vec::new());
        // 20 blocks × 3 replicas
        let f = c.create_file("/cold", 1280 * MB, 3, None).unwrap();
        let before = c.storage_used();
        // age it far beyond cold_age with zero accesses
        c.run_until(c.now() + SimDuration::from_secs(4000));
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert_eq!(r.cold, 1);
        let now = c.now();
        m.tick(&mut c, now); // idle dispatch executes the encode
        let meta = c.namespace().file(f).unwrap();
        assert!(meta.is_encoded());
        let after = c.storage_used();
        assert!(
            after < before / 2,
            "RS(10,4) ≈ 1.4x vs 3x: {before} -> {after}"
        );
        // 20 blocks → 2 stripes → 8 parities, r=1 data
        assert_eq!(after, (20 + 8) * 64 * MB);
    }

    #[test]
    fn hot_encoded_file_is_decoded_immediately() {
        let mut c = cluster();
        let mut m = manager(&mut c, Vec::new());
        let f = c.create_file("/revived", 64 * MB, 3, None).unwrap();
        // make it cold + encoded
        c.run_until(c.now() + SimDuration::from_secs(4000));
        let now = c.now();
        m.tick(&mut c, now);
        let now = c.now();
        m.tick(&mut c, now);
        assert!(c.namespace().file(f).unwrap().is_encoded());

        // demand returns
        hammer(&mut c, "/revived", 30);
        for _ in 0..6 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let meta = c.namespace().file(f).unwrap();
        assert!(!meta.is_encoded(), "decode restored replication");
        assert!(meta.replication() >= 3);
    }

    #[test]
    fn journal_records_the_whole_story() {
        let mut c = cluster();
        let mut m = manager(&mut c, Vec::new());
        c.create_file("/hot", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40);
        for _ in 0..5 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let journal = m.condor().journal();
        assert!(!journal.is_empty());
        let states = journal.replay();
        assert!(states
            .values()
            .any(|s| *s == condor::journal::ReplayState::Completed));
    }

    #[test]
    fn freshness_boost_prewarms_new_files() {
        let mut c = cluster();
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby([])
            .freshness_boost(true)
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        let f = c.create_file("/new", 64 * MB, 3, None).unwrap();
        // a couple of reads — far below the hot threshold
        hammer(&mut c, "/new", 3);
        for _ in 0..4 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let b = c.namespace().file(f).unwrap().blocks[0];
        assert_eq!(
            c.blockmap().replica_count(b),
            4,
            "create→open pattern should pre-warm by one replica"
        );
    }

    fn healing_manager(cluster: &mut ClusterSim, standby: Vec<NodeId>) -> ErmsManager {
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby(standby)
            .encode(false)
            .self_healing(true)
            .task_timeout(SimDuration::from_secs(60))
            .build()
            .unwrap();
        ErmsManager::new(cfg, cluster).unwrap()
    }

    #[test]
    fn self_healing_restores_replication_after_a_kill() {
        let mut c = cluster();
        let mut m = healing_manager(&mut c, Vec::new());
        let f = c.create_file("/data", 512 * MB, 3, None).unwrap();
        c.run_until_quiescent();

        let victim = c
            .blockmap()
            .replica_nodes(c.namespace().file(f).unwrap().blocks[0])[0];
        let (degraded, lost) = c.kill_node(victim);
        assert!(!degraded.is_empty());
        assert!(lost.is_empty(), "3-way replication survives one kill");

        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(r.repairs_started > 0, "repair scan kicked in");
        for _ in 0..6 {
            c.run_until_quiescent();
            let now = c.now();
            m.tick(&mut c, now);
        }
        for b in &c.namespace().file(f).unwrap().blocks {
            assert_eq!(c.blockmap().replica_count(*b), 3, "{b:?} back to target");
        }
        assert!(c.durability().loss_events().is_empty());
    }

    #[test]
    fn without_self_healing_the_deficit_persists() {
        let mut c = cluster();
        let mut m = manager(&mut c, Vec::new()); // healing off
        let f = c.create_file("/data", 512 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let victim = c
            .blockmap()
            .replica_nodes(c.namespace().file(f).unwrap().blocks[0])[0];
        c.kill_node(victim);
        for _ in 0..4 {
            let now = c.now();
            let r = m.tick(&mut c, now);
            assert_eq!(r.repairs_started, 0);
            c.run_until_quiescent();
        }
        let deficit = c
            .namespace()
            .file(f)
            .unwrap()
            .blocks
            .iter()
            .filter(|&&b| c.blockmap().replica_count(b) < 3)
            .count();
        assert!(deficit > 0, "nobody repaired the killed replicas");
    }

    #[test]
    fn self_healing_reconstructs_dark_encoded_shards() {
        let mut c = cluster();
        // encode via the normal cold path, then enable healing semantics
        // by building a healing manager over the same cluster state
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby([])
            .self_healing(true)
            .task_timeout(SimDuration::from_secs(60))
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        let f = c.create_file("/cold", 1280 * MB, 3, None).unwrap();
        c.run_until(c.now() + SimDuration::from_secs(4000));
        let now = c.now();
        m.tick(&mut c, now);
        let now = c.now();
        m.tick(&mut c, now);
        assert!(c.namespace().file(f).unwrap().is_encoded());

        // kill the single holder of the first data block
        let b0 = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b0)[0];
        let (_, lost) = c.kill_node(victim);
        assert!(lost.contains(&b0), "encoded data block went dark");
        assert!(
            c.durability().open_windows() > 0,
            "dark encoded shard opens an unavailability window"
        );

        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(r.reconstructions > 0, "reconstruction scheduled");
        for _ in 0..6 {
            c.run_until_quiescent();
            let now = c.now();
            m.tick(&mut c, now);
        }
        for b in &c.namespace().file(f).unwrap().blocks {
            assert!(
                c.blockmap().replica_count(*b) >= 1,
                "{b:?} rebuilt from stripe mates"
            );
        }
        assert_eq!(c.durability().open_windows(), 0, "windows closed");
        assert!(c.durability().loss_events().is_empty(), "no data lost");
    }

    #[test]
    fn watchdog_times_out_stuck_tasks() {
        let mut c = cluster();
        let mut m = healing_manager(&mut c, Vec::new());
        c.create_file("/hot", 256 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40);
        // cripple every node so the boost copies crawl (80 MB/s → 0.8)
        for n in c.topology().nodes().collect::<Vec<_>>() {
            c.set_node_slowdown(n, 0.01);
        }
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(r.tasks_submitted >= 1, "boost submitted");
        // past the 60 s timeout, but well short of copy completion
        c.run_until(c.now() + SimDuration::from_secs(70));
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(r.tasks_timed_out >= 1, "watchdog fired: {r:?}");
    }

    #[test]
    fn crashed_standby_is_evicted_and_replaced() {
        let mut c = cluster();
        let standby: Vec<NodeId> = (10..18).map(NodeId).collect();
        let mut m = healing_manager(&mut c, standby.clone());
        c.create_file("/hot", 64 * MB, 3, None).unwrap();
        // 15 direct reads: hot (15/3 > 4) with a modest optimum, so
        // exactly one standby node gets commissioned
        hammer(&mut c, "/hot", 15);
        let now = c.now();
        let r = m.tick(&mut c, now);
        let commissioned = r
            .commissioned
            .first()
            .copied()
            .expect("standby commissioned");
        c.run_until(c.now() + SimDuration::from_secs(60)); // let it boot

        assert!(c.crash_node(commissioned));
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(
            r.standby_evicted.contains(&commissioned),
            "dead standby evicted: {r:?}"
        );
        assert_eq!(
            m.model().state_of(commissioned),
            Some(crate::model::StandbyState::Off),
            "model returns the node to the commission pool"
        );
        // new demand needing standby capacity re-selects a healthy node
        c.create_file("/hot2", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot2", 15);
        let mut replacement = None;
        for _ in 0..6 {
            let now = c.now();
            let r = m.tick(&mut c, now);
            if let Some(&n) = r.commissioned.iter().find(|&&n| n != commissioned) {
                replacement = Some(n);
                break;
            }
            c.run_until(c.now() + SimDuration::from_secs(70));
        }
        assert!(replacement.is_some(), "a healthy standby was re-selected");
    }

    #[test]
    fn new_rejects_unknown_or_occupied_standby_nodes() {
        use crate::config::ConfigError;

        // paper_testbed has 18 datanodes: dn99 does not exist
        let mut c = cluster();
        let cfg = ErmsConfig::builder().standby([NodeId(99)]).build().unwrap();
        assert_eq!(
            ErmsManager::new(cfg, &mut c).err(),
            Some(ConfigError::UnknownStandbyNode {
                node: 99,
                datanodes: 18
            })
        );

        // a node already holding replicas cannot join the standby pool
        let mut c = cluster();
        c.create_file("/data", 512 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let occupied = (0..18)
            .map(NodeId)
            .find(|&n| c.node_block_count(n) > 0)
            .expect("some node holds a replica");
        let cfg = ErmsConfig::builder().standby([occupied]).build().unwrap();
        match ErmsManager::new(cfg, &mut c).err() {
            Some(ConfigError::StandbyHoldsReplicas { node, blocks }) => {
                assert_eq!(node, occupied.0);
                assert!(blocks > 0);
            }
            other => panic!("expected StandbyHoldsReplicas, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_traces_the_boost_decision() {
        let mut c = cluster();
        let mut m = manager(&mut c, Vec::new());
        let sink = simcore::telemetry::TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        m.set_telemetry(sink.clone());
        c.create_file("/hot", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40);
        for _ in 0..5 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let events = sink.drain_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert!(kinds.contains(&"verdict"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"replication_boost"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"task_dispatched"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"copy_completed"), "kinds: {kinds:?}");
        // the boost event carries the formula inputs
        let boost = events
            .iter()
            .find(|e| e.event.kind() == "replication_boost")
            .unwrap();
        let line = boost.to_json_line();
        assert!(line.contains("\"path\":\"/hot\""), "{line}");
        assert!(line.contains("\"sessions\":"), "{line}");
    }

    #[test]
    fn stable_files_leave_the_visit_set() {
        let mut c = cluster();
        let mut t = crate::Thresholds::calibrate(4.0);
        t.window = SimDuration::from_secs(600);
        t.cold_age = SimDuration::from_secs(7200);
        let cfg = ErmsConfig::builder()
            .thresholds(t)
            .standby([])
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        c.create_file("/idle", 64 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let now = c.now();
        let r1 = m.tick(&mut c, now);
        assert_eq!(r1.files_judged, 1, "first tick is a full scan");
        // past the CEP window (creation line expired), well short of cold
        c.run_until(c.now() + SimDuration::from_secs(700));
        let now = c.now();
        let r2 = m.tick(&mut c, now);
        assert_eq!(r2.files_judged, 1, "active until observed stable");
        let now = c.now();
        let r3 = m.tick(&mut c, now);
        assert_eq!(r3.files_judged, 0, "stable file skipped");
        // touching it puts it back under observation
        c.open_read(Endpoint::Client(ClientId(7)), "/idle").unwrap();
        c.run_until_quiescent();
        let now = c.now();
        let r4 = m.tick(&mut c, now);
        assert_eq!(r4.files_judged, 1, "dirty file revisited");
    }

    #[test]
    fn deleting_a_file_prunes_manager_bookkeeping() {
        let mut c = cluster();
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .standby([])
            .encode(false)
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        c.create_file("/doomed", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/doomed", 40);
        for _ in 0..5 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        assert!(m.is_boosted("/doomed"), "precondition: file got boosted");
        // silence starts a cooled streak (patience 3, so no demote yet)
        c.run_until(c.now() + SimDuration::from_secs(1200));
        let now = c.now();
        m.tick(&mut c, now);
        assert!(
            m.cooled_streak.contains_key("/doomed"),
            "precondition: streak accruing"
        );
        assert!(m.active.contains("/doomed"));

        assert!(c.delete_file("/doomed"));
        let now = c.now();
        m.tick(&mut c, now);
        assert!(!m.boosted.contains("/doomed"), "boost pruned");
        assert!(!m.cooled_streak.contains_key("/doomed"), "streak pruned");
        assert!(!m.active.contains("/doomed"), "visit set pruned");
        assert!(!m.cold_due.contains_key("/doomed"), "cold schedule pruned");
        assert!(
            m.inflight.keys().all(|(p, _)| p != "/doomed"),
            "task dedup keys pruned"
        );
    }

    #[test]
    fn advertised_free_disk_is_bytes_not_truncated_mib() {
        use hdfs_sim::ClusterConfig;

        // 4-node cluster where every node ends up with 512 bytes free:
        // whole-MiB truncation would advertise FreeDisk = 0 for all of
        // them and starve rank-by-free-disk matchmaking of any signal.
        let cfg = ClusterConfig {
            disk_capacity: 64 * MB + 512,
            ..ClusterConfig::tiny()
        };
        let mut c = ClusterSim::new(cfg, Box::new(crate::placement::ErmsPlacement::new()));
        let mut m = manager(&mut c, Vec::new());
        c.create_file("/fill", 64 * MB, 4, None).unwrap();
        c.run_until_quiescent();
        let now = c.now();
        m.tick(&mut c, now);
        for view in c.node_views(None, None) {
            let ad = m.matchmaker.get(&view.id.to_string()).expect("node ad");
            let advertised = ad.get("FreeDisk").unwrap().as_f64().unwrap();
            assert_eq!(advertised, view.free as f64, "FreeDisk is in bytes");
            if view.free > 0 && view.free < 1 << 20 {
                assert!(advertised > 0.0, "sub-MiB free must not advertise 0");
            }
        }
        let holders = c
            .node_views(None, None)
            .into_iter()
            .filter(|v| v.free == 512)
            .count();
        assert!(holders > 0, "at least one node is down to 512 free bytes");
    }

    #[test]
    fn quiet_cluster_does_nothing() {
        let mut c = cluster();
        let mut m = manager(&mut c, (10..18).map(NodeId).collect());
        c.create_file("/idle", 64 * MB, 3, None).unwrap();
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert_eq!(r.hot + r.cooled + r.cold, 0);
        assert_eq!(r.tasks_submitted, 0);
        assert!(r.commissioned.is_empty());
    }

    /// Drive a manager into a rich state (boosted file, commissioned
    /// standby, copies in flight), checkpoint it through a real JSON
    /// cycle, and hydrate a freshly-constructed manager: every piece of
    /// control-loop bookkeeping must survive.
    #[test]
    fn checkpoint_round_trip_restores_every_bookkeeping_set() {
        use checkpoint::Checkpointable;
        let standby: Vec<NodeId> = (10..18).map(NodeId).collect();
        let mut c = cluster();
        let mut m = manager(&mut c, standby.clone());
        c.create_file("/hot", 64 * MB, 3, None).unwrap();
        c.create_file("/quiet", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40);
        for _ in 0..6 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until(c.now() + SimDuration::from_secs(30));
        }

        let json = serde_json::to_string(&m.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut scratch = cluster();
        let mut fresh = manager(&mut scratch, standby);
        fresh.load_state(&back).unwrap();

        assert_eq!(fresh.boosted, m.boosted);
        assert_eq!(fresh.cooled_streak, m.cooled_streak);
        assert_eq!(fresh.inflight, m.inflight);
        assert_eq!(fresh.pending_copies, m.pending_copies);
        assert_eq!(fresh.job_wait, m.job_wait);
        assert_eq!(fresh.job_failed_copy, m.job_failed_copy);
        assert_eq!(fresh.job_started, m.job_started);
        assert_eq!(fresh.reconstruct_copies, m.reconstruct_copies);
        assert_eq!(fresh.reconstructing, m.reconstructing);
        assert_eq!(fresh.active, m.active);
        assert_eq!(fresh.cold_due, m.cold_due);
        assert_eq!(fresh.primed, m.primed);
        assert_eq!(fresh.tick_count, m.tick_count);
        assert_eq!(fresh.total_completed, m.total_completed);
        assert_eq!(fresh.total_failed, m.total_failed);
        assert_eq!(fresh.judge.events_seen(), m.judge.events_seen());
        assert_eq!(fresh.model.powered_on(), m.model.powered_on());
        assert_eq!(fresh.condor.pending(), m.condor.pending());
        assert_eq!(
            fresh.condor.journal().rollback_plan(),
            m.condor.journal().rollback_plan()
        );
    }

    /// A fresh manager process attaches to a cluster that outlived the
    /// old one: `restore` fails every journal-in-flight task, then
    /// normal ticking retries it and the boost still lands.
    #[test]
    fn crash_restart_recovers_inflight_tasks_via_rollback_plan() {
        use checkpoint::Checkpointable;
        let standby: Vec<NodeId> = (10..18).map(NodeId).collect();
        let mut c = cluster();
        let mut m = manager(&mut c, standby.clone());
        c.create_file("/hot", 64 * MB, 3, None).unwrap();
        hammer(&mut c, "/hot", 40);
        // drive until an Increase is actually awaiting copies, then
        // capture the manager mid-flight
        let mut saved = None;
        for _ in 0..12 {
            let now = c.now();
            m.tick(&mut c, now);
            if !m.job_wait.is_empty() {
                saved = Some(m.save_state());
                break;
            }
            c.run_until(c.now() + SimDuration::from_secs(30));
        }
        let saved = saved.expect("an increase task went in flight");
        drop(m); // the old manager process dies here

        let json = serde_json::to_string(&saved).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        // construction happens against a scratch cluster so it cannot
        // disturb the live one (new() powers standby nodes off)
        let mut scratch = cluster();
        let mut m2 = manager(&mut scratch, standby);
        m2.load_state(&back).unwrap();
        assert!(
            !m2.condor.journal().rollback_plan().is_empty(),
            "precondition: the journal names the dead in-flight task"
        );

        let now = c.now();
        let recovered = m2.restore(&mut c, now);
        assert!(recovered >= 1, "at least the increase was recovered");
        assert!(m2.condor.journal().rollback_plan().is_empty());
        assert!(m2.pending_copies.is_empty() && m2.job_wait.is_empty());

        // the restarted manager converges: the failed task retries (or
        // the old copies land on their own) and the boost materialises.
        // Quiescent draining (not wall-clock advances) keeps the demand
        // inside the CEP window so the file does not legitimately cool.
        for _ in 0..10 {
            let now = c.now();
            m2.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let now = c.now();
        m2.tick(&mut c, now); // settle the last copy completions
        let f = c.namespace().resolve("/hot").unwrap();
        let b = c.namespace().file(f).unwrap().blocks[0];
        assert!(
            c.blockmap().replica_count(b) > 3,
            "boost landed after restart, got {}",
            c.blockmap().replica_count(b)
        );
    }

    #[test]
    fn scrubber_detects_quarantines_and_repairs_corruption() {
        let mut c = cluster();
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .scrubber(true)
            .scrub_blocks_per_tick(64)
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        let f = c.create_file("/data", 64 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        assert!(c.corrupt_replica(victim, 0, false));
        assert_eq!(c.latent_corrupt_count(), 1);

        // tick 1: the scrub sweep finds the corrupt replica, quarantines
        // it (dropping it from the blockmap) and submits a Repair task
        let now = c.now();
        let r1 = m.tick(&mut c, now);
        assert!(r1.scrub_scanned > 0, "scrubber scanned blocks");
        assert_eq!(r1.corruptions_found, 1);
        assert_eq!(c.latent_corrupt_count(), 0, "corruption detected");
        assert!(!c.blockmap().holds(b, victim), "quarantined replica gone");
        assert_eq!(c.blockmap().replica_count(b), 2);

        // subsequent ticks: the Repair task re-copies from a clean source
        for _ in 0..6 {
            let now = c.now();
            m.tick(&mut c, now);
            c.run_until_quiescent();
        }
        let now = c.now();
        m.tick(&mut c, now); // settle copy completions
        assert_eq!(c.blockmap().replica_count(b), 3, "replica re-copied");
        assert!(
            c.corrupt_blocks_pending_repair().is_empty(),
            "quarantine cleared after verified repair"
        );
    }

    fn scrub_manager(c: &mut ClusterSim) -> ErmsManager {
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .scrubber(true)
            .scrub_blocks_per_tick(64)
            .task_timeout(SimDuration::from_secs(60))
            .build()
            .unwrap();
        ErmsManager::new(cfg, c).unwrap()
    }

    #[test]
    fn repair_watchdog_fires_without_self_healing() {
        let mut c = cluster();
        let mut m = scrub_manager(&mut c);
        let f = c.create_file("/data", 64 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        assert!(c.corrupt_replica(victim, 0, false));
        // cripple the cluster so the repair copy crawls
        for n in c.topology().nodes().collect::<Vec<_>>() {
            c.set_node_slowdown(n, 0.01);
        }
        let now = c.now();
        let r = m.tick(&mut c, now); // scrub detects + submits repair
        assert_eq!(r.corruptions_found, 1);
        let now = c.now();
        m.tick(&mut c, now); // repair executes, copy goes in flight
                             // past the 60 s timeout, far short of copy completion
        c.run_until(c.now() + SimDuration::from_secs(70));
        let now = c.now();
        let r = m.tick(&mut c, now);
        assert!(
            r.tasks_timed_out >= 1,
            "scrubber-only watchdog fired: {r:?}"
        );
    }

    #[test]
    fn repair_retries_after_target_dies_mid_copy() {
        let mut c = cluster();
        let mut m = scrub_manager(&mut c);
        let f = c.create_file("/data", 64 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        let b = c.namespace().file(f).unwrap().blocks[0];
        let victim = c.blockmap().replica_nodes(b)[0];
        assert!(c.corrupt_replica(victim, 0, false));
        let now = c.now();
        let r = m.tick(&mut c, now); // detect + quarantine + submit
        assert_eq!(r.corruptions_found, 1);
        let now = c.now();
        m.tick(&mut c, now); // repair executes, copy staged
                             // into the transfer window, then kill the copy's landing node:
                             // torn-crash non-holders until the in-flight copy registers
        c.run_until(c.now() + SimDuration::from_millis(3050));
        let holders = c.blockmap().replica_nodes(b).to_vec();
        let latent_before = c.latent_corrupt_count();
        let mut died = None;
        for i in 0..c.config().datanodes {
            let n = NodeId(i);
            if holders.contains(&n) {
                continue;
            }
            assert!(c.crash_node_torn(n));
            if c.latent_corrupt_count() > latent_before {
                died = Some(n);
                break;
            }
        }
        assert!(died.is_some(), "the repair copy's target was mid-copy");
        // the failed copy fails the task; backoff retries it onto a
        // healthy node and the quarantine eventually clears
        let mut failed_seen = 0usize;
        for _ in 0..12 {
            c.run_until(c.now() + SimDuration::from_secs(30));
            let now = c.now();
            let r = m.tick(&mut c, now);
            failed_seen += r.tasks_failed + r.tasks_timed_out;
            if c.corrupt_blocks_pending_repair().is_empty() && c.blockmap().replica_count(b) >= 3 {
                break;
            }
        }
        assert!(failed_seen >= 1, "first repair attempt failed");
        assert_eq!(c.blockmap().replica_count(b), 3, "repair landed on retry");
        assert!(c.corrupt_blocks_pending_repair().is_empty());
    }

    #[test]
    fn scrub_budget_sheds_under_queue_pressure() {
        let mut c = cluster();
        let cfg = ErmsConfig::builder()
            .thresholds(fast_thresholds())
            .scrubber(true)
            .scrub_blocks_per_tick(8)
            .build()
            .unwrap();
        let mut m = ErmsManager::new(cfg, &mut c).unwrap();
        c.create_file("/data", 640 * MB, 3, None).unwrap();
        c.run_until_quiescent();
        // saturate the Condor queue far beyond twice the concurrency cap
        let now = c.now();
        for i in 0..(m.cfg.max_concurrent_tasks * 2 + 4) {
            m.condor.submit(
                now,
                ErmsTask::Increase {
                    path: format!("/ghost{i}"),
                    target: 4,
                },
                Priority::WhenIdle,
            );
        }
        let queued = m.condor.pending();
        assert!(queued >= m.cfg.max_concurrent_tasks * 2);
        let mut report = TickReport::default();
        m.scrub_pass(&mut c, now, &mut report);
        assert_eq!(report.scrub_scanned, 0, "budget fully shed under pressure");
    }

    #[test]
    fn task_codec_rejects_unknown_kind() {
        use checkpoint::codec::MapBuilder;
        let bad = MapBuilder::new()
            .str("kind", "compress")
            .str("path", "/f")
            .build();
        assert!(matches!(
            super::ck::task_back(&bad),
            Err(checkpoint::CheckpointError::Corrupt(_))
        ));
    }
}
