//! ERMS configuration.

use crate::judge::JudgeBackend;
use crate::replication::IncreaseStrategy;
use crate::thresholds::Thresholds;
use erasure::StripeLayout;
use hdfs_sim::NodeId;
use simcore::SimDuration;
use std::fmt;

/// Default seed for learned-judge exploration streams. A fixed
/// constant, not randomness: runs that never set
/// [`ErmsConfigBuilder::judge_seed`] stay reproducible by construction.
pub const DEFAULT_JUDGE_SEED: u64 = 0x0E1A_571C_1EA2;

/// Why an [`ErmsConfig`] (or its [`Thresholds`]) was rejected.
///
/// Marked `#[non_exhaustive]`: later validation rules (the standby
/// checks arrived after the threshold ones) add variants without a
/// breaking release, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The ordering `0 < τ_m < τ_d < τ_M` does not hold.
    ThresholdOrdering {
        tau_cold: f64,
        tau_cooled: f64,
        tau_hot: f64,
    },
    /// ε must lie strictly inside `(0, 1)`.
    EpsilonOutOfRange(f64),
    /// The soft per-block bound `M_m` must be below the burst bound `M_M`.
    BlockBoundsInverted { warm: f64, burst: f64 },
    /// The CEP window `t_w` must be positive.
    ZeroWindow,
    /// The replication ceiling must be positive.
    ZeroMaxReplication,
    /// A Condor concurrency/retry knob must be positive.
    ZeroCondorKnob(&'static str),
    /// The repair-scan cadence must be at least one tick.
    ZeroRepairScanTicks,
    /// Self-healing needs a positive task timeout.
    ZeroTaskTimeout,
    /// The scrubber is enabled with a zero per-tick block budget, so it
    /// would never scan anything.
    ZeroScrubBudget,
    /// The control loop needs at least one shard to partition files
    /// into.
    ZeroShards,
    /// Telemetry batching needs a positive flush threshold (1 =
    /// unbatched, emit straight through).
    ZeroTelemetryBatch,
    /// A configured standby node id does not exist in the cluster.
    UnknownStandbyNode { node: u32, datanodes: u32 },
    /// A configured standby node already holds block replicas, so
    /// designating it would silently mis-park data on a node about to
    /// power off.
    StandbyHoldsReplicas { node: u32, blocks: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ThresholdOrdering {
                tau_cold,
                tau_cooled,
                tau_hot,
            } => write!(
                f,
                "need 0 < τ_m({tau_cold}) < τ_d({tau_cooled}) < τ_M({tau_hot})"
            ),
            ConfigError::EpsilonOutOfRange(e) => write!(f, "ε {e} outside (0, 1)"),
            ConfigError::BlockBoundsInverted { warm, burst } => {
                write!(f, "M_m {warm} must be below M_M {burst}")
            }
            ConfigError::ZeroWindow => write!(f, "CEP window must be positive"),
            ConfigError::ZeroMaxReplication => write!(f, "max_replication must be positive"),
            ConfigError::ZeroCondorKnob(knob) => write!(f, "{knob} must be positive"),
            ConfigError::ZeroRepairScanTicks => write!(f, "repair_scan_ticks must be positive"),
            ConfigError::ZeroTaskTimeout => {
                write!(f, "task_timeout must be positive when self-healing")
            }
            ConfigError::ZeroScrubBudget => {
                write!(f, "scrub_blocks_per_tick must be positive when scrubbing")
            }
            ConfigError::ZeroShards => write!(f, "shards must be positive"),
            ConfigError::ZeroTelemetryBatch => {
                write!(f, "telemetry_batch must be positive (1 = unbatched)")
            }
            ConfigError::UnknownStandbyNode { node, datanodes } => {
                write!(
                    f,
                    "standby node dn{node} outside cluster of {datanodes} datanodes"
                )
            }
            ConfigError::StandbyHoldsReplicas { node, blocks } => write!(
                f,
                "standby node dn{node} already holds {blocks} block replica(s)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything the manager needs to know at construction.
#[derive(Debug, Clone)]
pub struct ErmsConfig {
    pub thresholds: Thresholds,
    /// Nodes designated standby (empty = all-active baseline model).
    pub standby: Vec<NodeId>,
    /// Erasure layout applied to cold files.
    pub cold_stripe: StripeLayout,
    /// Ceiling on any file's replication factor.
    pub max_replication: usize,
    /// How replica increases approach the optimum (Fig. 7; the paper
    /// concludes Direct and ERMS uses it).
    pub strategy: IncreaseStrategy,
    /// Master switch for cold-data encoding.
    pub enable_encode: bool,
    /// Power drained standby nodes off for energy saving.
    pub enable_standby_shutdown: bool,
    /// Condor concurrency / retry knobs.
    pub max_concurrent_tasks: usize,
    pub max_task_attempts: u32,
    /// Consecutive Cooled verdicts required before a boosted file is
    /// demoted (hysteresis: prevents boost/shed thrash when a hot file's
    /// demand briefly dips between job waves, which would re-copy every
    /// extra replica).
    pub cooled_patience: u32,
    /// Experimental (paper future work): pre-warm files whose creation
    /// is immediately followed by reads (the CEP `create → open`
    /// correlation pattern) with one extra replica before Formula (1)
    /// trips.
    pub enable_freshness_boost: bool,
    /// Self-healing: repair under-replication, reconstruct dark encoded
    /// shards, evict crashed standby nodes and time out stuck tasks on
    /// every tick. Off by default — the figure harness flips it to show
    /// the durability delta under identical churn.
    pub enable_self_healing: bool,
    /// Run the repair scan every this many ticks (≥ 1).
    pub repair_scan_ticks: u32,
    /// Fail an ERMS task whose replica copies have been in flight
    /// longer than this (stalled behind a dead endpoint or a downed
    /// rack uplink); Condor's retry/backoff then takes over.
    pub task_timeout: SimDuration,
    /// Background scrubber: checksum-verify a budgeted slice of the
    /// namespace on every tick, quarantine corrupt copies and schedule
    /// verified repair through Condor. Off by default — corruption-free
    /// runs stay byte-identical.
    pub enable_scrubber: bool,
    /// Scrub budget: blocks checksummed per tick (≥ 1 when scrubbing).
    /// The budget is shed — halved, then dropped to zero — while the
    /// scheduler is saturated, so a corruption storm can never stall
    /// the control loop behind an unbounded repair backlog.
    pub scrub_blocks_per_tick: u32,
    /// Classify every namespace file on every tick instead of only the
    /// dirty/active subset. The incremental visit set is semantically
    /// equivalent (skipped files are exactly those a full scan would
    /// judge Normal with zero windowed demand and no pending task), so
    /// this knob exists for A/B verification and benchmarking, not
    /// correctness.
    pub full_rescan: bool,
    /// Deterministic shards the judge pass is partitioned into: files
    /// split by `FileId % shards`, classified shard by shard, verdicts
    /// merged back in `FileId` order. Any shard count produces
    /// byte-identical traces and actions to `shards = 1` (the default);
    /// the knob bounds per-pass working-set size at scale.
    pub shards: usize,
    /// Judge-pass telemetry events are buffered and flushed to the sink
    /// in batches of this size (1 = unbatched, emit per event). Event
    /// order, and therefore the trace bytes, are unchanged — batching
    /// only amortizes sink touches.
    pub telemetry_batch: usize,
    /// Which judge backend classifies files: the paper's threshold
    /// rules (default), or one of the learned judges from the `policy`
    /// crate. The audit→CEP pipeline, sharded judge pass and
    /// `FileId`-ordered merge are identical for every backend; only the
    /// per-file decision differs.
    pub judge_backend: JudgeBackend,
    /// Seed for learned-backend exploration streams (ignored by the
    /// rules backend). Fixed default so unseeded runs stay
    /// deterministic.
    pub judge_seed: u64,
}

impl ErmsConfig {
    /// The paper's deployment shape on an 18-node cluster: 10 active,
    /// 8 standby, RS(10,4) cold code, τ_M = 8.
    pub fn paper_default() -> Self {
        ErmsConfig {
            thresholds: Thresholds::default(),
            standby: (10..18).map(NodeId).collect(),
            cold_stripe: StripeLayout::paper_default(),
            max_replication: 18,
            strategy: IncreaseStrategy::Direct,
            enable_encode: true,
            enable_standby_shutdown: true,
            max_concurrent_tasks: 8,
            max_task_attempts: 10,
            cooled_patience: 3,
            enable_freshness_boost: false,
            enable_self_healing: false,
            repair_scan_ticks: 1,
            task_timeout: SimDuration::from_mins(30),
            enable_scrubber: false,
            scrub_blocks_per_tick: 16,
            full_rescan: false,
            shards: 1,
            telemetry_batch: 1,
            judge_backend: JudgeBackend::Rules,
            judge_seed: DEFAULT_JUDGE_SEED,
        }
    }

    /// ERMS logic over an all-active cluster (ablation baseline).
    pub fn all_active() -> Self {
        ErmsConfig {
            standby: Vec::new(),
            ..Self::paper_default()
        }
    }

    /// Start a fluent [`ErmsConfigBuilder`] seeded from
    /// [`paper_default`](Self::paper_default).
    pub fn builder() -> ErmsConfigBuilder {
        ErmsConfigBuilder::paper_default()
    }

    pub fn validate(&self) -> Result<(), ConfigError> {
        self.thresholds.validate()?;
        if self.max_replication == 0 {
            return Err(ConfigError::ZeroMaxReplication);
        }
        if self.max_concurrent_tasks == 0 {
            return Err(ConfigError::ZeroCondorKnob("max_concurrent_tasks"));
        }
        if self.max_task_attempts == 0 {
            return Err(ConfigError::ZeroCondorKnob("max_task_attempts"));
        }
        if self.repair_scan_ticks == 0 {
            return Err(ConfigError::ZeroRepairScanTicks);
        }
        if (self.enable_self_healing || self.enable_scrubber) && self.task_timeout.is_zero() {
            return Err(ConfigError::ZeroTaskTimeout);
        }
        if self.enable_scrubber && self.scrub_blocks_per_tick == 0 {
            return Err(ConfigError::ZeroScrubBudget);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.telemetry_batch == 0 {
            return Err(ConfigError::ZeroTelemetryBatch);
        }
        Ok(())
    }
}

/// Fluent builder for [`ErmsConfig`].
///
/// Starts from a preset ([`paper_default`](Self::paper_default) or
/// [`all_active`](Self::all_active)), lets callers override individual
/// knobs, and validates the result once in [`build`](Self::build) —
/// call sites no longer spell out every field with a struct literal and
/// cannot skip validation.
///
/// ```
/// use erms::{ErmsConfig, Thresholds};
///
/// let cfg = ErmsConfig::builder()
///     .thresholds(Thresholds::default().with_tau_hot(12.0))
///     .max_replication(12)
///     .self_healing(true)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.max_replication, 12);
/// ```
#[derive(Debug, Clone)]
pub struct ErmsConfigBuilder {
    cfg: ErmsConfig,
}

impl ErmsConfigBuilder {
    /// Builder seeded with the paper's 18-node deployment shape.
    pub fn paper_default() -> Self {
        ErmsConfigBuilder {
            cfg: ErmsConfig::paper_default(),
        }
    }

    /// Builder seeded with the all-active ablation baseline.
    pub fn all_active() -> Self {
        ErmsConfigBuilder {
            cfg: ErmsConfig::all_active(),
        }
    }

    pub fn thresholds(mut self, t: Thresholds) -> Self {
        self.cfg.thresholds = t;
        self
    }

    pub fn standby<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        self.cfg.standby = nodes.into_iter().collect();
        self
    }

    pub fn cold_stripe(mut self, layout: StripeLayout) -> Self {
        self.cfg.cold_stripe = layout;
        self
    }

    pub fn max_replication(mut self, r: usize) -> Self {
        self.cfg.max_replication = r;
        self
    }

    pub fn strategy(mut self, s: IncreaseStrategy) -> Self {
        self.cfg.strategy = s;
        self
    }

    pub fn encode(mut self, on: bool) -> Self {
        self.cfg.enable_encode = on;
        self
    }

    pub fn standby_shutdown(mut self, on: bool) -> Self {
        self.cfg.enable_standby_shutdown = on;
        self
    }

    pub fn max_concurrent_tasks(mut self, n: usize) -> Self {
        self.cfg.max_concurrent_tasks = n;
        self
    }

    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.cfg.max_task_attempts = n;
        self
    }

    pub fn cooled_patience(mut self, ticks: u32) -> Self {
        self.cfg.cooled_patience = ticks;
        self
    }

    pub fn freshness_boost(mut self, on: bool) -> Self {
        self.cfg.enable_freshness_boost = on;
        self
    }

    pub fn self_healing(mut self, on: bool) -> Self {
        self.cfg.enable_self_healing = on;
        self
    }

    pub fn repair_scan_ticks(mut self, ticks: u32) -> Self {
        self.cfg.repair_scan_ticks = ticks;
        self
    }

    pub fn task_timeout(mut self, d: SimDuration) -> Self {
        self.cfg.task_timeout = d;
        self
    }

    pub fn full_rescan(mut self, on: bool) -> Self {
        self.cfg.full_rescan = on;
        self
    }

    pub fn scrubber(mut self, on: bool) -> Self {
        self.cfg.enable_scrubber = on;
        self
    }

    pub fn scrub_blocks_per_tick(mut self, blocks: u32) -> Self {
        self.cfg.scrub_blocks_per_tick = blocks;
        self
    }

    /// Partition the judge pass into `n` deterministic shards (see
    /// [`ErmsConfig::shards`]). `build` rejects 0.
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Flush judge-pass telemetry in batches of `n` events (see
    /// [`ErmsConfig::telemetry_batch`]). `build` rejects 0.
    pub fn telemetry_batch(mut self, n: usize) -> Self {
        self.cfg.telemetry_batch = n;
        self
    }

    /// Select the judge backend (see [`ErmsConfig::judge_backend`]).
    pub fn judge_backend(mut self, backend: JudgeBackend) -> Self {
        self.cfg.judge_backend = backend;
        self
    }

    /// Seed the learned-backend exploration streams (see
    /// [`ErmsConfig::judge_seed`]).
    pub fn judge_seed(mut self, seed: u64) -> Self {
        self.cfg.judge_seed = seed;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ErmsConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = ErmsConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.standby.len(), 8);
        assert_eq!(c.cold_stripe, StripeLayout::new(10, 4));
        assert_eq!(c.strategy, IncreaseStrategy::Direct);
    }

    #[test]
    fn all_active_has_no_standby() {
        let c = ErmsConfig::all_active();
        assert!(c.standby.is_empty());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zeroes() {
        let mut c = ErmsConfig::paper_default();
        c.max_replication = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxReplication));
        let mut c = ErmsConfig::paper_default();
        c.max_concurrent_tasks = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroCondorKnob("max_concurrent_tasks"))
        );
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = ErmsConfig::builder()
            .max_replication(12)
            .standby([NodeId(8), NodeId(9)])
            .self_healing(true)
            .repair_scan_ticks(5)
            .build()
            .expect("valid");
        assert_eq!(cfg.max_replication, 12);
        assert_eq!(cfg.standby, vec![NodeId(8), NodeId(9)]);
        assert!(cfg.enable_self_healing);
        assert_eq!(cfg.repair_scan_ticks, 5);

        let err = ErmsConfig::builder()
            .repair_scan_ticks(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroRepairScanTicks);
    }

    #[test]
    fn scrubber_needs_a_positive_budget() {
        let cfg = ErmsConfig::builder()
            .scrubber(true)
            .scrub_blocks_per_tick(8)
            .build()
            .expect("valid");
        assert!(cfg.enable_scrubber);
        assert_eq!(cfg.scrub_blocks_per_tick, 8);

        let err = ErmsConfig::builder()
            .scrubber(true)
            .scrub_blocks_per_tick(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroScrubBudget);

        // budget only matters when the scrubber is on
        assert!(ErmsConfig::builder()
            .scrub_blocks_per_tick(0)
            .build()
            .is_ok());
    }

    #[test]
    fn shards_and_telemetry_batch_default_off_and_validate() {
        let cfg = ErmsConfig::builder().build().unwrap();
        assert_eq!(cfg.shards, 1, "default is unsharded");
        assert_eq!(cfg.telemetry_batch, 1, "default is unbatched");

        let cfg = ErmsConfig::builder()
            .shards(4)
            .telemetry_batch(256)
            .build()
            .expect("valid");
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.telemetry_batch, 256);

        let err = ErmsConfig::builder().shards(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroShards);
        let err = ErmsConfig::builder()
            .telemetry_batch(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTelemetryBatch);
        assert!(err.to_string().contains("telemetry_batch"));
    }

    #[test]
    fn judge_backend_defaults_to_rules_and_is_selectable() {
        let cfg = ErmsConfig::builder().build().unwrap();
        assert_eq!(cfg.judge_backend, JudgeBackend::Rules);
        assert_eq!(cfg.judge_seed, DEFAULT_JUDGE_SEED);

        let cfg = ErmsConfig::builder()
            .judge_backend(JudgeBackend::QLearning)
            .judge_seed(7)
            .build()
            .expect("valid");
        assert_eq!(cfg.judge_backend, JudgeBackend::QLearning);
        assert_eq!(cfg.judge_seed, 7);
    }

    #[test]
    fn builder_presets_match_constructors() {
        let built = ErmsConfigBuilder::all_active().build().unwrap();
        assert!(built.standby.is_empty());
        let paper = ErmsConfig::builder().build().unwrap();
        assert_eq!(paper.standby.len(), 8);
    }

    #[test]
    fn config_error_displays_and_is_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::UnknownStandbyNode {
            node: 30,
            datanodes: 18,
        });
        let msg = err.to_string();
        assert!(msg.contains("dn30"), "{msg}");
        assert!(msg.contains("18"), "{msg}");
    }
}
