//! ERMS configuration.

use crate::replication::IncreaseStrategy;
use crate::thresholds::Thresholds;
use erasure::StripeLayout;
use hdfs_sim::NodeId;
use simcore::SimDuration;

/// Everything the manager needs to know at construction.
#[derive(Debug, Clone)]
pub struct ErmsConfig {
    pub thresholds: Thresholds,
    /// Nodes designated standby (empty = all-active baseline model).
    pub standby: Vec<NodeId>,
    /// Erasure layout applied to cold files.
    pub cold_stripe: StripeLayout,
    /// Ceiling on any file's replication factor.
    pub max_replication: usize,
    /// How replica increases approach the optimum (Fig. 7; the paper
    /// concludes Direct and ERMS uses it).
    pub strategy: IncreaseStrategy,
    /// Master switch for cold-data encoding.
    pub enable_encode: bool,
    /// Power drained standby nodes off for energy saving.
    pub enable_standby_shutdown: bool,
    /// Condor concurrency / retry knobs.
    pub max_concurrent_tasks: usize,
    pub max_task_attempts: u32,
    /// Consecutive Cooled verdicts required before a boosted file is
    /// demoted (hysteresis: prevents boost/shed thrash when a hot file's
    /// demand briefly dips between job waves, which would re-copy every
    /// extra replica).
    pub cooled_patience: u32,
    /// Experimental (paper future work): pre-warm files whose creation
    /// is immediately followed by reads (the CEP `create → open`
    /// correlation pattern) with one extra replica before Formula (1)
    /// trips.
    pub enable_freshness_boost: bool,
    /// Self-healing: repair under-replication, reconstruct dark encoded
    /// shards, evict crashed standby nodes and time out stuck tasks on
    /// every tick. Off by default — the figure harness flips it to show
    /// the durability delta under identical churn.
    pub enable_self_healing: bool,
    /// Run the repair scan every this many ticks (≥ 1).
    pub repair_scan_ticks: u32,
    /// Fail an ERMS task whose replica copies have been in flight
    /// longer than this (stalled behind a dead endpoint or a downed
    /// rack uplink); Condor's retry/backoff then takes over.
    pub task_timeout: SimDuration,
}

impl ErmsConfig {
    /// The paper's deployment shape on an 18-node cluster: 10 active,
    /// 8 standby, RS(10,4) cold code, τ_M = 8.
    pub fn paper_default() -> Self {
        ErmsConfig {
            thresholds: Thresholds::default(),
            standby: (10..18).map(NodeId).collect(),
            cold_stripe: StripeLayout::paper_default(),
            max_replication: 18,
            strategy: IncreaseStrategy::Direct,
            enable_encode: true,
            enable_standby_shutdown: true,
            max_concurrent_tasks: 8,
            max_task_attempts: 10,
            cooled_patience: 3,
            enable_freshness_boost: false,
            enable_self_healing: false,
            repair_scan_ticks: 1,
            task_timeout: SimDuration::from_mins(30),
        }
    }

    /// ERMS logic over an all-active cluster (ablation baseline).
    pub fn all_active() -> Self {
        ErmsConfig {
            standby: Vec::new(),
            ..Self::paper_default()
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.thresholds.validate()?;
        if self.max_replication == 0 {
            return Err("max_replication must be positive".into());
        }
        if self.max_concurrent_tasks == 0 || self.max_task_attempts == 0 {
            return Err("condor knobs must be positive".into());
        }
        if self.repair_scan_ticks == 0 {
            return Err("repair_scan_ticks must be positive".into());
        }
        if self.enable_self_healing && self.task_timeout.is_zero() {
            return Err("task_timeout must be positive when self-healing".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = ErmsConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.standby.len(), 8);
        assert_eq!(c.cold_stripe, StripeLayout::new(10, 4));
        assert_eq!(c.strategy, IncreaseStrategy::Direct);
    }

    #[test]
    fn all_active_has_no_standby() {
        let c = ErmsConfig::all_active();
        assert!(c.standby.is_empty());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zeroes() {
        let mut c = ErmsConfig::paper_default();
        c.max_replication = 0;
        assert!(c.validate().is_err());
        let mut c = ErmsConfig::paper_default();
        c.max_concurrent_tasks = 0;
        assert!(c.validate().is_err());
    }
}
