//! Algorithm 1: the ERMS replica placement strategy.
//!
//! The paper's placement rules, from Section III.D:
//!
//! * **Extra data replicas** (the block already has ≥ the default factor)
//!   go to **standby-pool** nodes that don't hold the block, preferring
//!   nodes "placed in the same racks with the other replica of the
//!   block"; only when no standby node qualifies does an active node
//!   take them.
//! * **Normal data replicas** (below the default factor) follow the
//!   default rack-aware strategy.
//! * **Parity blocks** go to the active node holding the *fewest* blocks
//!   of the same file — "if the erasure codes parities are located in
//!   the same nodes with the original data, the data will be lost and
//!   could not be recovered if these nodes are crashed".
//! * **Deletions** drain standby nodes first, so shrinking a hot file
//!   back to the default factor never forces a rebalance.

use hdfs_sim::placement::{DefaultRackAware, NodeView, PlacementContext, PlacementPolicy};
use hdfs_sim::{NodeId, RackId};

/// Algorithm 1 as a pluggable policy.
#[derive(Debug, Default, Clone)]
pub struct ErmsPlacement {
    fallback: DefaultRackAware,
}

impl ErmsPlacement {
    pub fn new() -> Self {
        Self::default()
    }

    /// Standby-pool candidates, replica-rack-colocated first, then by
    /// (load, id).
    fn standby_candidates(ctx: &PlacementContext<'_>, chosen: &[NodeId]) -> Vec<NodeId> {
        let replica_racks: &[RackId] = ctx.replica_racks;
        let mut cands: Vec<&NodeView> = ctx
            .eligible()
            .filter(|v| v.standby_pool && !chosen.contains(&v.id))
            .collect();
        cands.sort_by_key(|v| {
            let colocated = replica_racks.contains(&v.rack);
            (!colocated, v.load, std::cmp::Reverse(v.free), v.id)
        });
        cands.into_iter().map(|v| v.id).collect()
    }
}

impl PlacementPolicy for ErmsPlacement {
    fn choose_targets(&self, ctx: &PlacementContext<'_>, want: usize) -> Vec<NodeId> {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(want);
        let have = ctx.replica_locations.len();
        if have < ctx.default_replication {
            // below the default factor: vanilla rack-aware placement for
            // the deficit (the fallback handles rack sequencing itself)
            let deficit = (ctx.default_replication - have).min(want);
            chosen.extend(self.fallback.choose_targets(ctx, deficit));
        }
        while chosen.len() < want {
            // extra replica: standby first, active as a last resort
            let pick = Self::standby_candidates(ctx, &chosen)
                .into_iter()
                .next()
                .or_else(|| {
                    ctx.eligible()
                        .filter(|v| !chosen.contains(&v.id))
                        .min_by_key(|v| (v.load, std::cmp::Reverse(v.free), v.id))
                        .map(|v| v.id)
                });
            match pick {
                Some(id) => chosen.push(id),
                None => break,
            }
        }
        chosen
    }

    fn choose_removals(&self, ctx: &PlacementContext<'_>, count: usize) -> Vec<NodeId> {
        // drain standby holders first (lines 39-51 of Algorithm 1)
        let mut holders: Vec<&NodeView> = ctx
            .replica_locations
            .iter()
            .filter_map(|&id| ctx.view(id))
            .collect();
        holders.sort_by_key(|v| (!v.standby_pool, v.free, v.id));
        holders.iter().take(count).map(|v| v.id).collect()
    }

    fn choose_parity_target(&self, ctx: &PlacementContext<'_>) -> Option<NodeId> {
        // active node with the fewest blocks of the same file
        ctx.eligible()
            .filter(|v| !v.standby_pool)
            .min_by_key(|v| (v.file_block_count, v.load, v.id))
            .map(|v| v.id)
            .or_else(|| self.fallback.choose_parity_target(ctx))
    }

    fn name(&self) -> &'static str {
        "erms-algorithm-1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, rack: u16, standby: bool) -> NodeView {
        NodeView {
            id: NodeId(id),
            rack: RackId(rack),
            serving: true,
            standby_pool: standby,
            free: 1 << 40,
            load: 0,
            holds_block: false,
            file_block_count: 0,
        }
    }

    /// 6 active (0-5, racks 0-2) + 4 standby (6-9, racks 0-1).
    fn mixed_cluster() -> Vec<NodeView> {
        let mut v: Vec<NodeView> = (0..6).map(|i| view(i, (i / 2) as u16, false)).collect();
        v.extend((6..10).map(|i| view(i, ((i - 6) / 2) as u16, true)));
        v
    }

    fn ctx<'a>(
        views: &'a [NodeView],
        locs: &'a [NodeId],
        racks: &'a [RackId],
    ) -> PlacementContext<'a> {
        PlacementContext {
            views,
            replica_locations: locs,
            replica_racks: racks,
            default_replication: 3,
            writer: None,
            block_len: 1,
        }
    }

    #[test]
    fn extra_replicas_prefer_standby_in_replica_racks() {
        let views = mixed_cluster();
        // block already at default factor, replicas in racks 0 and 1
        let locs = [NodeId(0), NodeId(2), NodeId(3)];
        let racks = [RackId(0), RackId(1), RackId(1)];
        let c = ctx(&views, &locs, &racks);
        let targets = ErmsPlacement::new().choose_targets(&c, 2);
        assert_eq!(targets.len(), 2);
        for t in &targets {
            assert!(t.0 >= 6, "extra replica must land on standby, got {t}");
        }
        // rack-colocated standby nodes (6,7 in rack 0; 8,9 in rack 1) all
        // qualify; lowest (load,id) colocated first
        assert_eq!(targets, vec![NodeId(6), NodeId(7)]);
    }

    #[test]
    fn below_default_uses_rack_aware_on_active_nodes() {
        let views = mixed_cluster();
        let c = ctx(&views, &[], &[]);
        let targets = ErmsPlacement::new().choose_targets(&c, 3);
        assert_eq!(targets.len(), 3);
        // default policy is free to use any serving node; the key property
        // for fresh files is rack diversity
        let racks: std::collections::BTreeSet<u16> = targets
            .iter()
            .map(|t| views.iter().find(|v| v.id == *t).unwrap().rack.0)
            .collect();
        assert!(
            racks.len() >= 2,
            "initial placement spans racks: {targets:?}"
        );
    }

    #[test]
    fn falls_back_to_active_when_standby_exhausted() {
        let mut views = mixed_cluster();
        // every standby node already holds the block
        for v in views.iter_mut().filter(|v| v.standby_pool) {
            v.holds_block = true;
        }
        let locs = [NodeId(0), NodeId(1), NodeId(2)];
        let racks = [RackId(0), RackId(0), RackId(1)];
        let c = ctx(&views, &locs, &racks);
        let targets = ErmsPlacement::new().choose_targets(&c, 1);
        assert_eq!(targets.len(), 1);
        assert!(targets[0].0 < 6, "active node fallback");
    }

    #[test]
    fn removals_drain_standby_first() {
        let views = mixed_cluster();
        let locs = [NodeId(1), NodeId(6), NodeId(8), NodeId(3)];
        let racks = [RackId(0), RackId(0), RackId(1), RackId(1)];
        let c = ctx(&views, &locs, &racks);
        let victims = ErmsPlacement::new().choose_removals(&c, 2);
        assert_eq!(victims, vec![NodeId(6), NodeId(8)]);
        // removing three reaches into active holders only after standby
        let victims = ErmsPlacement::new().choose_removals(&c, 3);
        assert_eq!(victims[2], NodeId(1));
    }

    #[test]
    fn parity_avoids_standby_and_file_blocks() {
        let mut views = mixed_cluster();
        views[0].file_block_count = 3;
        views[1].file_block_count = 1;
        views[2].file_block_count = 0;
        views[3].file_block_count = 2;
        // a standby node with zero blocks must still not take parity
        views[7].file_block_count = 0;
        let c = ctx(&views, &[], &[]);
        let t = ErmsPlacement::new().choose_parity_target(&c).unwrap();
        assert_eq!(t, NodeId(2), "fewest same-file blocks among active");
    }

    #[test]
    fn no_duplicate_targets() {
        let views = mixed_cluster();
        let locs = [NodeId(0), NodeId(1), NodeId(2)];
        let racks = [RackId(0), RackId(0), RackId(1)];
        let c = ctx(&views, &locs, &racks);
        let targets = ErmsPlacement::new().choose_targets(&c, 7);
        let mut dedup = targets.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), targets.len());
        assert_eq!(targets.len(), 7, "4 standby + 3 remaining active");
    }

    #[test]
    fn policy_name() {
        assert_eq!(ErmsPlacement::new().name(), "erms-algorithm-1");
    }
}
