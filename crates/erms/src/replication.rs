//! Optimal replication factors and increase strategies.
//!
//! Given a hot file's windowed demand `N_d` and the per-replica capacity
//! `τ_M`, the number of replicas that brings per-replica pressure back
//! under the threshold is `⌈N_d / τ_M⌉`. Figure 7 compares raising the
//! factor **directly** to that optimum against raising it one step at a
//! time and finds direct "is a better choice"; both strategies are
//! implemented so the figure (and the ablation bench) can reproduce the
//! comparison.

use serde::{Deserialize, Serialize};

/// Replicas needed so `N_d / r ≤ τ_M`, clamped to `[r_default, max]`.
pub fn optimal_replication(n_d: f64, tau_hot: f64, r_default: usize, max: usize) -> usize {
    assert!(tau_hot > 0.0);
    let need = (n_d / tau_hot).ceil().max(0.0) as usize;
    need.clamp(r_default, max.max(r_default))
}

/// How to move from the current factor to the target (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncreaseStrategy {
    /// One shot: request every extra replica at once — copies stream in
    /// parallel from different sources.
    Direct,
    /// Step-wise: raise by one, wait for it to land, raise again.
    OneByOne,
}

impl IncreaseStrategy {
    /// The sequence of intermediate targets from `from` to `to`.
    pub fn steps(self, from: usize, to: usize) -> Vec<usize> {
        if to <= from {
            return Vec::new();
        }
        match self {
            IncreaseStrategy::Direct => vec![to],
            IncreaseStrategy::OneByOne => (from + 1..=to).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_scales_with_demand() {
        // τ_M = 8
        assert_eq!(optimal_replication(0.0, 8.0, 3, 18), 3, "floor at default");
        assert_eq!(optimal_replication(24.0, 8.0, 3, 18), 3);
        assert_eq!(optimal_replication(25.0, 8.0, 3, 18), 4);
        assert_eq!(optimal_replication(80.0, 8.0, 3, 18), 10);
        assert_eq!(
            optimal_replication(1000.0, 8.0, 3, 18),
            18,
            "ceiling at cluster"
        );
    }

    #[test]
    fn lower_tau_means_more_replicas() {
        let n_d = 32.0;
        let r8 = optimal_replication(n_d, 8.0, 3, 18);
        let r6 = optimal_replication(n_d, 6.0, 3, 18);
        let r4 = optimal_replication(n_d, 4.0, 3, 18);
        assert!(r8 <= r6 && r6 <= r4, "{r8} {r6} {r4}");
        assert_eq!(r4, 8);
    }

    #[test]
    fn strategies_produce_expected_step_sequences() {
        assert_eq!(IncreaseStrategy::Direct.steps(3, 8), vec![8]);
        assert_eq!(IncreaseStrategy::OneByOne.steps(3, 8), vec![4, 5, 6, 7, 8]);
        assert!(IncreaseStrategy::Direct.steps(5, 5).is_empty());
        assert!(IncreaseStrategy::OneByOne.steps(5, 3).is_empty());
    }
}
