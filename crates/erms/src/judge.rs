//! The Data Judge Module.
//!
//! "The Data Judge Module obtains system metrics from HDFS clusters and
//! uses CEP to distinguish current data types in real-time." Audit-log
//! text goes in; per-file classifications come out. The module keeps
//! three continuous queries over the sliding window `t_w`:
//!
//! * accesses per file (`N_d`, from namenode `open` records),
//! * accesses per block (`N_b`, from datanode client-trace records),
//! * accesses per datanode (Formula (4)'s left-hand side), plus a
//!   derived per-(datanode,file) stream so an overloaded node can name
//!   "the data D that contributes the largest access" to it.
//!
//! Classification implements Formulas (1)–(6) verbatim; thresholds come
//! from [`crate::thresholds::Thresholds`]. The formulas themselves live
//! in [`classify_with_rules`], a free function over the `policy` crate's
//! [`CepProbe`] view of the windowed counts, so the same decision logic
//! serves both [`DataJudge::classify`] and the [`RulesPolicy`] backend
//! the manager drives through the [`JudgePolicy`] trait.

use crate::config::ConfigError;
use crate::thresholds::Thresholds;
use cep::audit::{AUDIT_EVENT, BLOCK_EVENT};
use cep::pattern::{EventFilter, FollowedBy};
use cep::query::Predicate;
use cep::{CepEngine, QuerySpec, Value};
use simcore::telemetry::TelemetrySink;
use simcore::{SimDuration, SimTime};

pub use policy::{
    CepProbe, DataClass, FileSnapshot, JudgeBackend, JudgePolicy, JudgeRule, Judgment, RewardMeters,
};

/// CEP-backed data-type judge.
pub struct DataJudge {
    engine: CepEngine,
    q_file: cep::QueryId,
    q_block: cep::QueryId,
    q_node: cep::QueryId,
    q_node_file: cep::QueryId,
    /// `create → open` correlation: fresh data drawing immediate reads.
    p_fresh: cep::engine::PatternId,
    thresholds: Thresholds,
    parse_errors: usize,
    /// Interning audit-line parser, persistent so field keys and the
    /// recurring path/node strings are shared across the whole stream.
    parser: cep::audit::LineParser,
    /// Interned type name of the derived (datanode, file) events.
    ty_node_file: std::sync::Arc<str>,
    /// Interned key of their composite `dn|src` field.
    key_dn_src: std::sync::Arc<str>,
    /// Scratch for rendering `BlockId`s to their client-trace names in
    /// the [`CepProbe`] impl; excluded from checkpoints.
    blk_key: String,
}

/// Synthetic event type carrying the (datanode, file) composite key.
const NODE_FILE_EVENT: &str = "block_read_by_node";

impl DataJudge {
    /// Build a judge, panicking on invalid thresholds. Thin wrapper
    /// over [`try_new`](Self::try_new) for tests and callers holding
    /// already-validated thresholds; the manager goes through the
    /// fallible path.
    pub fn new(thresholds: Thresholds) -> Self {
        Self::try_new(thresholds).expect("valid thresholds")
    }

    /// Build a judge, returning the typed [`ConfigError`] when the
    /// thresholds are inconsistent instead of panicking.
    pub fn try_new(thresholds: Thresholds) -> Result<Self, ConfigError> {
        thresholds.validate()?;
        let w = thresholds.window;
        let mut engine = CepEngine::new();
        let q_file = engine.register(count_query(AUDIT_EVENT, "src", w));
        let q_block = engine.register(count_query(BLOCK_EVENT, "blk", w));
        let q_node = engine.register(count_query(BLOCK_EVENT, "dn", w));
        let q_node_file = engine.register(count_query(NODE_FILE_EVENT, "dn_src", w));
        // "popularity spikes when the data is freshest": a create followed
        // quickly by an open on the same path flags a fresh-data spike
        let p_fresh = engine.register_pattern(FollowedBy {
            first: EventFilter::of_type(AUDIT_EVENT)
                .with(Predicate::Eq("cmd".into(), Value::str("create"))),
            second: EventFilter::of_type(AUDIT_EVENT)
                .with(Predicate::Eq("cmd".into(), Value::str("open"))),
            within: w,
            key_field: Some("src".into()),
        });
        Ok(DataJudge {
            engine,
            q_file,
            q_block,
            q_node,
            q_node_file,
            p_fresh,
            thresholds,
            parse_errors: 0,
            parser: {
                let mut p = cep::audit::LineParser::new();
                // Projection pushdown: the queries and pattern above read
                // exactly these audit fields; skip materializing the rest.
                p.project(&["blk", "cmd", "dn", "src"]);
                p
            },
            ty_node_file: std::sync::Arc::from(NODE_FILE_EVENT),
            key_dn_src: std::sync::Arc::from("dn_src"),
            blk_key: String::new(),
        })
    }

    /// Install a telemetry sink on the underlying CEP engine so every
    /// fired window row is traced.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.engine.set_telemetry(sink);
    }

    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }
    pub fn thresholds_mut(&mut self) -> &mut Thresholds {
        &mut self.thresholds
    }
    pub fn parse_errors(&self) -> usize {
        self.parse_errors
    }
    pub fn events_seen(&self) -> u64 {
        self.engine.events_seen()
    }

    /// Feed raw audit-log lines (the paper's log-parser → CEP pipeline).
    ///
    /// One scratch event is refilled per line (`LineParser::parse_into`
    /// keeps the field vector's allocation), so the drain allocates
    /// nothing per line at steady state.
    pub fn observe_lines<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) {
        let mut composite = String::new();
        let mut event =
            cep::Event::new_interned(simcore::SimTime::ZERO, self.ty_node_file.clone(), 8);
        for line in lines {
            match self.parser.parse_into(line, &mut event) {
                Ok(()) => {
                    if event.event_type.as_ref() == BLOCK_EVENT {
                        if let (Some(dn), Some(src)) = (
                            event.get("dn").and_then(|v| v.as_str()),
                            event.get("src").and_then(|v| v.as_str()),
                        ) {
                            composite.clear();
                            composite.push_str(dn);
                            composite.push('|');
                            composite.push_str(src);
                            let key = self.parser.intern(&composite);
                            let mut derived =
                                cep::Event::new_interned(event.time, self.ty_node_file.clone(), 1);
                            derived.set_interned(self.key_dn_src.clone(), cep::Value::Str(key));
                            self.engine.push(&derived);
                        }
                    }
                    self.engine.push(&event);
                }
                Err(_) => self.parse_errors += 1,
            }
        }
    }

    /// Paths whose creation was followed by reads within the window —
    /// fresh data spiking in popularity. Drains the pattern's matches;
    /// the manager may pre-warm these before Formula (1) trips.
    pub fn freshly_popular(&mut self) -> Vec<String> {
        let mut paths: Vec<String> = self
            .engine
            .drain_matches(self.p_fresh)
            .into_iter()
            .filter_map(|m| m.second.get("src").map(|v| v.to_string()))
            .collect();
        paths.sort_unstable();
        paths.dedup();
        paths
    }

    /// Windowed `N_d` for a file path.
    pub fn file_accesses(&mut self, now: SimTime, path: &str) -> f64 {
        self.engine.value_for(self.q_file, now, path)
    }

    /// Windowed `N_b` for a block name.
    pub fn block_accesses(&mut self, now: SimTime, blk: &str) -> f64 {
        self.engine.value_for(self.q_block, now, blk)
    }

    /// Classify one file per Formulas (1)–(3), (5), (6).
    pub fn classify(&mut self, now: SimTime, file: &FileSnapshot) -> Judgment {
        let thresholds = self.thresholds.clone();
        classify_with_rules(&thresholds, now, file, self)
    }

    /// Formula (4): datanodes whose windowed session count exceeds τ_DN,
    /// with the file contributing the most accesses on each ("ERMS could
    /// choose the data D that contributes the largest access to DN").
    pub fn overloaded_nodes(&mut self, now: SimTime) -> Vec<(String, String, f64)> {
        let hot_nodes: Vec<(String, f64)> = self
            .engine
            .rows(self.q_node, now)
            .into_iter()
            .filter(|row| row.value > self.thresholds.tau_datanode)
            .map(|row| (row.key.to_string(), row.value))
            .collect();
        let mut out = Vec::new();
        for (dn, load) in hot_nodes {
            let prefix = format!("{dn}|");
            let top = self
                .engine
                .rows(self.q_node_file, now)
                .into_iter()
                .filter(|row| row.key.starts_with(&prefix))
                .max_by(|a, b| {
                    a.value
                        .partial_cmp(&b.value)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| b.key.cmp(&a.key))
                });
            if let Some(row) = top {
                let file = row.key[prefix.len()..].to_string();
                out.push((dn, file, load));
            }
        }
        out
    }
}

impl checkpoint::Checkpointable for DataJudge {
    // Thresholds and the query/pattern registrations are constructor
    // config: a restored judge is built by `DataJudge::new` first (which
    // re-registers the four queries and the freshness pattern in the
    // same deterministic order, yielding identical ids), then hydrated.
    // Only the CEP engine's runtime state and the parse-error counter
    // are dynamic.
    fn save_state(&self) -> checkpoint::Value {
        checkpoint::codec::MapBuilder::new()
            .put("engine", self.engine.save_state())
            .u64("parse_errors", self.parse_errors as u64)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        self.engine.load_state(c::get(state, "engine")?)?;
        self.parse_errors = c::get_usize(state, "parse_errors")?;
        Ok(())
    }
}

/// The judge reads its own CEP engine through the probe view; the
/// scratch `blk_key` keeps per-block queries allocation-free at steady
/// state. Query order (and therefore `WindowEmit` telemetry order) is
/// exactly the order [`classify_with_rules`] asks in.
impl CepProbe for DataJudge {
    fn file_accesses(&mut self, now: SimTime, path: &str) -> f64 {
        self.engine.value_for(self.q_file, now, path)
    }

    fn block_accesses(&mut self, now: SimTime, block: hdfs_sim::BlockId) -> f64 {
        use std::fmt::Write as _;
        self.blk_key.clear();
        write!(self.blk_key, "{block}").expect("writing to a String cannot fail");
        self.engine.value_for(self.q_block, now, &self.blk_key)
    }
}

/// Formulas (1)–(3), (5), (6) as a pure decision over probed counts.
///
/// The probe is consulted lazily and in a fixed order — file count
/// first, then each block in order, stopping at the first formula that
/// fires — because each probe call emits `WindowEmit` telemetry and the
/// call order is part of the byte-identical trace contract.
pub fn classify_with_rules(
    t: &Thresholds,
    now: SimTime,
    file: &FileSnapshot,
    probe: &mut dyn CepProbe,
) -> Judgment {
    let r = file.replication.max(1) as f64;
    let (tau_hot, block_burst, block_warm, epsilon, tau_cooled, tau_cold, cold_age) = (
        t.tau_hot,
        t.block_burst,
        t.block_warm,
        t.epsilon,
        t.tau_cooled,
        t.tau_cold,
        t.cold_age,
    );
    // N_d is the file's windowed access count. MapReduce inflates the
    // raw open count by the file's block count (every map task opens
    // the file to read its split), so normalise per block: the result
    // counts *whole-file accesses* (jobs/clients) in the window, which
    // is the concurrency Formula (1) compares against per-replica
    // session capacity.
    let raw_opens = probe.file_accesses(now, &file.path);
    let n_d = raw_opens / file.blocks.len().max(1) as f64;

    // Formula (1): per-replica file pressure
    if n_d / r > tau_hot {
        return judgment(file, DataClass::Hot, n_d, 0.0, JudgeRule::FilePressure);
    }
    // Formulas (2) and (3): per-block pressure
    let n_blocks = file.blocks.len();
    let mut n_b_max = 0.0f64;
    if n_blocks > 0 {
        let mut warm_blocks = 0usize;
        for &b in &file.blocks {
            let n_b = probe.block_accesses(now, b);
            n_b_max = n_b_max.max(n_b);
            if n_b / r > block_burst {
                return judgment(file, DataClass::Hot, n_d, n_b_max, JudgeRule::BlockBurst);
            }
            if n_b / r > block_warm {
                warm_blocks += 1;
            }
        }
        if warm_blocks as f64 / n_blocks as f64 > epsilon {
            return judgment(file, DataClass::Hot, n_d, n_b_max, JudgeRule::WarmFraction);
        }
    }
    // Formula (5): boosted file whose demand fell away
    if file.boosted && n_d / r < tau_cooled {
        return judgment(file, DataClass::Cooled, n_d, n_b_max, JudgeRule::Cooled);
    }
    // Formula (6): quiet and old → cold
    if !file.encoded && n_d / r < tau_cold && now.since(file.last_access) > cold_age {
        return judgment(file, DataClass::Cold, n_d, n_b_max, JudgeRule::ColdAge);
    }
    judgment(file, DataClass::Normal, n_d, n_b_max, JudgeRule::Normal)
}

/// The paper's threshold machine as a [`JudgePolicy`] backend: a
/// stateless wrapper over [`classify_with_rules`] probing the manager's
/// [`DataJudge`]. Stateless because the formulas *are* configuration —
/// everything dynamic (the CEP windows) lives in the judge it probes.
pub struct RulesPolicy {
    thresholds: Thresholds,
}

impl RulesPolicy {
    /// Thresholds are assumed already validated (the manager constructs
    /// the [`DataJudge`] through [`DataJudge::try_new`] first).
    pub fn new(thresholds: Thresholds) -> Self {
        RulesPolicy { thresholds }
    }
}

impl JudgePolicy for RulesPolicy {
    fn backend(&self) -> JudgeBackend {
        JudgeBackend::Rules
    }

    fn classify(
        &mut self,
        now: SimTime,
        file: &FileSnapshot,
        _fresh: bool,
        probe: &mut dyn CepProbe,
    ) -> Judgment {
        classify_with_rules(&self.thresholds, now, file, probe)
    }
}

impl checkpoint::Checkpointable for RulesPolicy {
    fn save_state(&self) -> checkpoint::Value {
        // stateless: the thresholds are rebuilt from scenario config
        checkpoint::codec::MapBuilder::new().build()
    }

    fn load_state(
        &mut self,
        _state: &checkpoint::Value,
    ) -> Result<(), checkpoint::CheckpointError> {
        Ok(())
    }
}

fn count_query(event_type: &str, field: &str, window: SimDuration) -> QuerySpec {
    QuerySpec::count_per_group(event_type, field, window)
}

fn judgment(
    file: &FileSnapshot,
    class: DataClass,
    n_d: f64,
    n_b_max: f64,
    rule: JudgeRule,
) -> Judgment {
    Judgment {
        path: file.path.clone(),
        class,
        n_d,
        n_b_max,
        rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cep::audit::{format_audit_line, format_block_line};
    use hdfs_sim::{BlockId, NodeId};

    fn snapshot(path: &str, r: usize, blocks: &[u64]) -> FileSnapshot {
        FileSnapshot {
            id: hdfs_sim::FileId(0),
            path: path.into(),
            replication: r,
            blocks: blocks.iter().map(|&b| BlockId(b)).collect(),
            last_access: SimTime::ZERO,
            boosted: false,
            encoded: false,
        }
    }

    fn open_line(t: u64, path: &str) -> String {
        format_audit_line(SimTime::from_secs(t), "u", "/10.0.0.1", "open", path, None)
    }

    fn block_line(t: u64, blk: u64, dn: u32, path: &str) -> String {
        format_block_line(
            SimTime::from_secs(t),
            &BlockId(blk).to_string(),
            &NodeId(dn).to_string(),
            path,
            64 << 20,
        )
    }

    fn judge() -> DataJudge {
        DataJudge::new(Thresholds::calibrate(4.0)) // τ_M=4, M_M=6, M_m=3, τ_d=2, τ_m=0.5
    }

    #[test]
    fn rule1_file_pressure_makes_hot() {
        let mut j = judge();
        let file = snapshot("/hot", 3, &[1]);
        // 13 whole-file opens / r=3 ≈ 4.3 > τ_M=4 → hot via (1)
        let lines: Vec<String> = (0..13).map(|i| open_line(10 + i, "/hot")).collect();
        j.observe_lines(lines.iter().map(String::as_str));
        let v = j.classify(SimTime::from_secs(30), &file);
        assert_eq!(v.class, DataClass::Hot);
        assert_eq!(v.rule, JudgeRule::FilePressure);
        assert_eq!(v.n_d, 13.0);
    }

    #[test]
    fn rule2_block_burst_makes_hot() {
        let mut j = judge();
        let file = snapshot("/f", 1, &[7, 8]);
        // 2 opens (N_d/r = 2, not hot by (1)); block 7 bursts: 7 reads > M_M=6
        let mut lines = vec![open_line(1, "/f"), open_line(2, "/f")];
        for i in 0..7 {
            lines.push(block_line(3 + i, 7, 0, "/f"));
        }
        j.observe_lines(lines.iter().map(String::as_str));
        let v = j.classify(SimTime::from_secs(20), &file);
        assert_eq!(v.class, DataClass::Hot);
        assert_eq!(v.rule, JudgeRule::BlockBurst);
    }

    #[test]
    fn rule3_many_warm_blocks_make_hot() {
        let mut j = judge();
        let file = snapshot("/f", 1, &[1, 2, 3]);
        // two of three blocks get 4 reads each (> M_m=3, ≤ M_M=6);
        // 2/3 > ε=0.3 → hot via (3)
        let mut lines = Vec::new();
        for blk in [1u64, 2] {
            for i in 0..4 {
                lines.push(block_line(1 + i, blk, 0, "/f"));
            }
        }
        j.observe_lines(lines.iter().map(String::as_str));
        let v = j.classify(SimTime::from_secs(20), &file);
        assert_eq!(v.class, DataClass::Hot);
        assert_eq!(v.rule, JudgeRule::WarmFraction);
    }

    #[test]
    fn rule5_boosted_quiet_file_cools() {
        let mut j = judge();
        let mut file = snapshot("/f", 6, &[1]);
        file.boosted = true;
        // 2 accesses / r=6 = 0.33 < τ_d=2 → cooled
        j.observe_lines(
            [open_line(1, "/f"), open_line(2, "/f")]
                .iter()
                .map(String::as_str),
        );
        let v = j.classify(SimTime::from_secs(10), &file);
        assert_eq!(v.class, DataClass::Cooled);
        assert_eq!(v.rule, JudgeRule::Cooled);
        // the same traffic on an unboosted file is just normal
        let plain = snapshot("/f", 6, &[1]);
        let v = j.classify(SimTime::from_secs(10), &plain);
        assert_eq!(v.class, DataClass::Normal);
    }

    #[test]
    fn rule6_old_quiet_file_is_cold() {
        let mut j = judge();
        let mut file = snapshot("/f", 3, &[1]);
        file.last_access = SimTime::from_secs(0);
        // no accesses in window, last touch 2h ago (> cold_age 1h)
        let v = j.classify(SimTime::from_secs(7200), &file);
        assert_eq!(v.class, DataClass::Cold);
        assert_eq!(v.rule, JudgeRule::ColdAge);
        // recently-touched quiet file is NOT cold
        file.last_access = SimTime::from_secs(7000);
        let v = j.classify(SimTime::from_secs(7200), &file);
        assert_eq!(v.class, DataClass::Normal);
        // already-encoded file is never re-classified cold
        file.last_access = SimTime::ZERO;
        file.encoded = true;
        let v = j.classify(SimTime::from_secs(7200), &file);
        assert_eq!(v.class, DataClass::Normal);
    }

    #[test]
    fn window_decay_returns_file_to_normal() {
        let mut j = judge();
        let file = snapshot("/f", 1, &[1]);
        let lines: Vec<String> = (0..10).map(|i| open_line(i, "/f")).collect();
        j.observe_lines(lines.iter().map(String::as_str));
        assert_eq!(
            j.classify(SimTime::from_secs(10), &file).class,
            DataClass::Hot
        );
        // 300s window: by t=400 the burst has expired (file still young
        // enough not to be cold)
        let v = j.classify(SimTime::from_secs(400), &file);
        assert_eq!(v.class, DataClass::Normal);
        assert_eq!(v.n_d, 0.0);
    }

    #[test]
    fn rule4_overloaded_node_names_top_file() {
        let mut j = judge();
        // τ_DN = 8; dn0 serves 6 reads of /a and 4 of /b → overloaded,
        // top contributor /a
        let mut lines = Vec::new();
        for i in 0..6 {
            lines.push(block_line(1 + i, 100 + i, 0, "/a"));
        }
        for i in 0..4 {
            lines.push(block_line(10 + i, 200 + i, 0, "/b"));
        }
        // dn1 only serves 2 reads → not overloaded
        lines.push(block_line(20, 300, 1, "/c"));
        lines.push(block_line(21, 301, 1, "/c"));
        j.observe_lines(lines.iter().map(String::as_str));
        let over = j.overloaded_nodes(SimTime::from_secs(30));
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].0, "dn0");
        assert_eq!(over[0].1, "/a");
        assert_eq!(over[0].2, 10.0);
    }

    #[test]
    fn fresh_data_pattern_fires_on_create_then_open() {
        let mut j = judge();
        let create = format_audit_line(
            SimTime::from_secs(1),
            "u",
            "/10.0.0.1",
            "create",
            "/fresh",
            None,
        );
        let lines = [create, open_line(5, "/fresh"), open_line(6, "/other")];
        j.observe_lines(lines.iter().map(String::as_str));
        assert_eq!(j.freshly_popular(), vec!["/fresh".to_string()]);
        assert!(j.freshly_popular().is_empty(), "matches drain once");
    }

    #[test]
    fn parse_errors_are_counted_not_fatal() {
        let mut j = judge();
        j.observe_lines(["garbage", &open_line(1, "/f")]);
        assert_eq!(j.parse_errors(), 1);
        assert!(j.events_seen() >= 1);
    }

    #[test]
    fn checkpoint_round_trip_preserves_windows_and_pattern() {
        use checkpoint::Checkpointable;
        let mut j = judge();
        let create = format_audit_line(
            SimTime::from_secs(1),
            "u",
            "/10.0.0.1",
            "create",
            "/fresh",
            None,
        );
        let mut lines = vec!["garbage".to_string(), create];
        for i in 0..9 {
            lines.push(open_line(2 + i, "/hot"));
            lines.push(block_line(2 + i, 7, 0, "/hot"));
        }
        j.observe_lines(lines.iter().map(String::as_str));

        let json = serde_json::to_string(&j.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut fresh = judge();
        fresh.load_state(&back).unwrap();

        // identical classification and parse accounting after restore
        let file = snapshot("/hot", 1, &[7]);
        let now = SimTime::from_secs(20);
        let a = j.classify(now, &file);
        let b = fresh.classify(now, &file);
        assert_eq!((a.class, a.rule), (b.class, b.rule));
        assert_eq!(a.n_d.to_bits(), b.n_d.to_bits());
        assert_eq!(fresh.parse_errors(), 1);
        assert_eq!(fresh.events_seen(), j.events_seen());
        // the pending create → open correlation survived: an open on the
        // restored judge completes the pattern armed before the snapshot
        fresh.observe_lines([open_line(5, "/fresh").as_str()]);
        assert_eq!(fresh.freshly_popular(), vec!["/fresh".to_string()]);
    }
}
