//! The Active/Standby storage model and energy accounting.
//!
//! "This model classifies the storage nodes into two types: active nodes
//! and standby nodes... After all data in a standby node are removed,
//! ERMS could shut down that node for energy saving." This module owns
//! that bookkeeping: which nodes form the standby pool, which of them
//! are currently powered (commissioned), and how many node-seconds of
//! energy the pool has consumed — the quantity the energy ablation
//! reports.

use hdfs_sim::NodeId;
use simcore::SimTime;
use std::collections::BTreeMap;

/// Power state the model believes a standby node is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandbyState {
    Off,
    /// Boot requested; counts as powered from the request onward.
    Booting,
    On,
}

/// Active/standby bookkeeping.
#[derive(Debug)]
pub struct ActiveStandbyModel {
    active: Vec<NodeId>,
    standby: BTreeMap<NodeId, StandbyState>,
    /// Accumulated powered node-seconds of the standby pool.
    powered_secs: f64,
    /// When each powered standby node last changed state.
    powered_since: BTreeMap<NodeId, SimTime>,
}

impl ActiveStandbyModel {
    /// Split the node set: `active` always-on nodes, `standby` elastic
    /// ones (initially off).
    pub fn new(active: Vec<NodeId>, standby: Vec<NodeId>) -> Self {
        assert!(!active.is_empty(), "need at least one active node");
        let standby = standby
            .into_iter()
            .map(|n| (n, StandbyState::Off))
            .collect();
        ActiveStandbyModel {
            active,
            standby,
            powered_secs: 0.0,
            powered_since: BTreeMap::new(),
        }
    }

    /// Every node active (the vanilla baseline).
    pub fn all_active(nodes: Vec<NodeId>) -> Self {
        ActiveStandbyModel::new(nodes, Vec::new())
    }

    pub fn active_nodes(&self) -> &[NodeId] {
        &self.active
    }
    pub fn standby_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.standby.keys().copied()
    }
    pub fn is_standby(&self, n: NodeId) -> bool {
        self.standby.contains_key(&n)
    }
    pub fn state_of(&self, n: NodeId) -> Option<StandbyState> {
        self.standby.get(&n).copied()
    }

    /// Standby nodes currently off (commission candidates), id order.
    pub fn powered_off(&self) -> Vec<NodeId> {
        self.standby
            .iter()
            .filter(|(_, &s)| s == StandbyState::Off)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Standby nodes on or booting.
    pub fn powered_on(&self) -> Vec<NodeId> {
        self.standby
            .iter()
            .filter(|(_, &s)| s != StandbyState::Off)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Record a commission request at `now`. Returns false if the node is
    /// not a standby node or is already powered.
    pub fn request_boot(&mut self, n: NodeId, now: SimTime) -> bool {
        match self.standby.get_mut(&n) {
            Some(s @ StandbyState::Off) => {
                *s = StandbyState::Booting;
                self.powered_since.insert(n, now);
                true
            }
            _ => false,
        }
    }

    /// The node finished booting.
    pub fn mark_booted(&mut self, n: NodeId) {
        if let Some(s) = self.standby.get_mut(&n) {
            if *s == StandbyState::Booting {
                *s = StandbyState::On;
            }
        }
    }

    /// Power a standby node down at `now`, banking its energy usage.
    pub fn shut_down(&mut self, n: NodeId, now: SimTime) -> bool {
        match self.standby.get_mut(&n) {
            Some(s) if *s != StandbyState::Off => {
                *s = StandbyState::Off;
                if let Some(since) = self.powered_since.remove(&n) {
                    self.powered_secs += now.since(since).as_secs_f64();
                }
                true
            }
            _ => false,
        }
    }

    /// A commissioned standby node crashed: bank its energy and return
    /// it to `Off` so the next commission request selects a healthy
    /// replacement. Returns false if the node was not powered (or not a
    /// standby node at all).
    pub fn mark_failed(&mut self, n: NodeId, now: SimTime) -> bool {
        self.shut_down(n, now)
    }

    /// Total standby-pool energy consumed by `now`, in node-seconds
    /// (running nodes accrue up to `now` without being stopped).
    pub fn standby_node_seconds(&self, now: SimTime) -> f64 {
        let running: f64 = self
            .powered_since
            .values()
            .map(|&since| now.since(since).as_secs_f64())
            .sum();
        self.powered_secs + running
    }

    /// Node-seconds an all-active cluster of the same size would have
    /// burned on these nodes (the energy baseline).
    pub fn all_active_node_seconds(&self, now: SimTime) -> f64 {
        self.standby.len() as f64 * now.as_secs_f64()
    }
}

impl checkpoint::Checkpointable for ActiveStandbyModel {
    // The active/standby split is reconstructed from config by
    // `ErmsManager::new`, but the split is cheap and the power states /
    // energy meter are genuinely dynamic, so the whole model is captured.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{seq_of, MapBuilder};
        use checkpoint::Value;
        MapBuilder::new()
            .seq(
                "active",
                self.active.iter().map(|n| Value::U64(n.0.into())).collect(),
            )
            .put(
                "standby",
                seq_of(self.standby.iter(), |(&n, &s)| {
                    Value::Seq(vec![
                        Value::U64(n.0.into()),
                        Value::Str(
                            match s {
                                StandbyState::Off => "off",
                                StandbyState::Booting => "booting",
                                StandbyState::On => "on",
                            }
                            .into(),
                        ),
                    ])
                }),
            )
            .f64b("powered_secs", self.powered_secs)
            .put(
                "powered_since",
                seq_of(self.powered_since.iter(), |(&n, &t)| {
                    Value::Seq(vec![Value::U64(n.0.into()), Value::U64(t.as_nanos())])
                }),
            )
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::CheckpointError;
        fn node(v: &checkpoint::Value) -> Result<NodeId, CheckpointError> {
            Ok(NodeId(u32::try_from(c::as_u64(v, "node id")?).map_err(
                |_| CheckpointError::Corrupt("node id exceeds u32".into()),
            )?))
        }
        fn pair(v: &checkpoint::Value) -> Result<&[checkpoint::Value], CheckpointError> {
            let parts = c::as_seq(v, "model pair")?;
            if parts.len() != 2 {
                return Err(CheckpointError::Corrupt("model pair arity".into()));
            }
            Ok(parts)
        }
        self.active = c::get_seq(state, "active")?
            .iter()
            .map(node)
            .collect::<Result<_, _>>()?;
        self.standby = c::get_seq(state, "standby")?
            .iter()
            .map(|v| {
                let parts = pair(v)?;
                let s = match c::as_str(&parts[1], "standby state")? {
                    "off" => StandbyState::Off,
                    "booting" => StandbyState::Booting,
                    "on" => StandbyState::On,
                    other => {
                        return Err(CheckpointError::Corrupt(format!(
                            "unknown standby state {other:?}"
                        )))
                    }
                };
                Ok((node(&parts[0])?, s))
            })
            .collect::<Result<_, _>>()?;
        self.powered_secs = c::get_f64b(state, "powered_secs")?;
        self.powered_since = c::get_seq(state, "powered_since")?
            .iter()
            .map(|v| {
                let parts = pair(v)?;
                let t = SimTime::from_nanos(c::as_u64(&parts[1], "powered since")?);
                Ok((node(&parts[0])?, t))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn model() -> ActiveStandbyModel {
        ActiveStandbyModel::new(
            (0..10).map(NodeId).collect(),
            (10..18).map(NodeId).collect(),
        )
    }

    #[test]
    fn partition_is_tracked() {
        let m = model();
        assert_eq!(m.active_nodes().len(), 10);
        assert_eq!(m.standby_nodes().count(), 8);
        assert!(m.is_standby(NodeId(12)));
        assert!(!m.is_standby(NodeId(2)));
        assert_eq!(m.powered_off().len(), 8);
        assert!(m.powered_on().is_empty());
    }

    #[test]
    fn boot_lifecycle() {
        let mut m = model();
        assert!(m.request_boot(NodeId(10), t(0)));
        assert_eq!(m.state_of(NodeId(10)), Some(StandbyState::Booting));
        assert!(!m.request_boot(NodeId(10), t(1)), "double boot rejected");
        assert!(!m.request_boot(NodeId(0), t(1)), "active nodes can't boot");
        m.mark_booted(NodeId(10));
        assert_eq!(m.state_of(NodeId(10)), Some(StandbyState::On));
        assert_eq!(m.powered_on(), vec![NodeId(10)]);
        assert!(m.shut_down(NodeId(10), t(100)));
        assert!(!m.shut_down(NodeId(10), t(101)), "already off");
        assert_eq!(m.powered_off().len(), 8);
    }

    #[test]
    fn energy_accounting() {
        let mut m = model();
        m.request_boot(NodeId(10), t(0));
        m.mark_booted(NodeId(10));
        m.request_boot(NodeId(11), t(50));
        // at t=100: node10 ran 100s, node11 ran 50s
        assert!((m.standby_node_seconds(t(100)) - 150.0).abs() < 1e-9);
        m.shut_down(NodeId(10), t(100));
        // at t=200: node10 banked 100, node11 still running → 100+150
        assert!((m.standby_node_seconds(t(200)) - 250.0).abs() < 1e-9);
        // all-active baseline would have burned 8 nodes × 200s
        assert!((m.all_active_node_seconds(t(200)) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn all_active_baseline_has_no_standby() {
        let m = ActiveStandbyModel::all_active((0..18).map(NodeId).collect());
        assert_eq!(m.standby_nodes().count(), 0);
        assert_eq!(m.standby_node_seconds(t(1000)), 0.0);
    }

    #[test]
    fn checkpoint_round_trips_power_states_and_energy() {
        use checkpoint::Checkpointable;
        let mut m = model();
        m.request_boot(NodeId(10), t(0));
        m.mark_booted(NodeId(10));
        m.request_boot(NodeId(11), t(50));
        m.shut_down(NodeId(10), t(100)); // banked 100 node-seconds
        m.request_boot(NodeId(12), t(110));

        // survive an actual serialize → parse cycle, not just a clone
        let json = serde_json::to_string(&m.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut fresh = model();
        fresh.load_state(&back).unwrap();

        assert_eq!(fresh.state_of(NodeId(10)), Some(StandbyState::Off));
        assert_eq!(fresh.state_of(NodeId(11)), Some(StandbyState::Booting));
        assert_eq!(fresh.state_of(NodeId(12)), Some(StandbyState::Booting));
        assert_eq!(fresh.active_nodes(), m.active_nodes());
        assert_eq!(
            fresh.standby_node_seconds(t(200)).to_bits(),
            m.standby_node_seconds(t(200)).to_bits(),
            "energy meter is bit-exact"
        );
    }

    #[test]
    fn checkpoint_rejects_unknown_standby_state() {
        use checkpoint::codec::MapBuilder;
        use checkpoint::{Checkpointable, Value};
        let mut m = model();
        let bad = MapBuilder::new()
            .seq("active", vec![Value::U64(0)])
            .seq(
                "standby",
                vec![Value::Seq(vec![
                    Value::U64(10),
                    Value::Str("rebooting".into()),
                ])],
            )
            .f64b("powered_secs", 0.0)
            .seq("powered_since", vec![])
            .build();
        assert!(matches!(
            m.load_state(&bad),
            Err(checkpoint::CheckpointError::Corrupt(_))
        ));
    }
}
