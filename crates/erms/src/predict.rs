//! Predictive data-type detection (paper future work).
//!
//! "In the future, we plan to investigate more effective solutions to
//! detect and predict the real-time data types." This module implements
//! the natural first step: an EWMA-with-trend (Holt) forecaster over the
//! windowed access counts, letting ERMS pre-boost a file whose demand is
//! *rising toward* τ_M instead of waiting for it to cross. The manager
//! does not enable it by default; the ablation bench measures what it
//! buys.

/// Holt double-exponential smoothing of a demand series.
#[derive(Debug, Clone)]
pub struct DemandPredictor {
    /// Level smoothing factor.
    alpha: f64,
    /// Trend smoothing factor.
    beta: f64,
    level: Option<f64>,
    trend: f64,
    observations: u64,
}

impl DemandPredictor {
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        DemandPredictor {
            alpha,
            beta,
            level: None,
            trend: 0.0,
            observations: 0,
        }
    }

    /// Sensible defaults for per-minute demand samples.
    pub fn default_params() -> Self {
        DemandPredictor::new(0.5, 0.3)
    }

    /// Feed one windowed access count.
    pub fn observe(&mut self, n_d: f64) {
        self.observations += 1;
        match self.level {
            None => self.level = Some(n_d),
            Some(prev_level) => {
                let level = self.alpha * n_d + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
            }
        }
    }

    /// Forecast demand `steps` ticks ahead (clamped at zero).
    pub fn forecast(&self, steps: u32) -> f64 {
        match self.level {
            None => 0.0,
            Some(l) => (l + self.trend * steps as f64).max(0.0),
        }
    }

    pub fn trend(&self) -> f64 {
        self.trend
    }
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Will demand cross `threshold` within `steps` ticks?
    pub fn predicts_hot(&self, threshold: f64, steps: u32) -> bool {
        self.observations >= 2 && self.forecast(steps) > threshold
    }
}

impl checkpoint::Checkpointable for DemandPredictor {
    // α/β are constructor parameters; only the smoothed level, trend and
    // observation count are runtime state.
    fn save_state(&self) -> checkpoint::Value {
        use checkpoint::codec::{f64_bits, MapBuilder};
        use checkpoint::Value;
        MapBuilder::new()
            .put("level", self.level.map_or(Value::Null, f64_bits))
            .f64b("trend", self.trend)
            .u64("observations", self.observations)
            .build()
    }

    fn load_state(&mut self, state: &checkpoint::Value) -> Result<(), checkpoint::CheckpointError> {
        use checkpoint::codec as c;
        use checkpoint::Value;
        self.level = match c::get(state, "level")? {
            Value::Null => None,
            v => Some(c::as_f64_bits(v, "level")?),
        };
        self.trend = c::get_f64b(state, "trend")?;
        self.observations = c::get_u64(state, "observations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_forecasts_itself() {
        let mut p = DemandPredictor::default_params();
        for _ in 0..20 {
            p.observe(10.0);
        }
        assert!((p.forecast(5) - 10.0).abs() < 0.5);
        assert!(p.trend().abs() < 0.1);
    }

    #[test]
    fn rising_series_predicts_crossing_early() {
        let mut p = DemandPredictor::default_params();
        // demand ramps 2, 4, 6, ... — currently at 10, threshold is 16
        for i in 1..=5 {
            p.observe(2.0 * i as f64);
        }
        assert!(p.trend() > 0.5, "trend detected: {}", p.trend());
        assert!(
            p.predicts_hot(14.0, 4),
            "ramp should cross 14 within 4 steps (forecast {})",
            p.forecast(4)
        );
        assert!(!p.predicts_hot(14.0, 0), "not hot *now*");
    }

    #[test]
    fn falling_series_never_goes_negative() {
        let mut p = DemandPredictor::default_params();
        for v in [20.0, 10.0, 5.0, 2.0, 1.0, 0.0] {
            p.observe(v);
        }
        assert!(p.trend() < 0.0);
        assert!(p.forecast(100) >= 0.0);
        assert!(!p.predicts_hot(5.0, 10));
    }

    #[test]
    fn needs_two_observations() {
        let mut p = DemandPredictor::default_params();
        assert!(!p.predicts_hot(0.0, 1), "empty predictor never fires");
        p.observe(100.0);
        assert!(!p.predicts_hot(1.0, 1), "one sample is not a trend");
        p.observe(100.0);
        assert!(p.predicts_hot(1.0, 1));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_params() {
        DemandPredictor::new(1.5, 0.5);
    }

    #[test]
    fn checkpoint_round_trip_forecasts_identically() {
        use checkpoint::Checkpointable;
        let mut p = DemandPredictor::default_params();
        for i in 1..=5 {
            p.observe(2.0 * i as f64);
        }
        let json = serde_json::to_string(&p.save_state()).unwrap();
        let back = serde_json::parse_value(&json).unwrap();
        let mut fresh = DemandPredictor::default_params();
        fresh.load_state(&back).unwrap();
        assert_eq!(fresh.observations(), p.observations());
        assert_eq!(fresh.forecast(4).to_bits(), p.forecast(4).to_bits());
        // an empty predictor's None level survives too
        let empty = DemandPredictor::default_params();
        let mut fresh = DemandPredictor::default_params();
        fresh.load_state(&empty.save_state()).unwrap();
        assert_eq!(fresh.forecast(1), 0.0);
        assert_eq!(fresh.observations(), 0);
    }
}
