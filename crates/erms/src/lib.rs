//! `erms` — the paper's contribution: an Elastic Replication Management
//! System for HDFS.
//!
//! ERMS watches the cluster's audit-log stream through a CEP engine,
//! classifies every file as **hot / cooled / normal / cold** in real time
//! (Formulas (1)–(6) of Section III.C), and reacts elastically:
//!
//! * hot data jumps **directly** to its computed optimal replication
//!   factor, with the extra replicas parked on freshly commissioned
//!   **standby** nodes (Section III.B's Active/Standby storage model);
//! * cooled data sheds those extras — no rebalancing needed, because
//!   Algorithm 1 put them on standby nodes in the first place;
//! * cold data is Reed–Solomon encoded down to one replica plus parities;
//! * all actions execute as Condor tasks: promotions immediately,
//!   demotions when the cluster is idle, everything journalled for
//!   rollback and replay.
//!
//! ```
//! use erms::prelude::*;
//! use hdfs_sim::topology::{ClientId, Endpoint};
//!
//! let mut cluster = ClusterSim::new(
//!     ClusterConfig::paper_testbed(),
//!     Box::new(ErmsPlacement::new()), // Algorithm 1
//! );
//! let cfg = ErmsConfigBuilder::all_active().build().unwrap();
//! let mut erms = ErmsManager::new(cfg, &mut cluster).unwrap();
//!
//! cluster.create_file("/hot", 64 << 20, 3, None).unwrap();
//! for i in 0..40 {
//!     cluster.open_read(Endpoint::Client(ClientId(i)), "/hot").unwrap();
//! }
//! cluster.run_until_quiescent();
//!
//! // one control-loop pass: audit → CEP judge → Condor tasks
//! let now = cluster.now();
//! let report = erms.tick(&mut cluster, now);
//! assert_eq!(report.hot, 1);
//! assert!(report.tasks_submitted >= 1);
//! ```
//!
//! Module map: [`thresholds`] (the τ/M/ε knobs plus calibration),
//! [`judge`] (CEP-backed classification), [`replication`] (optimal-factor
//! computation and increase strategies), [`placement`] (Algorithm 1 as a
//! [`hdfs_sim::PlacementPolicy`]), [`model`] (active/standby bookkeeping
//! and energy metering), [`manager`] (the control loop gluing it all to
//! a [`hdfs_sim::ClusterSim`]), [`predict`] (future-work EWMA predictor).

pub mod calibrate;
pub mod config;
pub mod judge;
pub mod manager;
pub mod model;
pub mod placement;
pub mod predict;
pub mod replication;
pub mod thresholds;

pub use calibrate::{probe, ProbeConfig, ProbeResult};
pub use config::{ConfigError, ErmsConfig, ErmsConfigBuilder};
pub use judge::{
    classify_with_rules, CepProbe, DataClass, DataJudge, FileSnapshot, JudgeBackend, JudgePolicy,
    JudgeRule, Judgment, RulesPolicy,
};
pub use manager::{ErmsManager, ErmsTask, TickReport};
pub use model::ActiveStandbyModel;
pub use placement::ErmsPlacement;
pub use replication::{optimal_replication, IncreaseStrategy};
pub use thresholds::Thresholds;

/// One-stop imports for driving an ERMS simulation: the manager and its
/// config/builder/error types, the cluster it manages, the typed ids that
/// key its columnar state ([`FileId`](hdfs_sim::FileId),
/// [`BlockId`](hdfs_sim::BlockId), [`NodeId`](hdfs_sim::NodeId)), the
/// generational-arena primitives behind them, the simulation clock, and
/// the telemetry sinks — everything a harness or example needs without
/// spelling out five crate paths.
pub mod prelude {
    pub use crate::config::{ConfigError, ErmsConfig, ErmsConfigBuilder};
    pub use crate::judge::{DataClass, JudgeBackend, JudgeRule};
    pub use crate::manager::{ErmsManager, ErmsTask, TickReport};
    pub use crate::placement::ErmsPlacement;
    pub use crate::replication::IncreaseStrategy;
    pub use crate::thresholds::Thresholds;
    pub use hdfs_sim::{BlockId, ClusterConfig, ClusterSim, FileId, NodeId};
    pub use simcore::arena::{Arena, Handle};
    pub use simcore::telemetry::{
        Event as TelemetryEvent, MetricsRegistry, TelemetrySink, TracedEvent,
    };
    pub use simcore::{SimDuration, SimTime};
}
