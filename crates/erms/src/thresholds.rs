//! The classification thresholds and their calibration.
//!
//! The paper's thresholds (Section III.C): `τ_M` — the largest access
//! number one replica can hold; `M_M` — the per-block burst bound; `M_m`
//! — the softer per-block bound used with the ε fraction rule; `τ_d` —
//! below it a boosted file has cooled; `τ_m` — below it (plus an age
//! test) a file is cold; `τ_DN` — the per-datanode session bound of
//! Formula (4); `t_w` — the CEP time window; `t_cold` — the last-access
//! age beyond which quiet data is cold. The required ordering is
//! `0 < τ_m < τ_d < τ_M`.
//!
//! "ERMS could dynamically change these thresholds based on system
//! environments" — [`Thresholds::calibrate`] derives the lot from the
//! measured per-replica session capacity (the Fig. 8 experiment, which
//! found 8–10 sessions per replica on the paper's testbed ⇒ τ_M = 8).

use crate::config::ConfigError;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// τ_M: accesses one replica sustains (Formula 1).
    pub tau_hot: f64,
    /// M_M: hard per-block burst bound (Formula 2).
    pub block_burst: f64,
    /// M_m: soft per-block bound for the ε rule (Formula 3).
    pub block_warm: f64,
    /// ε: fraction of blocks over `block_warm` that makes a file hot.
    pub epsilon: f64,
    /// τ_d: per-replica accesses under which a boosted file has cooled.
    pub tau_cooled: f64,
    /// τ_m: per-replica accesses under which a file may be cold.
    pub tau_cold: f64,
    /// τ_DN: per-datanode windowed session bound (Formula 4).
    pub tau_datanode: f64,
    /// t_w: the CEP sliding time window.
    pub window: SimDuration,
    /// t: minimum last-access age for cold classification (Formula 6).
    pub cold_age: SimDuration,
}

impl Default for Thresholds {
    fn default() -> Self {
        // the paper's environment: each replica holds 8-10 sessions,
        // "so the maximum of τ_M in our environment [is 8]"
        Thresholds::calibrate(8.0)
    }
}

impl Thresholds {
    /// Derive a consistent threshold set from the measured per-replica
    /// session capacity.
    pub fn calibrate(per_replica_capacity: f64) -> Self {
        assert!(per_replica_capacity > 0.0);
        let t = Thresholds {
            tau_hot: per_replica_capacity,
            block_burst: per_replica_capacity * 1.5,
            block_warm: per_replica_capacity * 0.75,
            epsilon: 0.3,
            tau_cooled: per_replica_capacity * 0.125,
            tau_cold: per_replica_capacity * 0.03125,
            tau_datanode: per_replica_capacity * 2.0,
            window: SimDuration::from_secs(300),
            cold_age: SimDuration::from_hours(1),
        };
        t.validate().expect("calibrated thresholds are consistent");
        t
    }

    /// Paper variants for the Fig. 3 τ_M sweep (τ_M ∈ {8, 6, 4}).
    pub fn with_tau_hot(mut self, tau: f64) -> Self {
        self.tau_hot = tau;
        self.tau_cooled = self.tau_cooled.min(tau * 0.5);
        self.tau_cold = self.tau_cold.min(self.tau_cooled * 0.5);
        self.validate().expect("tau sweep keeps ordering");
        self
    }

    /// Enforce `0 < τ_m < τ_d < τ_M` and sane auxiliary bounds.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.tau_cold > 0.0
            && self.tau_cold < self.tau_cooled
            && self.tau_cooled < self.tau_hot)
        {
            return Err(ConfigError::ThresholdOrdering {
                tau_cold: self.tau_cold,
                tau_cooled: self.tau_cooled,
                tau_hot: self.tau_hot,
            });
        }
        if !(0.0 < self.epsilon && self.epsilon < 1.0) {
            return Err(ConfigError::EpsilonOutOfRange(self.epsilon));
        }
        if self.block_warm >= self.block_burst {
            return Err(ConfigError::BlockBoundsInverted {
                warm: self.block_warm,
                burst: self.block_burst,
            });
        }
        if self.window.is_zero() {
            return Err(ConfigError::ZeroWindow);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_environment() {
        let t = Thresholds::default();
        assert_eq!(t.tau_hot, 8.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn calibration_scales_consistently() {
        for cap in [2.0, 8.0, 20.0] {
            let t = Thresholds::calibrate(cap);
            assert!(t.validate().is_ok(), "cap {cap}");
            assert_eq!(t.tau_hot, cap);
            assert!(t.tau_datanode > t.tau_hot);
        }
    }

    #[test]
    fn tau_sweep_preserves_ordering() {
        for tau in [8.0, 6.0, 4.0, 2.0] {
            let t = Thresholds::default().with_tau_hot(tau);
            assert!(t.validate().is_ok(), "tau {tau}");
            assert_eq!(t.tau_hot, tau);
        }
    }

    #[test]
    fn validation_rejects_bad_orderings() {
        let base = Thresholds::default();
        let t = Thresholds {
            tau_cold: base.tau_hot + 1.0,
            ..base.clone()
        };
        assert!(t.validate().is_err());
        let t = Thresholds {
            epsilon: 1.5,
            ..base.clone()
        };
        assert_eq!(t.validate(), Err(ConfigError::EpsilonOutOfRange(1.5)));
        let t = Thresholds {
            block_warm: base.block_burst + 1.0,
            ..base.clone()
        };
        assert!(matches!(
            t.validate(),
            Err(ConfigError::BlockBoundsInverted { .. })
        ));
        let t = Thresholds {
            window: SimDuration::ZERO,
            ..base
        };
        assert_eq!(t.validate(), Err(ConfigError::ZeroWindow));
    }
}
